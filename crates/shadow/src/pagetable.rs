//! The canonical "thru page-table" shadow mechanism (paper §3.2.1).
//!
//! Every logical page is reached through a **page table** mapping it to a
//! data-disk frame. An update never overwrites the committed frame: the new
//! version goes to a freshly allocated frame, and at commit a new page
//! table (with the transaction's new mappings) is written to the inactive
//! of two on-disk table areas, after which a single atomic *master frame*
//! write flips which area is current. A crash at any instant leaves the
//! master pointing at a consistent committed table — no redo, no undo.
//!
//! The costs the paper measures fall out directly: every access pays
//! indirection (page-table reads, mitigated by page-table processors and
//! buffers in the simulator), and shadow allocation decides whether
//! logically adjacent pages stay physically clustered. [`AllocPolicy`]
//! exposes both behaviours; Table 7 shows clustering is what saves
//! sequential workloads.

use rmdb_storage::fault::FaultHandle;
use rmdb_storage::{
    read_page_retry, write_page_verified, BackendKind, Disk, Lsn, Page, PageId, StorageError,
    PAYLOAD_SIZE,
};
use std::collections::{BTreeMap, HashMap};

/// Frame-address sentinel for "logical page never written".
const FREE: u64 = u64::MAX;
/// Bounded retry budget for riding through transient device faults.
pub(crate) const IO_RETRIES: u32 = 4;
/// Page-table entries per 4 KB page-table page (8-byte entries; the paper
/// assumes 4-byte entries and quotes >1000 — same order of magnitude).
pub const ENTRIES_PER_PT_PAGE: u64 = (PAYLOAD_SIZE / 8) as u64;

/// Transaction id.
pub type TxnId = u64;

/// Where the allocator places a page's new (shadow-mechanism) version.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocPolicy {
    /// Allocate the free frame nearest the page's previous frame, keeping
    /// logically adjacent pages physically clustered (the assumption the
    /// paper's Tables 4–6 make).
    Clustered,
    /// Allocate with a large stride so versions scatter across the disk —
    /// the pessimistic case of Table 7's "scrambled" column.
    Scrambled,
}

/// Configuration of a [`ShadowPager`].
#[derive(Debug, Clone)]
pub struct ShadowConfig {
    /// Logical pages exposed to transactions.
    pub logical_pages: u64,
    /// Frames on the data disk (must exceed `logical_pages` so shadows and
    /// currents can coexist).
    pub data_frames: u64,
    /// Shadow allocation policy.
    pub alloc: AllocPolicy,
    /// Block-device backend for the data and page-table disks.
    pub backend: BackendKind,
}

impl Default for ShadowConfig {
    fn default() -> Self {
        ShadowConfig {
            logical_pages: 128,
            data_frames: 512,
            alloc: AllocPolicy::Clustered,
            backend: BackendKind::Mem,
        }
    }
}

/// Errors from the shadow stores.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShadowError {
    /// Underlying storage failed.
    Storage(StorageError),
    /// Exclusive page lock held by another transaction.
    LockConflict {
        /// Contested logical page.
        page: u64,
        /// Holder.
        holder: TxnId,
    },
    /// Not an active transaction.
    UnknownTxn(TxnId),
    /// Page number / byte range outside the store.
    OutOfBounds {
        /// Offending page.
        page: u64,
    },
    /// No free data frame (or scratch slot) available.
    SpaceExhausted,
}

impl From<StorageError> for ShadowError {
    fn from(e: StorageError) -> Self {
        ShadowError::Storage(e)
    }
}

impl std::fmt::Display for ShadowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShadowError::Storage(e) => write!(f, "storage: {e}"),
            ShadowError::LockConflict { page, holder } => {
                write!(f, "page {page} locked by txn {holder}")
            }
            ShadowError::UnknownTxn(t) => write!(f, "unknown txn {t}"),
            ShadowError::OutOfBounds { page } => write!(f, "page {page} out of bounds"),
            ShadowError::SpaceExhausted => write!(f, "no free frames"),
        }
    }
}

impl std::error::Error for ShadowError {}

/// Minimal exclusive page-lock table (page-level locking per the paper;
/// the shadow stores only need X locks because reads of committed state
/// never block under shadowing — readers always see the committed table).
#[derive(Debug, Default)]
pub(crate) struct ExclusiveLocks {
    held: HashMap<u64, TxnId>,
    by_txn: HashMap<TxnId, Vec<u64>>,
}

impl ExclusiveLocks {
    pub(crate) fn acquire(&mut self, txn: TxnId, page: u64) -> Result<(), ShadowError> {
        match self.held.get(&page) {
            Some(&h) if h != txn => Err(ShadowError::LockConflict { page, holder: h }),
            Some(_) => Ok(()),
            None => {
                self.held.insert(page, txn);
                self.by_txn.entry(txn).or_default().push(page);
                Ok(())
            }
        }
    }

    pub(crate) fn release_all(&mut self, txn: TxnId) {
        for page in self.by_txn.remove(&txn).unwrap_or_default() {
            self.held.remove(&page);
        }
    }
}

/// Durable state of a [`ShadowPager`] (the crash image).
#[derive(Debug)]
pub struct ShadowImage {
    /// Data disk.
    pub data: Disk,
    /// Page-table disk (master + two table areas).
    pub pt: Disk,
}

/// What recovery found.
#[derive(Debug, Clone, Default)]
pub struct ShadowRecoveryReport {
    /// Which table area the master pointed at.
    pub current_area: u8,
    /// Committed generation number.
    pub generation: u64,
    /// Mapped (allocated) logical pages.
    pub mapped_pages: u64,
    /// Page-table pages read during recovery.
    pub pt_reads: u64,
}

/// Access statistics (the quantities the simulator models).
#[derive(Debug, Clone, Copy, Default)]
pub struct ShadowStats {
    /// Page-table pages written (at commits).
    pub pt_writes: u64,
    /// Page-table pages read.
    pub pt_reads: u64,
    /// Data frames written.
    pub data_writes: u64,
    /// Data frames read.
    pub data_reads: u64,
    /// Commits.
    pub commits: u64,
    /// Aborts.
    pub aborts: u64,
}

struct ShadowTxn {
    /// logical page → (newly allocated frame, in-memory current version)
    delta: BTreeMap<u64, (u64, Page)>,
}

/// The thru-page-table shadow store.
///
/// ```
/// use rmdb_shadow::{ShadowConfig, ShadowPager};
///
/// let cfg = ShadowConfig::default();
/// let mut pager = ShadowPager::new(cfg.clone()).unwrap();
/// let t = pager.begin();
/// pager.write(t, 5, 0, b"shadowed").unwrap();
/// pager.commit(t).unwrap();                 // atomic master-pointer flip
///
/// let (mut recovered, _) = ShadowPager::recover(pager.crash_image(), cfg).unwrap();
/// let t = recovered.begin();
/// assert_eq!(recovered.read(t, 5, 0, 8).unwrap(), b"shadowed");
/// ```
pub struct ShadowPager {
    cfg: ShadowConfig,
    data: Disk,
    pt: Disk,
    /// Committed mapping: logical page → frame (or `FREE`).
    table: Vec<u64>,
    /// Free map over data frames.
    free: Vec<bool>,
    /// Scrambled-allocation cursor.
    cursor: u64,
    current_area: u8,
    generation: u64,
    locks: ExclusiveLocks,
    active: HashMap<TxnId, ShadowTxn>,
    next_txn: TxnId,
    stats: ShadowStats,
}

impl ShadowPager {
    fn pt_pages(cfg: &ShadowConfig) -> u64 {
        cfg.logical_pages.div_ceil(ENTRIES_PER_PT_PAGE)
    }

    /// Page-table areas start after the two master slots (frames 0 and 1).
    /// Dual masters make the commit-point write crash-atomic: generation
    /// `g` goes to slot `g % 2`, so a write torn by a crash destroys only
    /// the new master while the previous one stays valid.
    fn area_start(cfg: &ShadowConfig, area: u8) -> u64 {
        2 + area as u64 * Self::pt_pages(cfg)
    }

    /// A fresh store: empty table in area 0.
    pub fn new(cfg: ShadowConfig) -> Result<Self, ShadowError> {
        assert!(
            cfg.data_frames >= cfg.logical_pages,
            "data disk smaller than logical space"
        );
        let pt_frames = 2 + 2 * Self::pt_pages(&cfg);
        let mut pager = ShadowPager {
            table: vec![FREE; cfg.logical_pages as usize],
            free: vec![true; cfg.data_frames as usize],
            cursor: 0,
            current_area: 0,
            generation: 0,
            locks: ExclusiveLocks::default(),
            active: HashMap::new(),
            next_txn: 1,
            stats: ShadowStats::default(),
            data: cfg.backend.provision(cfg.data_frames)?,
            pt: cfg.backend.provision(pt_frames)?,
            cfg,
        };
        let table = pager.table.clone();
        Self::write_table_frames(&mut pager.pt, &pager.cfg, &mut pager.stats, &table, 0, 0)?;
        Self::write_master_frame(&mut pager.pt, 0, 0)?;
        Ok(pager)
    }

    /// Recover the committed state from a crash image.
    ///
    /// Reads both master slots and follows the valid one with the highest
    /// generation, so a master write torn by the crash falls back to the
    /// previous committed state. A corrupt page table or an entry pointing
    /// outside the data disk surfaces as a typed error — never a panic.
    pub fn recover(
        image: ShadowImage,
        cfg: ShadowConfig,
    ) -> Result<(Self, ShadowRecoveryReport), ShadowError> {
        let mut best: Option<(u64, u8)> = None; // (generation, area)
        for slot in 0..2u64 {
            let Ok(master) = read_page_retry(&image.pt, slot, IO_RETRIES) else {
                continue; // torn or never-written master slot
            };
            let area = master.read_at(0, 1)[0];
            if area > 1 {
                continue; // decodes but is not a master frame
            }
            let generation = u64::from_le_bytes(master.read_at(1, 8).try_into().unwrap());
            if best.is_none_or(|(g, _)| generation > g) {
                best = Some((generation, area));
            }
        }
        let Some((generation, current_area)) = best else {
            return Err(ShadowError::Storage(StorageError::Protocol(
                "no valid shadow master frame",
            )));
        };

        let mut table = vec![FREE; cfg.logical_pages as usize];
        let mut pt_reads = 0;
        let start = Self::area_start(&cfg, current_area);
        for i in 0..Self::pt_pages(&cfg) {
            let page = read_page_retry(&image.pt, start + i, IO_RETRIES)?;
            pt_reads += 1;
            for e in 0..ENTRIES_PER_PT_PAGE {
                let idx = i * ENTRIES_PER_PT_PAGE + e;
                if idx >= cfg.logical_pages {
                    break;
                }
                table[idx as usize] =
                    u64::from_le_bytes(page.read_at((e * 8) as usize, 8).try_into().unwrap());
            }
        }
        let mut free = vec![true; cfg.data_frames as usize];
        let mut mapped = 0;
        for &f in &table {
            if f != FREE {
                if f >= cfg.data_frames {
                    return Err(ShadowError::Storage(StorageError::Protocol(
                        "page-table entry points outside the data disk",
                    )));
                }
                free[f as usize] = false;
                mapped += 1;
            }
        }
        let report = ShadowRecoveryReport {
            current_area,
            generation,
            mapped_pages: mapped,
            pt_reads,
        };
        Ok((
            ShadowPager {
                table,
                free,
                cursor: 0,
                current_area,
                generation,
                locks: ExclusiveLocks::default(),
                active: HashMap::new(),
                next_txn: 1,
                stats: ShadowStats::default(),
                data: image.data,
                pt: image.pt,
                cfg,
            },
            report,
        ))
    }

    /// Capture durable state.
    pub fn crash_image(&self) -> ShadowImage {
        ShadowImage {
            data: self.data.snapshot(),
            pt: self.pt.snapshot(),
        }
    }

    /// Attach one shared fault injector to the data and page-table disks.
    pub fn attach_faults(&mut self, handle: &FaultHandle) {
        self.data.attach_faults(handle.clone());
        self.pt.attach_faults(handle.clone());
    }

    /// Accumulated access statistics.
    pub fn stats(&self) -> ShadowStats {
        self.stats
    }

    /// The committed frame address of a logical page (tests/benches).
    pub fn frame_of(&self, page: u64) -> Option<u64> {
        match self.table.get(page as usize) {
            Some(&f) if f != FREE => Some(f),
            _ => None,
        }
    }

    /// Write the master frame for `generation` into its ping-pong slot
    /// (`generation % 2`), verified by read-back so a silently lost or torn
    /// write cannot pass for a commit point.
    fn write_master_frame(pt: &mut Disk, area: u8, generation: u64) -> Result<(), ShadowError> {
        let mut m = Page::new(PageId(u64::MAX));
        m.write_at(0, &[area]);
        m.write_at(1, &generation.to_le_bytes());
        write_page_verified(pt, generation % 2, &m, IO_RETRIES)?;
        Ok(())
    }

    /// Write `table` into area `area`, verifying each frame by read-back.
    fn write_table_frames(
        pt: &mut Disk,
        cfg: &ShadowConfig,
        stats: &mut ShadowStats,
        table: &[u64],
        area: u8,
        generation: u64,
    ) -> Result<(), ShadowError> {
        let start = Self::area_start(cfg, area);
        for i in 0..Self::pt_pages(cfg) {
            let mut p = Page::new(PageId(start + i));
            p.lsn = Lsn(generation);
            for e in 0..ENTRIES_PER_PT_PAGE {
                let idx = i * ENTRIES_PER_PT_PAGE + e;
                if idx >= cfg.logical_pages {
                    break;
                }
                p.write_at((e * 8) as usize, &table[idx as usize].to_le_bytes());
            }
            write_page_verified(pt, start + i, &p, IO_RETRIES)?;
            stats.pt_writes += 1;
        }
        Ok(())
    }

    fn alloc_frame(&mut self, hint: u64) -> Result<u64, ShadowError> {
        let n = self.cfg.data_frames;
        match self.cfg.alloc {
            AllocPolicy::Clustered => {
                // nearest free frame to the hint
                let h = hint.min(n - 1);
                for d in 0..n {
                    let lo = h.checked_sub(d);
                    if let Some(lo) = lo {
                        if self.free[lo as usize] {
                            self.free[lo as usize] = false;
                            return Ok(lo);
                        }
                    }
                    let hi = h + d;
                    if hi < n && self.free[hi as usize] {
                        self.free[hi as usize] = false;
                        return Ok(hi);
                    }
                }
                Err(ShadowError::SpaceExhausted)
            }
            AllocPolicy::Scrambled => {
                // golden-ratio stride scatters versions across the disk
                let stride = ((n as f64 * 0.618_033_99) as u64).max(1);
                for _ in 0..n {
                    self.cursor = (self.cursor + stride) % n;
                    if self.free[self.cursor as usize] {
                        self.free[self.cursor as usize] = false;
                        return Ok(self.cursor);
                    }
                }
                // fall back to linear scan
                for f in 0..n {
                    if self.free[f as usize] {
                        self.free[f as usize] = false;
                        return Ok(f);
                    }
                }
                Err(ShadowError::SpaceExhausted)
            }
        }
    }

    /// Begin a transaction.
    pub fn begin(&mut self) -> TxnId {
        let t = self.next_txn;
        self.next_txn += 1;
        self.active.insert(
            t,
            ShadowTxn {
                delta: BTreeMap::new(),
            },
        );
        t
    }

    fn check(&self, txn: TxnId, page: u64) -> Result<(), ShadowError> {
        if page >= self.cfg.logical_pages {
            return Err(ShadowError::OutOfBounds { page });
        }
        if !self.active.contains_key(&txn) {
            return Err(ShadowError::UnknownTxn(txn));
        }
        Ok(())
    }

    /// Read bytes; the transaction sees its own uncommitted version, other
    /// pages come from the committed table (one indirection per access).
    pub fn read(
        &mut self,
        txn: TxnId,
        page: u64,
        offset: usize,
        len: usize,
    ) -> Result<Vec<u8>, ShadowError> {
        self.check(txn, page)?;
        if let Some((_, p)) = self.active[&txn].delta.get(&page) {
            return Ok(p.read_at(offset, len).to_vec());
        }
        self.stats.pt_reads += 1; // indirection through the page table
        match self.table[page as usize] {
            FREE => Ok(vec![0; len]),
            frame => {
                self.stats.data_reads += 1;
                let p = read_page_retry(&self.data, frame, IO_RETRIES)?;
                Ok(p.read_at(offset, len).to_vec())
            }
        }
    }

    /// Write bytes under an exclusive page lock. The first write to a page
    /// allocates its shadow-mechanism frame (policy-dependent address).
    pub fn write(
        &mut self,
        txn: TxnId,
        page: u64,
        offset: usize,
        data: &[u8],
    ) -> Result<(), ShadowError> {
        self.check(txn, page)?;
        if offset + data.len() > PAYLOAD_SIZE {
            return Err(ShadowError::OutOfBounds { page });
        }
        self.locks.acquire(txn, page)?;
        if !self.active[&txn].delta.contains_key(&page) {
            // materialize the current version and allocate the new frame
            self.stats.pt_reads += 1;
            let current = match self.table[page as usize] {
                FREE => Page::new(PageId(page)),
                frame => {
                    self.stats.data_reads += 1;
                    read_page_retry(&self.data, frame, IO_RETRIES)?
                }
            };
            let hint = match self.table[page as usize] {
                FREE => {
                    // spread initial allocations proportionally so logical
                    // adjacency maps to physical adjacency
                    page * (self.cfg.data_frames / self.cfg.logical_pages.max(1))
                }
                frame => frame,
            };
            let new_frame = self.alloc_frame(hint)?;
            self.active
                .get_mut(&txn)
                .expect("txn checked")
                .delta
                .insert(page, (new_frame, current));
        }
        let entry = self
            .active
            .get_mut(&txn)
            .expect("txn checked")
            .delta
            .get_mut(&page)
            .expect("just materialized");
        entry.1.write_at(offset, data);
        Ok(())
    }

    /// Commit: write current versions to their new frames, write the new
    /// page table into the inactive area, flip the master. Shadows become
    /// free only after the flip.
    pub fn commit(&mut self, txn: TxnId) -> Result<(), ShadowError> {
        let state = self
            .active
            .remove(&txn)
            .ok_or(ShadowError::UnknownTxn(txn))?;
        let generation = self.generation + 1;
        // Stage every durable write before mutating in-memory state, so a
        // failure mid-commit leaves the pager still describing the old
        // committed state — exactly what recovery would reconstruct.
        let mut new_map = Vec::new();
        for (logical, (frame, mut page)) in state.delta {
            page.id = PageId(logical);
            page.lsn = Lsn(generation);
            write_page_verified(&mut self.data, frame, &page, IO_RETRIES)?;
            self.stats.data_writes += 1;
            new_map.push((logical, frame));
        }
        let mut table = self.table.clone();
        for &(logical, frame) in &new_map {
            table[logical as usize] = frame;
        }
        let new_area = 1 - self.current_area;
        Self::write_table_frames(
            &mut self.pt,
            &self.cfg,
            &mut self.stats,
            &table,
            new_area,
            generation,
        )?;
        Self::write_master_frame(&mut self.pt, new_area, generation)?; // ← the atomic commit point
        for (logical, frame) in new_map {
            let old = std::mem::replace(&mut self.table[logical as usize], frame);
            if old != FREE {
                self.free[old as usize] = true;
            }
        }
        self.current_area = new_area;
        self.generation = generation;
        self.locks.release_all(txn);
        self.stats.commits += 1;
        Ok(())
    }

    /// Abort: drop the delta, free its frames, release locks. Nothing was
    /// visible, nothing touches disk.
    pub fn abort(&mut self, txn: TxnId) -> Result<(), ShadowError> {
        let state = self
            .active
            .remove(&txn)
            .ok_or(ShadowError::UnknownTxn(txn))?;
        for (_, (frame, _)) in state.delta {
            self.free[frame as usize] = true;
        }
        self.locks.release_all(txn);
        self.stats.aborts += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(alloc: AllocPolicy) -> ShadowConfig {
        ShadowConfig {
            logical_pages: 64,
            data_frames: 256,
            alloc,
            ..ShadowConfig::default()
        }
    }

    fn committed_read(p: &mut ShadowPager, page: u64, off: usize, len: usize) -> Vec<u8> {
        let t = p.begin();
        let v = p.read(t, page, off, len).unwrap();
        p.abort(t).unwrap();
        v
    }

    #[test]
    fn read_your_writes_and_isolation() {
        let mut p = ShadowPager::new(cfg(AllocPolicy::Clustered)).unwrap();
        let t = p.begin();
        p.write(t, 3, 0, b"mine").unwrap();
        assert_eq!(p.read(t, 3, 0, 4).unwrap(), b"mine");
        // committed state still empty
        assert_eq!(committed_read(&mut p, 3, 0, 4), vec![0; 4]);
        p.commit(t).unwrap();
        assert_eq!(committed_read(&mut p, 3, 0, 4), b"mine");
    }

    #[test]
    fn abort_leaves_no_trace() {
        let mut p = ShadowPager::new(cfg(AllocPolicy::Clustered)).unwrap();
        let t0 = p.begin();
        p.write(t0, 1, 0, b"base").unwrap();
        p.commit(t0).unwrap();
        let frames_before = p.frame_of(1);
        let t = p.begin();
        p.write(t, 1, 0, b"junk").unwrap();
        p.abort(t).unwrap();
        assert_eq!(committed_read(&mut p, 1, 0, 4), b"base");
        assert_eq!(p.frame_of(1), frames_before, "mapping unchanged by abort");
    }

    #[test]
    fn update_moves_page_to_new_frame() {
        let mut p = ShadowPager::new(cfg(AllocPolicy::Clustered)).unwrap();
        let t0 = p.begin();
        p.write(t0, 5, 0, b"v1").unwrap();
        p.commit(t0).unwrap();
        let f1 = p.frame_of(5).unwrap();
        let t1 = p.begin();
        p.write(t1, 5, 0, b"v2").unwrap();
        p.commit(t1).unwrap();
        let f2 = p.frame_of(5).unwrap();
        assert_ne!(f1, f2, "shadow mechanism never overwrites in place");
        assert_eq!(committed_read(&mut p, 5, 0, 2), b"v2");
    }

    #[test]
    fn crash_before_commit_loses_nothing_keeps_consistency() {
        let mut p = ShadowPager::new(cfg(AllocPolicy::Clustered)).unwrap();
        let t0 = p.begin();
        p.write(t0, 2, 0, b"base").unwrap();
        p.commit(t0).unwrap();
        let t = p.begin();
        p.write(t, 2, 0, b"lost").unwrap();
        // crash with t in flight
        let (mut p2, report) =
            ShadowPager::recover(p.crash_image(), cfg(AllocPolicy::Clustered)).unwrap();
        assert_eq!(committed_read(&mut p2, 2, 0, 4), b"base");
        assert_eq!(report.mapped_pages, 1);
        assert_eq!(report.generation, 1);
    }

    #[test]
    fn crash_after_commit_preserves_everything() {
        let mut p = ShadowPager::new(cfg(AllocPolicy::Clustered)).unwrap();
        let t = p.begin();
        for page in 0..10 {
            p.write(t, page, 0, format!("p{page}").as_bytes()).unwrap();
        }
        p.commit(t).unwrap();
        let (mut p2, report) =
            ShadowPager::recover(p.crash_image(), cfg(AllocPolicy::Clustered)).unwrap();
        for page in 0..10 {
            assert_eq!(
                committed_read(&mut p2, page, 0, 2),
                format!("p{page}").into_bytes()
            );
        }
        assert_eq!(report.mapped_pages, 10);
    }

    #[test]
    fn atomic_multi_page_commit_under_crash() {
        // Either all of a transaction's pages are visible or none: simulate
        // the "worst" crash — right before the master flip — by writing
        // data pages through a partially executed commit. We approximate by
        // checking recovery at the two durable states we can observe.
        let mut p = ShadowPager::new(cfg(AllocPolicy::Clustered)).unwrap();
        let t0 = p.begin();
        p.write(t0, 0, 0, b"A0").unwrap();
        p.write(t0, 1, 0, b"A1").unwrap();
        p.commit(t0).unwrap();
        let before = p.crash_image();
        let t1 = p.begin();
        p.write(t1, 0, 0, b"B0").unwrap();
        p.write(t1, 1, 0, b"B1").unwrap();
        p.commit(t1).unwrap();
        let after = p.crash_image();

        let (mut pa, _) = ShadowPager::recover(before, cfg(AllocPolicy::Clustered)).unwrap();
        assert_eq!(committed_read(&mut pa, 0, 0, 2), b"A0");
        assert_eq!(committed_read(&mut pa, 1, 0, 2), b"A1");
        let (mut pb, _) = ShadowPager::recover(after, cfg(AllocPolicy::Clustered)).unwrap();
        assert_eq!(committed_read(&mut pb, 0, 0, 2), b"B0");
        assert_eq!(committed_read(&mut pb, 1, 0, 2), b"B1");
    }

    #[test]
    fn lock_conflict_between_writers() {
        let mut p = ShadowPager::new(cfg(AllocPolicy::Clustered)).unwrap();
        let a = p.begin();
        let b = p.begin();
        p.write(a, 7, 0, b"x").unwrap();
        assert_eq!(
            p.write(b, 7, 0, b"y"),
            Err(ShadowError::LockConflict { page: 7, holder: a })
        );
        p.commit(a).unwrap();
        p.write(b, 7, 0, b"y").unwrap();
        p.commit(b).unwrap();
        assert_eq!(committed_read(&mut p, 7, 0, 1), b"y");
    }

    #[test]
    fn clustered_allocation_stays_near_previous_frame() {
        let mut p = ShadowPager::new(ShadowConfig {
            logical_pages: 64,
            data_frames: 1024,
            alloc: AllocPolicy::Clustered,
            ..ShadowConfig::default()
        })
        .unwrap();
        // lay down a contiguous committed range
        let t = p.begin();
        for page in 0..32 {
            p.write(t, page, 0, b"seq").unwrap();
        }
        p.commit(t).unwrap();
        // update all pages; new frames should stay near the old ones
        let olds: Vec<u64> = (0..32).map(|pg| p.frame_of(pg).unwrap()).collect();
        let t2 = p.begin();
        for page in 0..32 {
            p.write(t2, page, 0, b"upd").unwrap();
        }
        p.commit(t2).unwrap();
        let mean_move: f64 = (0..32)
            .map(|pg| {
                (p.frame_of(pg).unwrap() as i64 - olds[pg as usize] as i64).unsigned_abs() as f64
            })
            .sum::<f64>()
            / 32.0;
        assert!(mean_move < 40.0, "clustered moved too far: {mean_move}");
    }

    #[test]
    fn scrambled_allocation_scatters() {
        let mut p = ShadowPager::new(ShadowConfig {
            logical_pages: 64,
            data_frames: 1024,
            alloc: AllocPolicy::Scrambled,
            ..ShadowConfig::default()
        })
        .unwrap();
        let t = p.begin();
        for page in 0..32 {
            p.write(t, page, 0, b"seq").unwrap();
        }
        p.commit(t).unwrap();
        // physical adjacency of logically adjacent pages is destroyed
        let frames: Vec<u64> = (0..32).map(|pg| p.frame_of(pg).unwrap()).collect();
        let mean_gap: f64 = frames
            .windows(2)
            .map(|w| (w[1] as i64 - w[0] as i64).unsigned_abs() as f64)
            .sum::<f64>()
            / 31.0;
        assert!(mean_gap > 100.0, "scrambled should scatter: {mean_gap}");
    }

    #[test]
    fn frames_are_recycled() {
        let mut p = ShadowPager::new(ShadowConfig {
            logical_pages: 4,
            data_frames: 8,
            alloc: AllocPolicy::Clustered,
            ..ShadowConfig::default()
        })
        .unwrap();
        // many generations of updates in 8 frames for 4 pages: must recycle
        for gen in 0..20u32 {
            let t = p.begin();
            for page in 0..4 {
                p.write(t, page, 0, &gen.to_le_bytes()).unwrap();
            }
            p.commit(t).unwrap();
        }
        assert_eq!(committed_read(&mut p, 0, 0, 4), 19u32.to_le_bytes());
    }

    #[test]
    fn space_exhaustion_is_an_error() {
        let mut p = ShadowPager::new(ShadowConfig {
            logical_pages: 4,
            data_frames: 4,
            alloc: AllocPolicy::Clustered,
            ..ShadowConfig::default()
        })
        .unwrap();
        let t0 = p.begin();
        for page in 0..4 {
            p.write(t0, page, 0, b"full").unwrap();
        }
        p.commit(t0).unwrap();
        // all frames mapped; an update needs a 5th frame
        let t = p.begin();
        assert_eq!(p.write(t, 0, 0, b"boom"), Err(ShadowError::SpaceExhausted));
    }

    #[test]
    fn stats_count_indirections() {
        let mut p = ShadowPager::new(cfg(AllocPolicy::Clustered)).unwrap();
        let t = p.begin();
        p.write(t, 0, 0, b"x").unwrap();
        p.commit(t).unwrap();
        let before = p.stats().pt_reads;
        let t2 = p.begin();
        p.read(t2, 0, 0, 1).unwrap();
        p.abort(t2).unwrap();
        assert_eq!(p.stats().pt_reads, before + 1, "each access indirects");
        assert!(p.stats().pt_writes >= 1);
    }

    #[test]
    fn out_of_bounds_and_unknown_txn() {
        let mut p = ShadowPager::new(cfg(AllocPolicy::Clustered)).unwrap();
        let t = p.begin();
        assert_eq!(
            p.write(t, 999, 0, b"x"),
            Err(ShadowError::OutOfBounds { page: 999 })
        );
        assert_eq!(p.commit(42), Err(ShadowError::UnknownTxn(42)));
    }
}
