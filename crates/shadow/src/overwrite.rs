//! The overwriting architectures (paper §3.2.2.2): shadow copies without a
//! page table, staged through a scratch ring buffer.
//!
//! Both variants keep a separate current/shadow pair **only while the
//! updating transaction is active**; on completion the shadow is
//! overwritten with the current copy in its home location, so pages never
//! move (preserving physical sequentiality — the property that rescues
//! sequential workloads on parallel-access disks in Tables 7–8).
//!
//! * [`NoUndoStore`] — updates live in memory until commit; commit first
//!   writes every updated page to the scratch area, then makes one atomic
//!   *intent directory* write (the commit point), then installs the pages
//!   over their shadows and retires the directory. Recovery **re-installs**
//!   (redoes) committed-but-uninstalled transactions and never undoes.
//! * [`NoRedoStore`] — the first touch of each page saves the original to
//!   the scratch area (and records it in the transaction's directory)
//!   before the home copy is overwritten in place; all updates are on disk
//!   before commit. Recovery **restores shadows** (undoes) transactions
//!   whose directory is still live and never redoes.
//!
//! A transaction's directory lives in a single scratch frame, so its state
//! transitions (live → done) are atomic; the paper's "list of
//! (un)committed transactions that must survive a crash" is exactly the
//! set of live directories.

use crate::pagetable::{ExclusiveLocks, ShadowError, TxnId, IO_RETRIES};
use crate::scratch::ScratchRing;
use rmdb_storage::fault::FaultHandle;
use rmdb_storage::{
    read_page_retry, write_page_verified, Lsn, MemDisk, Page, PageId, StorageError, PAYLOAD_SIZE,
};
use std::collections::{BTreeMap, HashMap};

/// High bit marking a frame as a transaction directory.
const DIR_ID_BIT: u64 = 1 << 63;
/// Directory states.
const DIR_LIVE: u8 = 1;
const DIR_DONE: u8 = 2;
/// Max (page, slot) pairs a single-frame directory can hold.
pub const MAX_TXN_PAGES: usize = (PAYLOAD_SIZE - 13) / 16;

/// Configuration shared by both overwriting stores.
#[derive(Debug, Clone)]
pub struct OverwriteConfig {
    /// Logical pages (home frames `0..logical_pages`).
    pub logical_pages: u64,
    /// Scratch slots following the home area.
    pub scratch_slots: u64,
}

impl Default for OverwriteConfig {
    fn default() -> Self {
        OverwriteConfig {
            logical_pages: 128,
            scratch_slots: 64,
        }
    }
}

/// Crash image: the single disk (home area + scratch ring).
#[derive(Debug)]
pub struct OverwriteImage {
    /// Durable disk contents.
    pub disk: MemDisk,
}

/// What recovery did.
#[derive(Debug, Clone, Default)]
pub struct OverwriteRecoveryReport {
    /// Transactions completed (no-undo: re-installed; no-redo: rolled back).
    pub txns_processed: u64,
    /// Pages copied between scratch and home.
    pub pages_copied: u64,
    /// Directories already done (nothing to do).
    pub done_directories: u64,
}

/// Access statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct OverwriteStats {
    /// Pages written to the scratch area.
    pub scratch_writes: u64,
    /// Pages copied from scratch over their shadows (installs/restores).
    pub overwrites: u64,
    /// Directory frame writes.
    pub dir_writes: u64,
    /// Commits.
    pub commits: u64,
    /// Aborts.
    pub aborts: u64,
}

fn encode_dir(state: u8, txn: TxnId, entries: &[(u64, u64)], dir_slot: u64) -> Page {
    assert!(entries.len() <= MAX_TXN_PAGES, "directory overflow");
    let mut p = Page::new(PageId(DIR_ID_BIT | dir_slot));
    p.lsn = Lsn(txn);
    p.write_at(0, &[state]);
    p.write_at(1, &txn.to_le_bytes());
    p.write_at(9, &(entries.len() as u32).to_le_bytes());
    for (i, (page, slot)) in entries.iter().enumerate() {
        p.write_at(13 + 16 * i, &page.to_le_bytes());
        p.write_at(13 + 16 * i + 8, &slot.to_le_bytes());
    }
    p
}

/// `(state, txn, entries)` decoded from a directory frame.
type DirContents = (u8, TxnId, Vec<(u64, u64)>);

fn decode_dir(p: &Page) -> Option<DirContents> {
    if p.id.0 & DIR_ID_BIT == 0 {
        return None;
    }
    let state = p.read_at(0, 1)[0];
    if state != DIR_LIVE && state != DIR_DONE {
        return None;
    }
    let txn = u64::from_le_bytes(p.read_at(1, 8).try_into().unwrap());
    let n = u32::from_le_bytes(p.read_at(9, 4).try_into().unwrap()) as usize;
    if n > MAX_TXN_PAGES {
        return None;
    }
    let entries = (0..n)
        .map(|i| {
            (
                u64::from_le_bytes(p.read_at(13 + 16 * i, 8).try_into().unwrap()),
                u64::from_le_bytes(p.read_at(13 + 16 * i + 8, 8).try_into().unwrap()),
            )
        })
        .collect();
    Some((state, txn, entries))
}

/// Scan the scratch region for directories; returns `(addr, state, txn,
/// entries)` for each decodable directory frame.
type DirScan = Vec<(u64, u8, TxnId, Vec<(u64, u64)>)>;

fn scan_directories(disk: &MemDisk, ring: &ScratchRing) -> DirScan {
    let mut found = Vec::new();
    for addr in ring.base()..ring.base() + ring.capacity() {
        if !disk.is_allocated(addr) {
            continue;
        }
        if let Ok(page) = read_page_retry(disk, addr, IO_RETRIES) {
            if let Some((state, txn, entries)) = decode_dir(&page) {
                // A frame that decodes but references pages or slots outside
                // the store is garbage wearing a directory id — skip it.
                let sane = entries
                    .iter()
                    .all(|&(p, s)| p < ring.base() && ring.contains(s));
                if sane {
                    found.push((addr, state, txn, entries));
                }
            }
        }
    }
    found
}

// ---------------------------------------------------------------------------
// No-undo
// ---------------------------------------------------------------------------

struct NoUndoTxn {
    delta: BTreeMap<u64, Page>,
}

/// The no-undo overwriting store: commit = stage to scratch, write intent,
/// install over shadows.
pub struct NoUndoStore {
    cfg: OverwriteConfig,
    disk: MemDisk,
    ring: ScratchRing,
    active: HashMap<TxnId, NoUndoTxn>,
    locks: ExclusiveLocks,
    next_txn: TxnId,
    stats: OverwriteStats,
}

impl NoUndoStore {
    /// A fresh store.
    pub fn new(cfg: OverwriteConfig) -> Self {
        let disk = MemDisk::new(cfg.logical_pages + cfg.scratch_slots);
        let ring = ScratchRing::new(cfg.logical_pages, cfg.scratch_slots);
        NoUndoStore {
            active: HashMap::new(),
            locks: ExclusiveLocks::default(),
            next_txn: 1,
            stats: OverwriteStats::default(),
            disk,
            ring,
            cfg,
        }
    }

    /// Capture durable state.
    pub fn crash_image(&self) -> OverwriteImage {
        OverwriteImage {
            disk: self.disk.snapshot(),
        }
    }

    /// Attach one shared fault injector to the disk.
    pub fn attach_faults(&mut self, handle: &FaultHandle) {
        self.disk.attach_faults(handle.clone());
    }

    /// Recovery: finish the installs of every committed transaction whose
    /// intent directory is still live. Nothing is ever undone — home pages
    /// of uncommitted transactions were never touched.
    pub fn recover(
        image: OverwriteImage,
        cfg: OverwriteConfig,
    ) -> Result<(Self, OverwriteRecoveryReport), ShadowError> {
        let mut disk = image.disk;
        let mut ring = ScratchRing::new(cfg.logical_pages, cfg.scratch_slots);
        let mut report = OverwriteRecoveryReport::default();
        let mut max_txn = 0;
        for (addr, state, txn, entries) in scan_directories(&disk, &ring) {
            max_txn = max_txn.max(txn);
            match state {
                DIR_LIVE => {
                    // committed but not (fully) installed: redo the install
                    for &(page, slot) in &entries {
                        let staged = read_page_retry(&disk, slot, IO_RETRIES)?;
                        if staged.id != PageId(page) {
                            return Err(ShadowError::Storage(StorageError::Protocol(
                                "staged page does not match its directory entry",
                            )));
                        }
                        write_page_verified(&mut disk, page, &staged, IO_RETRIES)?;
                        report.pages_copied += 1;
                    }
                    let done = encode_dir(DIR_DONE, txn, &entries, addr - cfg.logical_pages);
                    write_page_verified(&mut disk, addr, &done, IO_RETRIES)?;
                    report.txns_processed += 1;
                }
                _ => report.done_directories += 1,
            }
        }
        // all slots are reusable now (every directory is done)
        let _ = &mut ring;
        Ok((
            NoUndoStore {
                active: HashMap::new(),
                locks: ExclusiveLocks::default(),
                next_txn: max_txn + 1,
                stats: OverwriteStats::default(),
                disk,
                ring,
                cfg,
            },
            report,
        ))
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> OverwriteStats {
        self.stats
    }

    /// Begin a transaction.
    pub fn begin(&mut self) -> TxnId {
        let t = self.next_txn;
        self.next_txn += 1;
        self.active.insert(
            t,
            NoUndoTxn {
                delta: BTreeMap::new(),
            },
        );
        t
    }

    fn check(&self, txn: TxnId, page: u64) -> Result<(), ShadowError> {
        if page >= self.cfg.logical_pages {
            return Err(ShadowError::OutOfBounds { page });
        }
        if !self.active.contains_key(&txn) {
            return Err(ShadowError::UnknownTxn(txn));
        }
        Ok(())
    }

    /// Read bytes (own working version, else the home copy — the shadow
    /// stays in its original location while the transaction is active).
    pub fn read(
        &mut self,
        txn: TxnId,
        page: u64,
        offset: usize,
        len: usize,
    ) -> Result<Vec<u8>, ShadowError> {
        self.check(txn, page)?;
        if let Some(p) = self.active[&txn].delta.get(&page) {
            return Ok(p.read_at(offset, len).to_vec());
        }
        if self.disk.is_allocated(page) {
            let p = read_page_retry(&self.disk, page, IO_RETRIES)?;
            Ok(p.read_at(offset, len).to_vec())
        } else {
            Ok(vec![0; len])
        }
    }

    /// Write bytes under an exclusive page lock; the home copy is not
    /// touched until commit.
    pub fn write(
        &mut self,
        txn: TxnId,
        page: u64,
        offset: usize,
        data: &[u8],
    ) -> Result<(), ShadowError> {
        self.check(txn, page)?;
        if offset + data.len() > PAYLOAD_SIZE {
            return Err(ShadowError::OutOfBounds { page });
        }
        self.locks.acquire(txn, page)?;
        if !self.active[&txn].delta.contains_key(&page) {
            let base = if self.disk.is_allocated(page) {
                self.disk.read_page(page)?
            } else {
                Page::new(PageId(page))
            };
            if self.active[&txn].delta.len() >= MAX_TXN_PAGES {
                return Err(ShadowError::SpaceExhausted);
            }
            self.active
                .get_mut(&txn)
                .expect("txn checked")
                .delta
                .insert(page, base);
        }
        let p = self
            .active
            .get_mut(&txn)
            .expect("txn checked")
            .delta
            .get_mut(&page)
            .expect("just materialized");
        p.write_at(offset, data);
        Ok(())
    }

    /// Stage + intent: the first half of commit (everything up to and
    /// including the atomic commit point). Split out so tests can inject a
    /// crash between commit and install.
    #[doc(hidden)]
    pub fn commit_stage(&mut self, txn: TxnId) -> Result<(u64, Vec<(u64, u64)>), ShadowError> {
        let state = self
            .active
            .remove(&txn)
            .ok_or(ShadowError::UnknownTxn(txn))?;
        let n = state.delta.len();
        let Some(slots) = self.ring.alloc_many(n + 1) else {
            // put the txn back; the caller may retry after others finish
            self.active.insert(txn, state);
            return Err(ShadowError::SpaceExhausted);
        };
        let dir_addr = slots[n];
        let mut entries = Vec::with_capacity(n);
        for ((page, mut work), &slot) in state.delta.into_iter().zip(&slots) {
            work.id = PageId(page);
            work.lsn = Lsn(txn);
            write_page_verified(&mut self.disk, slot, &work, IO_RETRIES)?;
            self.stats.scratch_writes += 1;
            entries.push((page, slot));
        }
        // the atomic commit point: one frame write
        let dir = encode_dir(DIR_LIVE, txn, &entries, dir_addr - self.cfg.logical_pages);
        write_page_verified(&mut self.disk, dir_addr, &dir, IO_RETRIES)?;
        self.stats.dir_writes += 1;
        Ok((dir_addr, entries))
    }

    /// Install + retire: the second half of commit.
    #[doc(hidden)]
    pub fn commit_install(
        &mut self,
        txn: TxnId,
        dir_addr: u64,
        entries: Vec<(u64, u64)>,
    ) -> Result<(), ShadowError> {
        for &(page, slot) in &entries {
            let staged = read_page_retry(&self.disk, slot, IO_RETRIES)?;
            write_page_verified(&mut self.disk, page, &staged, IO_RETRIES)?;
            self.stats.overwrites += 1;
        }
        let done = encode_dir(DIR_DONE, txn, &entries, dir_addr - self.cfg.logical_pages);
        write_page_verified(&mut self.disk, dir_addr, &done, IO_RETRIES)?;
        self.stats.dir_writes += 1;
        for &(_, slot) in &entries {
            self.ring.release(slot);
        }
        self.ring.release(dir_addr);
        // locks release only after the shadows are overwritten (paper)
        self.locks.release_all(txn);
        self.stats.commits += 1;
        Ok(())
    }

    /// Commit: stage updated pages to scratch, write the intent directory
    /// (commit point), install over the shadows, retire the directory.
    pub fn commit(&mut self, txn: TxnId) -> Result<(), ShadowError> {
        let (dir_addr, entries) = self.commit_stage(txn)?;
        self.commit_install(txn, dir_addr, entries)
    }

    /// Abort: drop the in-memory working set. The disk never saw anything.
    pub fn abort(&mut self, txn: TxnId) -> Result<(), ShadowError> {
        if self.active.remove(&txn).is_none() {
            return Err(ShadowError::UnknownTxn(txn));
        }
        self.locks.release_all(txn);
        self.stats.aborts += 1;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// No-redo
// ---------------------------------------------------------------------------

struct NoRedoTxn {
    /// The pair of scratch slots this transaction's directory ping-pongs
    /// between (`None` until the first write). The directory grows on every
    /// first touch, and it is the only thing standing between a scribbled
    /// home page and its saved shadow — a single slot rewritten in place
    /// would be destroyed by a crash-torn write, so successive versions
    /// alternate slots and recovery follows the survivor with the most
    /// entries.
    dir_slots: Option<(u64, u64)>,
    /// Alternation counter selecting which slot the next version hits.
    dir_writes: u64,
    /// page → scratch slot holding its shadow (original) copy
    saved: BTreeMap<u64, u64>,
    /// in-memory copies of the pages being edited (avoid rereads)
    working: BTreeMap<u64, Page>,
}

/// The no-redo overwriting store: shadows saved to scratch up front,
/// updates written home in place, commit retires the directory.
pub struct NoRedoStore {
    cfg: OverwriteConfig,
    disk: MemDisk,
    ring: ScratchRing,
    active: HashMap<TxnId, NoRedoTxn>,
    locks: ExclusiveLocks,
    next_txn: TxnId,
    stats: OverwriteStats,
}

impl NoRedoStore {
    /// A fresh store.
    pub fn new(cfg: OverwriteConfig) -> Self {
        let disk = MemDisk::new(cfg.logical_pages + cfg.scratch_slots);
        let ring = ScratchRing::new(cfg.logical_pages, cfg.scratch_slots);
        NoRedoStore {
            active: HashMap::new(),
            locks: ExclusiveLocks::default(),
            next_txn: 1,
            stats: OverwriteStats::default(),
            disk,
            ring,
            cfg,
        }
    }

    /// Capture durable state.
    pub fn crash_image(&self) -> OverwriteImage {
        OverwriteImage {
            disk: self.disk.snapshot(),
        }
    }

    /// Attach one shared fault injector to the disk.
    pub fn attach_faults(&mut self, handle: &FaultHandle) {
        self.disk.attach_faults(handle.clone());
    }

    /// Recovery: every live directory belongs to an **uncommitted**
    /// transaction — restore its shadows from scratch (undo). Committed
    /// transactions need nothing: their updates were all home before
    /// commit (no redo, by construction).
    ///
    /// Directories ping-pong between two slots, so a transaction may leave
    /// several decodable frames behind. Any `DONE` frame means the
    /// transaction completed (commit and abort stamp both slots); otherwise
    /// the `LIVE` frame with the most entries is the newest durable
    /// directory — the crash tore at most the version after it, whose new
    /// page was never scribbled home.
    pub fn recover(
        image: OverwriteImage,
        cfg: OverwriteConfig,
    ) -> Result<(Self, OverwriteRecoveryReport), ShadowError> {
        let mut disk = image.disk;
        let ring = ScratchRing::new(cfg.logical_pages, cfg.scratch_slots);
        let mut report = OverwriteRecoveryReport::default();
        let mut max_txn = 0;
        // txn → (saw a DONE frame, live frames as (addr, entries))
        type TxnDirs = (bool, Vec<(u64, Vec<(u64, u64)>)>);
        let mut by_txn: BTreeMap<TxnId, TxnDirs> = BTreeMap::new();
        for (addr, state, txn, entries) in scan_directories(&disk, &ring) {
            max_txn = max_txn.max(txn);
            let dirs = by_txn.entry(txn).or_default();
            if state == DIR_DONE {
                dirs.0 = true;
            } else {
                dirs.1.push((addr, entries));
            }
        }
        for (txn, (done, lives)) in by_txn {
            if done {
                report.done_directories += 1;
                continue;
            }
            let Some((_, entries)) = lives.iter().max_by_key(|(_, e)| e.len()) else {
                continue;
            };
            for &(page, slot) in entries {
                let shadow = read_page_retry(&disk, slot, IO_RETRIES)?;
                if shadow.id != PageId(page) {
                    return Err(ShadowError::Storage(StorageError::Protocol(
                        "saved shadow does not match its directory entry",
                    )));
                }
                write_page_verified(&mut disk, page, &shadow, IO_RETRIES)?;
                report.pages_copied += 1;
            }
            // retire every frame the transaction left behind
            for (addr, entries) in &lives {
                let retired = encode_dir(DIR_DONE, txn, entries, addr - cfg.logical_pages);
                write_page_verified(&mut disk, *addr, &retired, IO_RETRIES)?;
            }
            report.txns_processed += 1;
        }
        Ok((
            NoRedoStore {
                active: HashMap::new(),
                locks: ExclusiveLocks::default(),
                next_txn: max_txn + 1,
                stats: OverwriteStats::default(),
                disk,
                ring,
                cfg,
            },
            report,
        ))
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> OverwriteStats {
        self.stats
    }

    /// Begin a transaction: allocates its directory slot lazily on first
    /// write.
    pub fn begin(&mut self) -> TxnId {
        let t = self.next_txn;
        self.next_txn += 1;
        self.active.insert(
            t,
            NoRedoTxn {
                dir_slots: None,
                dir_writes: 0,
                saved: BTreeMap::new(),
                working: BTreeMap::new(),
            },
        );
        t
    }

    fn check(&self, txn: TxnId, page: u64) -> Result<(), ShadowError> {
        if page >= self.cfg.logical_pages {
            return Err(ShadowError::OutOfBounds { page });
        }
        if !self.active.contains_key(&txn) {
            return Err(ShadowError::UnknownTxn(txn));
        }
        Ok(())
    }

    /// Read bytes (home copies are always current under no-redo).
    pub fn read(
        &mut self,
        txn: TxnId,
        page: u64,
        offset: usize,
        len: usize,
    ) -> Result<Vec<u8>, ShadowError> {
        self.check(txn, page)?;
        if let Some(p) = self.active[&txn].working.get(&page) {
            return Ok(p.read_at(offset, len).to_vec());
        }
        if self.disk.is_allocated(page) {
            let p = read_page_retry(&self.disk, page, IO_RETRIES)?;
            Ok(p.read_at(offset, len).to_vec())
        } else {
            Ok(vec![0; len])
        }
    }

    /// Write the next version of the transaction's directory into the slot
    /// the previous version did NOT use.
    fn write_dir(&mut self, txn: TxnId) -> Result<(), ShadowError> {
        let state = self.active.get(&txn).expect("txn active");
        let (a, b) = state
            .dir_slots
            .expect("dir slots allocated before write_dir");
        let addr = if state.dir_writes.is_multiple_of(2) {
            a
        } else {
            b
        };
        let entries: Vec<(u64, u64)> = state.saved.iter().map(|(&p, &s)| (p, s)).collect();
        let dir = encode_dir(DIR_LIVE, txn, &entries, addr - self.cfg.logical_pages);
        write_page_verified(&mut self.disk, addr, &dir, IO_RETRIES)?;
        self.active.get_mut(&txn).expect("txn active").dir_writes += 1;
        self.stats.dir_writes += 1;
        Ok(())
    }

    /// Write bytes: the first touch of a page saves its shadow to scratch
    /// and records it in the directory **before** the home copy changes;
    /// the update itself is written home immediately (all updates are on
    /// disk before commit — that is what makes redo unnecessary).
    pub fn write(
        &mut self,
        txn: TxnId,
        page: u64,
        offset: usize,
        data: &[u8],
    ) -> Result<(), ShadowError> {
        self.check(txn, page)?;
        if offset + data.len() > PAYLOAD_SIZE {
            return Err(ShadowError::OutOfBounds { page });
        }
        self.locks.acquire(txn, page)?;
        let first_touch = !self.active[&txn].saved.contains_key(&page);
        if first_touch {
            if self.active[&txn].saved.len() >= MAX_TXN_PAGES {
                return Err(ShadowError::SpaceExhausted);
            }
            let needs_dir = self.active[&txn].dir_slots.is_none();
            let Some(slots) = self.ring.alloc_many(1 + 2 * usize::from(needs_dir)) else {
                return Err(ShadowError::SpaceExhausted);
            };
            let save_slot = slots[0];
            if needs_dir {
                self.active.get_mut(&txn).expect("active").dir_slots = Some((slots[1], slots[2]));
            }
            // 1. save the shadow
            let original = if self.disk.is_allocated(page) {
                read_page_retry(&self.disk, page, IO_RETRIES)?
            } else {
                Page::new(PageId(page))
            };
            write_page_verified(&mut self.disk, save_slot, &original, IO_RETRIES)?;
            self.stats.scratch_writes += 1;
            // 2. record it in the directory (durable before the overwrite)
            {
                let st = self.active.get_mut(&txn).expect("active");
                st.saved.insert(page, save_slot);
                st.working.insert(page, original);
            }
            self.write_dir(txn)?;
        }
        // 3. update the home copy in place
        let st = self.active.get_mut(&txn).expect("active");
        let work = st.working.get_mut(&page).expect("saved implies working");
        work.write_at(offset, data);
        work.lsn = Lsn(txn);
        let copy = work.clone();
        write_page_verified(&mut self.disk, page, &copy, IO_RETRIES)?;
        self.stats.overwrites += 1;
        Ok(())
    }

    /// Stamp `DONE` into both directory slots (so no stale `LIVE` version
    /// can survive the slots' release) and return the scratch space.
    fn retire_dirs(
        &mut self,
        txn: TxnId,
        slots: (u64, u64),
        saved: BTreeMap<u64, u64>,
    ) -> Result<(), ShadowError> {
        let entries: Vec<(u64, u64)> = saved.iter().map(|(&p, &s)| (p, s)).collect();
        for addr in [slots.0, slots.1] {
            let done = encode_dir(DIR_DONE, txn, &entries, addr - self.cfg.logical_pages);
            write_page_verified(&mut self.disk, addr, &done, IO_RETRIES)?;
            self.stats.dir_writes += 1;
        }
        for (_, slot) in saved {
            self.ring.release(slot);
        }
        self.ring.release(slots.0);
        self.ring.release(slots.1);
        Ok(())
    }

    /// Commit: everything is already on disk; retiring the directory is
    /// the atomic commit point. Locks release after.
    pub fn commit(&mut self, txn: TxnId) -> Result<(), ShadowError> {
        let state = self
            .active
            .remove(&txn)
            .ok_or(ShadowError::UnknownTxn(txn))?;
        if let Some(slots) = state.dir_slots {
            self.retire_dirs(txn, slots, state.saved)?;
        }
        self.locks.release_all(txn);
        self.stats.commits += 1;
        Ok(())
    }

    /// Abort: restore every shadow from scratch over the home copy, then
    /// retire the directory.
    pub fn abort(&mut self, txn: TxnId) -> Result<(), ShadowError> {
        let state = self
            .active
            .remove(&txn)
            .ok_or(ShadowError::UnknownTxn(txn))?;
        if let Some(slots) = state.dir_slots {
            for (&page, &slot) in &state.saved {
                let shadow = read_page_retry(&self.disk, slot, IO_RETRIES)?;
                write_page_verified(&mut self.disk, page, &shadow, IO_RETRIES)?;
                self.stats.overwrites += 1;
            }
            self.retire_dirs(txn, slots, state.saved)?;
        }
        self.locks.release_all(txn);
        self.stats.aborts += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> OverwriteConfig {
        OverwriteConfig {
            logical_pages: 32,
            scratch_slots: 16,
        }
    }

    mod no_undo {
        use super::*;

        fn committed_read(s: &mut NoUndoStore, page: u64, off: usize, len: usize) -> Vec<u8> {
            let t = s.begin();
            let v = s.read(t, page, off, len).unwrap();
            s.abort(t).unwrap();
            v
        }

        #[test]
        fn commit_overwrites_shadow_in_place() {
            let mut s = NoUndoStore::new(cfg());
            let t = s.begin();
            s.write(t, 3, 0, b"new").unwrap();
            assert_eq!(committed_read(&mut s, 3, 0, 3), vec![0; 3]);
            s.commit(t).unwrap();
            assert_eq!(committed_read(&mut s, 3, 0, 3), b"new");
            // page stayed at its home address — no relocation
            let img = s.crash_image();
            assert_eq!(img.disk.read_page(3).unwrap().read_at(0, 3), b"new");
        }

        #[test]
        fn abort_is_free_and_traceless() {
            let mut s = NoUndoStore::new(cfg());
            let t = s.begin();
            s.write(t, 1, 0, b"junk").unwrap();
            let writes_before_abort = s.crash_image().disk.writes();
            s.abort(t).unwrap();
            assert_eq!(committed_read(&mut s, 1, 0, 4), vec![0; 4]);
            assert_eq!(s.stats().scratch_writes, 0, "no-undo aborts touch no disk");
            let _ = writes_before_abort;
        }

        #[test]
        fn crash_before_intent_loses_txn() {
            let mut s = NoUndoStore::new(cfg());
            let t0 = s.begin();
            s.write(t0, 1, 0, b"base").unwrap();
            s.commit(t0).unwrap();
            let t = s.begin();
            s.write(t, 1, 0, b"half").unwrap();
            // crash before commit: delta was memory-only
            let (mut s2, report) = NoUndoStore::recover(s.crash_image(), cfg()).unwrap();
            assert_eq!(committed_read(&mut s2, 1, 0, 4), b"base");
            assert_eq!(report.txns_processed, 0);
        }

        #[test]
        fn crash_between_intent_and_install_redoes_install() {
            let mut s = NoUndoStore::new(cfg());
            let t = s.begin();
            s.write(t, 4, 0, b"AAAA").unwrap();
            s.write(t, 5, 0, b"BBBB").unwrap();
            let (_dir, _entries) = s.commit_stage(t).unwrap(); // commit point passed
            let image = s.crash_image(); // crash before install
            assert!(!image.disk.is_allocated(4), "home not yet written");
            let (mut s2, report) = NoUndoStore::recover(image, cfg()).unwrap();
            assert_eq!(report.txns_processed, 1);
            assert_eq!(report.pages_copied, 2);
            assert_eq!(committed_read(&mut s2, 4, 0, 4), b"AAAA");
            assert_eq!(committed_read(&mut s2, 5, 0, 4), b"BBBB");
        }

        #[test]
        fn recovery_is_idempotent() {
            let mut s = NoUndoStore::new(cfg());
            let t = s.begin();
            s.write(t, 4, 0, b"AAAA").unwrap();
            s.commit_stage(t).unwrap();
            let (s2, r1) = NoUndoStore::recover(s.crash_image(), cfg()).unwrap();
            let (mut s3, r2) = NoUndoStore::recover(s2.crash_image(), cfg()).unwrap();
            assert_eq!(r1.txns_processed, 1);
            assert_eq!(r2.txns_processed, 0, "done directory skipped");
            assert_eq!(r2.done_directories, 1);
            assert_eq!(committed_read(&mut s3, 4, 0, 4), b"AAAA");
        }

        #[test]
        fn crash_after_full_commit_preserves() {
            let mut s = NoUndoStore::new(cfg());
            let t = s.begin();
            s.write(t, 9, 0, b"done").unwrap();
            s.commit(t).unwrap();
            let (mut s2, report) = NoUndoStore::recover(s.crash_image(), cfg()).unwrap();
            assert_eq!(committed_read(&mut s2, 9, 0, 4), b"done");
            assert_eq!(report.txns_processed, 0);
        }

        #[test]
        fn scratch_slots_are_recycled() {
            let mut s = NoUndoStore::new(OverwriteConfig {
                logical_pages: 8,
                scratch_slots: 4,
            });
            // each commit uses 2 slots (1 page + dir); 10 commits must fit
            for gen in 0..10u32 {
                let t = s.begin();
                s.write(t, 0, 0, &gen.to_le_bytes()).unwrap();
                s.commit(t).unwrap();
            }
            assert_eq!(committed_read(&mut s, 0, 0, 4), 9u32.to_le_bytes());
        }

        #[test]
        fn scratch_exhaustion_is_reported_and_recoverable() {
            let mut s = NoUndoStore::new(OverwriteConfig {
                logical_pages: 16,
                scratch_slots: 3,
            });
            let t = s.begin();
            for page in 0..4 {
                s.write(t, page, 0, b"x").unwrap();
            }
            // needs 5 slots, only 3 exist
            assert_eq!(s.commit(t), Err(ShadowError::SpaceExhausted));
            // transaction is still alive and can be aborted cleanly
            s.abort(t).unwrap();
        }

        #[test]
        fn lock_held_until_install_completes() {
            let mut s = NoUndoStore::new(cfg());
            let a = s.begin();
            s.write(a, 2, 0, b"a").unwrap();
            let b = s.begin();
            assert!(matches!(
                s.write(b, 2, 0, b"b"),
                Err(ShadowError::LockConflict { .. })
            ));
            let (dir, entries) = s.commit_stage(a).unwrap();
            // commit point passed but shadows not yet overwritten: paper
            // says locks release only after the overwrite
            assert!(matches!(
                s.write(b, 2, 0, b"b"),
                Err(ShadowError::LockConflict { .. })
            ));
            s.commit_install(a, dir, entries).unwrap();
            s.write(b, 2, 0, b"b").unwrap();
            s.commit(b).unwrap();
        }
    }

    mod no_redo {
        use super::*;

        fn committed_read(s: &mut NoRedoStore, page: u64, off: usize, len: usize) -> Vec<u8> {
            let t = s.begin();
            let v = s.read(t, page, off, len).unwrap();
            s.commit(t).unwrap();
            v
        }

        #[test]
        fn updates_hit_home_immediately() {
            let mut s = NoRedoStore::new(cfg());
            let t = s.begin();
            s.write(t, 3, 0, b"live").unwrap();
            // on disk before commit — that is the no-redo property
            let img = s.crash_image();
            assert_eq!(img.disk.read_page(3).unwrap().read_at(0, 4), b"live");
            s.commit(t).unwrap();
            assert_eq!(committed_read(&mut s, 3, 0, 4), b"live");
        }

        #[test]
        fn abort_restores_shadows() {
            let mut s = NoRedoStore::new(cfg());
            let t0 = s.begin();
            s.write(t0, 1, 0, b"base").unwrap();
            s.commit(t0).unwrap();
            let t = s.begin();
            s.write(t, 1, 0, b"junk").unwrap();
            s.write(t, 1, 2, b"!!").unwrap(); // second write, same page
            s.abort(t).unwrap();
            assert_eq!(committed_read(&mut s, 1, 0, 4), b"base");
        }

        #[test]
        fn crash_mid_txn_restores_shadows() {
            let mut s = NoRedoStore::new(cfg());
            let t0 = s.begin();
            s.write(t0, 1, 0, b"base").unwrap();
            s.write(t0, 2, 0, b"keep").unwrap();
            s.commit(t0).unwrap();
            let t = s.begin();
            s.write(t, 1, 0, b"bad1").unwrap();
            s.write(t, 2, 0, b"bad2").unwrap();
            // crash with home pages scribbled
            let image = s.crash_image();
            assert_eq!(image.disk.read_page(1).unwrap().read_at(0, 4), b"bad1");
            let (mut s2, report) = NoRedoStore::recover(image, cfg()).unwrap();
            assert_eq!(report.txns_processed, 1);
            assert_eq!(report.pages_copied, 2);
            assert_eq!(committed_read(&mut s2, 1, 0, 4), b"base");
            assert_eq!(committed_read(&mut s2, 2, 0, 4), b"keep");
        }

        #[test]
        fn crash_after_commit_needs_no_work() {
            let mut s = NoRedoStore::new(cfg());
            let t = s.begin();
            s.write(t, 7, 0, b"done").unwrap();
            s.commit(t).unwrap();
            let (mut s2, report) = NoRedoStore::recover(s.crash_image(), cfg()).unwrap();
            assert_eq!(report.txns_processed, 0, "no-redo never redoes");
            assert_eq!(committed_read(&mut s2, 7, 0, 4), b"done");
        }

        #[test]
        fn recovery_is_idempotent() {
            let mut s = NoRedoStore::new(cfg());
            let t0 = s.begin();
            s.write(t0, 1, 0, b"base").unwrap();
            s.commit(t0).unwrap();
            let t = s.begin();
            s.write(t, 1, 0, b"bad!").unwrap();
            let (s2, r1) = NoRedoStore::recover(s.crash_image(), cfg()).unwrap();
            let (mut s3, r2) = NoRedoStore::recover(s2.crash_image(), cfg()).unwrap();
            assert_eq!(r1.txns_processed, 1);
            assert_eq!(r2.txns_processed, 0);
            assert_eq!(committed_read(&mut s3, 1, 0, 4), b"base");
        }

        #[test]
        fn two_txns_different_pages_one_commits_one_crashes() {
            let mut s = NoRedoStore::new(cfg());
            let w = s.begin();
            let l = s.begin();
            s.write(w, 1, 0, b"winw").unwrap();
            s.write(l, 2, 0, b"losr").unwrap();
            s.commit(w).unwrap();
            let (mut s2, report) = NoRedoStore::recover(s.crash_image(), cfg()).unwrap();
            assert_eq!(report.txns_processed, 1); // only the loser
            assert_eq!(committed_read(&mut s2, 1, 0, 4), b"winw");
            assert_eq!(committed_read(&mut s2, 2, 0, 4), vec![0; 4]);
        }

        #[test]
        fn scratch_slots_are_recycled() {
            let mut s = NoRedoStore::new(OverwriteConfig {
                logical_pages: 8,
                scratch_slots: 4,
            });
            for gen in 0..10u32 {
                let t = s.begin();
                s.write(t, 0, 0, &gen.to_le_bytes()).unwrap();
                s.commit(t).unwrap();
            }
            assert_eq!(committed_read(&mut s, 0, 0, 4), 9u32.to_le_bytes());
        }

        #[test]
        fn read_only_txn_has_no_directory_cost() {
            let mut s = NoRedoStore::new(cfg());
            let t = s.begin();
            s.read(t, 0, 0, 4).unwrap();
            s.commit(t).unwrap();
            assert_eq!(s.stats().dir_writes, 0);
        }
    }
}
