//! Serialization of experiment results.
//!
//! The bench harness writes each regenerated table both as aligned text
//! (for EXPERIMENTS.md) and as JSON (machine-readable provenance).

use rmdb_machine::experiments::ExpTable;

/// Serialize a set of tables to pretty JSON.
pub fn tables_to_json(tables: &[ExpTable]) -> String {
    serde_json::to_string_pretty(tables).expect("tables serialize")
}

/// Render a set of tables as one text report.
pub fn tables_to_text(tables: &[ExpTable]) -> String {
    let mut out = String::new();
    for t in tables {
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmdb_machine::experiments::table01;

    #[test]
    fn json_round_trips_structure() {
        let tables = vec![table01(4)];
        let json = tables_to_json(&tables);
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed[0]["id"], "table01");
        assert!(parsed[0]["rows"].as_array().unwrap().len() == 4);
    }

    #[test]
    fn text_report_contains_titles() {
        let tables = vec![table01(4)];
        let text = tables_to_text(&tables);
        assert!(text.contains("Impact of Logging"));
    }
}
