//! Public umbrella API for the recovery-architecture study.
//!
//! This crate ties the workspace together for downstream users:
//!
//! * re-exports the functional recovery engines (parallel-logging
//!   [`rmdb_wal::WalDb`], the three shadow stores, and the
//!   differential-file [`rmdb_difffile::DiffDb`]);
//! * defines [`PageStore`], the common transactional page interface every
//!   page-granular engine implements, so applications (and the
//!   cross-architecture crash tests) can be written once and run against
//!   any recovery architecture;
//! * re-exports the database-machine simulator and the per-table
//!   experiment drivers, plus [`export::tables_to_json`] for persisting
//!   experiment results.
//!
//! # Running an experiment
//!
//! ```
//! use rmdb_core::experiments;
//!
//! // Table 1 at a reduced batch size (40 is paper scale)
//! let table = experiments::table01(4);
//! assert_eq!(table.rows.len(), 4);
//! let conv_random = &table.rows[0];
//! assert!(conv_random.get("exec w/ log").unwrap() > 0.0);
//! println!("{}", table.render());
//! ```
//!
//! # Choosing an architecture
//!
//! The paper's conclusion (§5) holds in this reproduction: parallel
//! logging collects recovery data almost for free because log-page
//! assembly overlaps data processing, while shadow indirection, overwrite
//! staging, and differential-file set-differences all contend with the
//! machine's scarce resources. Use [`rmdb_wal::WalDb`] unless the workload
//! is dominated by sequential scans on parallel-access drives (where
//! overwriting is competitive) or calls for hypothetical-database
//! semantics (differential files).

pub mod export;
pub mod store;

pub use rmdb_difffile as difffile;
pub use rmdb_disk as disk;
pub use rmdb_machine as machine;
pub use rmdb_shadow as shadow;
pub use rmdb_sim as sim;
pub use rmdb_storage as storage;
pub use rmdb_wal as wal;

pub use machine::experiments;
pub use store::PageStore;
