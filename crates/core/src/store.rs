//! [`PageStore`]: the common transactional page interface.
//!
//! Every page-granular recovery engine in this workspace — write-ahead
//! logging, the canonical shadow pager, version selection, and both
//! overwriting variants — exposes the same begin/read/write/commit/abort
//! lifecycle. This trait captures it so applications and tests can be
//! written once and instantiated per architecture; the cross-architecture
//! crash-consistency suite in `tests/` is the flagship user.

use rmdb_shadow::{NoRedoStore, NoUndoStore, ShadowError, ShadowPager, VersionStore};
use rmdb_wal::{WalDb, WalError};

/// A transactional store of fixed-size pages addressed by page number.
pub trait PageStore {
    /// Architecture-specific error type.
    type Error: std::error::Error + 'static;

    /// Start a transaction; returns its id.
    fn begin(&mut self) -> u64;

    /// Read `len` bytes at `offset` within `page`.
    fn read(
        &mut self,
        txn: u64,
        page: u64,
        offset: usize,
        len: usize,
    ) -> Result<Vec<u8>, Self::Error>;

    /// Write `data` at `offset` within `page`.
    fn write(&mut self, txn: u64, page: u64, offset: usize, data: &[u8])
        -> Result<(), Self::Error>;

    /// Commit the transaction durably.
    fn commit(&mut self, txn: u64) -> Result<(), Self::Error>;

    /// Abort the transaction, undoing all its effects.
    fn abort(&mut self, txn: u64) -> Result<(), Self::Error>;

    /// Human-readable architecture name (for test/report labels).
    fn architecture(&self) -> &'static str;
}

impl PageStore for WalDb {
    type Error = WalError;

    fn begin(&mut self) -> u64 {
        WalDb::begin(self)
    }
    fn read(
        &mut self,
        txn: u64,
        page: u64,
        offset: usize,
        len: usize,
    ) -> Result<Vec<u8>, WalError> {
        WalDb::read(self, txn, page, offset, len)
    }
    fn write(&mut self, txn: u64, page: u64, offset: usize, data: &[u8]) -> Result<(), WalError> {
        WalDb::write(self, txn, page, offset, data)
    }
    fn commit(&mut self, txn: u64) -> Result<(), WalError> {
        WalDb::commit(self, txn)
    }
    fn abort(&mut self, txn: u64) -> Result<(), WalError> {
        WalDb::abort(self, txn)
    }
    fn architecture(&self) -> &'static str {
        "parallel logging (WAL)"
    }
}

impl PageStore for ShadowPager {
    type Error = ShadowError;

    fn begin(&mut self) -> u64 {
        ShadowPager::begin(self)
    }
    fn read(
        &mut self,
        txn: u64,
        page: u64,
        offset: usize,
        len: usize,
    ) -> Result<Vec<u8>, ShadowError> {
        ShadowPager::read(self, txn, page, offset, len)
    }
    fn write(
        &mut self,
        txn: u64,
        page: u64,
        offset: usize,
        data: &[u8],
    ) -> Result<(), ShadowError> {
        ShadowPager::write(self, txn, page, offset, data)
    }
    fn commit(&mut self, txn: u64) -> Result<(), ShadowError> {
        ShadowPager::commit(self, txn)
    }
    fn abort(&mut self, txn: u64) -> Result<(), ShadowError> {
        ShadowPager::abort(self, txn)
    }
    fn architecture(&self) -> &'static str {
        "shadow (thru page-table)"
    }
}

impl PageStore for VersionStore {
    type Error = ShadowError;

    fn begin(&mut self) -> u64 {
        VersionStore::begin(self)
    }
    fn read(
        &mut self,
        txn: u64,
        page: u64,
        offset: usize,
        len: usize,
    ) -> Result<Vec<u8>, ShadowError> {
        VersionStore::read(self, txn, page, offset, len)
    }
    fn write(
        &mut self,
        txn: u64,
        page: u64,
        offset: usize,
        data: &[u8],
    ) -> Result<(), ShadowError> {
        VersionStore::write(self, txn, page, offset, data)
    }
    fn commit(&mut self, txn: u64) -> Result<(), ShadowError> {
        VersionStore::commit(self, txn)
    }
    fn abort(&mut self, txn: u64) -> Result<(), ShadowError> {
        VersionStore::abort(self, txn)
    }
    fn architecture(&self) -> &'static str {
        "shadow (version selection)"
    }
}

impl PageStore for NoUndoStore {
    type Error = ShadowError;

    fn begin(&mut self) -> u64 {
        NoUndoStore::begin(self)
    }
    fn read(
        &mut self,
        txn: u64,
        page: u64,
        offset: usize,
        len: usize,
    ) -> Result<Vec<u8>, ShadowError> {
        NoUndoStore::read(self, txn, page, offset, len)
    }
    fn write(
        &mut self,
        txn: u64,
        page: u64,
        offset: usize,
        data: &[u8],
    ) -> Result<(), ShadowError> {
        NoUndoStore::write(self, txn, page, offset, data)
    }
    fn commit(&mut self, txn: u64) -> Result<(), ShadowError> {
        NoUndoStore::commit(self, txn)
    }
    fn abort(&mut self, txn: u64) -> Result<(), ShadowError> {
        NoUndoStore::abort(self, txn)
    }
    fn architecture(&self) -> &'static str {
        "overwriting (no-undo)"
    }
}

impl PageStore for NoRedoStore {
    type Error = ShadowError;

    fn begin(&mut self) -> u64 {
        NoRedoStore::begin(self)
    }
    fn read(
        &mut self,
        txn: u64,
        page: u64,
        offset: usize,
        len: usize,
    ) -> Result<Vec<u8>, ShadowError> {
        NoRedoStore::read(self, txn, page, offset, len)
    }
    fn write(
        &mut self,
        txn: u64,
        page: u64,
        offset: usize,
        data: &[u8],
    ) -> Result<(), ShadowError> {
        NoRedoStore::write(self, txn, page, offset, data)
    }
    fn commit(&mut self, txn: u64) -> Result<(), ShadowError> {
        NoRedoStore::commit(self, txn)
    }
    fn abort(&mut self, txn: u64) -> Result<(), ShadowError> {
        NoRedoStore::abort(self, txn)
    }
    fn architecture(&self) -> &'static str {
        "overwriting (no-redo)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmdb_shadow::{OverwriteConfig, ShadowConfig, VersionConfig};
    use rmdb_wal::WalConfig;

    /// The same little application run against any architecture.
    fn exercise<S: PageStore>(store: &mut S) {
        let t = store.begin();
        store.write(t, 1, 0, b"alpha").unwrap();
        store.write(t, 2, 0, b"beta!").unwrap();
        store.commit(t).unwrap();

        let t2 = store.begin();
        store.write(t2, 1, 0, b"WRONG").unwrap();
        store.abort(t2).unwrap();

        let t3 = store.begin();
        assert_eq!(
            store.read(t3, 1, 0, 5).unwrap(),
            b"alpha",
            "{}: abort must roll back",
            store.architecture()
        );
        assert_eq!(store.read(t3, 2, 0, 5).unwrap(), b"beta!");
        store.abort(t3).unwrap();
    }

    #[test]
    fn all_architectures_satisfy_the_contract() {
        exercise(&mut WalDb::new(WalConfig::default()));
        exercise(&mut ShadowPager::new(ShadowConfig::default()).unwrap());
        exercise(&mut VersionStore::new(VersionConfig::default()));
        exercise(&mut NoUndoStore::new(OverwriteConfig::default()));
        exercise(&mut NoRedoStore::new(OverwriteConfig::default()));
    }

    #[test]
    fn architecture_names_are_distinct() {
        let names = [
            WalDb::new(WalConfig::default()).architecture(),
            ShadowPager::new(ShadowConfig::default())
                .unwrap()
                .architecture(),
            VersionStore::new(VersionConfig::default()).architecture(),
            NoUndoStore::new(OverwriteConfig::default()).architecture(),
            NoRedoStore::new(OverwriteConfig::default()).architecture(),
        ];
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), names.len());
    }
}
