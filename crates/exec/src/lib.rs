//! Concurrent transaction pipeline for the parallel-WAL architecture.
//!
//! The simulation crates model the paper's multiprocessor as an event
//! loop; this crate runs it on real threads. The paper's machine
//! organisation maps one-to-one onto the pipeline's actors:
//!
//! | paper role | thread |
//! |---|---|
//! | query processor | caller worker ([`Executor`] or any thread) |
//! | log processor | [`LogAppender`] — one per log stream |
//! | back-end controller, scheduler | [`ExecDb`] lock path + wait slots |
//! | back-end controller, commit | group-commit daemon ([`CommitHandle`]) |
//! | recovery supervisor | health-check thread ([`supervisor`]) |
//!
//! Fragments flow from workers to their transaction's log processor over
//! bounded channels; commit forces are batched across streams by the
//! group-commit daemon; the monolithic engine mutex is decomposed into a
//! scheduler mutex, sharded buffer-pool locks and per-stream append
//! state. Crash images taken from a live pipeline recover through the
//! ordinary [`rmdb_wal::WalDb::recover`] path — same log format, same
//! distributed-log analysis, no merging.
//!
//! A supervisor thread health-checks the appender fleet; a log processor
//! that dies mid-run (device failure, thread panic, wedged I/O) is
//! quarantined and its in-flight fragments rerouted to survivors — see
//! [`supervisor`] and [`error::AppenderError`] for the failure taxonomy.
//! The same supervisor doubles as the membership manager: recovered
//! devices rejoin the fleet ([`ExecDb::rejoin_stream`]), dead ones are
//! replaced ([`ExecDb::replace_stream`]), and the serving fleet can be
//! resized live ([`ExecDb::park_stream`] / [`ExecDb::unpark_stream`]).
//!
//! # Example
//!
//! ```
//! use rmdb_exec::{ExecConfig, ExecDb};
//! use std::sync::Arc;
//!
//! let db = Arc::new(ExecDb::new(ExecConfig::default()));
//! crossbeam::thread::scope(|s| {
//!     for w in 0..4usize {
//!         let db = Arc::clone(&db);
//!         s.spawn(move |_| {
//!             db.run_txn(w, |ctx| ctx.write(w as u64, 0, b"hello"))
//!                 .unwrap();
//!         });
//!     }
//! })
//! .unwrap();
//! assert_eq!(db.stats().committed, 4);
//! ```

// This crate is failover-critical: a mutex `unwrap()` that panics while a
// sibling holds poisoned state turns one stream's death into a pipeline-wide
// outage. Library code must use `sync::lock_ok` (or a typed error path)
// instead; `scripts/verify.sh` promotes this to an error. Test modules are
// exempt — panicking on a poisoned lock in a test is exactly right.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod appender;
pub mod db;
pub mod error;
pub mod executor;
pub mod group;
pub mod supervisor;

pub use appender::{AppenderProbe, LogAppender, TicketInheritance};
pub use db::{ExecConfig, ExecCtx, ExecDb, ExecStats, RejoinReport, SnapshotCtx, Txn};
pub use error::{AppenderError, ExecError};
pub use executor::{Executor, JobHandle};
pub use group::CommitHandle;

/// Poison-tolerant lock helpers shared by the pipeline's actors.
pub(crate) mod sync {
    use std::sync::{Mutex, MutexGuard};

    /// Acquire `m`, repairing poisoning: every mutex this is used on
    /// guards state whose invariants hold at *every* store (counters,
    /// deposited values, already-validated queues), so a panic in one
    /// holder cannot leave the data half-updated — the right response
    /// is to keep the pipeline alive, not to cascade the panic into
    /// every thread that touches the lock afterwards. Locks whose
    /// guarded state *can* be mid-update (the scheduler's lock table)
    /// instead surface [`crate::ExecError::Poisoned`] at the call site.
    pub(crate) fn lock_ok<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
        m.lock().unwrap_or_else(|e| e.into_inner())
    }
}
