//! Concurrent transaction pipeline for the parallel-WAL architecture.
//!
//! The simulation crates model the paper's multiprocessor as an event
//! loop; this crate runs it on real threads. The paper's machine
//! organisation maps one-to-one onto the pipeline's actors:
//!
//! | paper role | thread |
//! |---|---|
//! | query processor | caller worker ([`Executor`] or any thread) |
//! | log processor | [`LogAppender`] — one per log stream |
//! | back-end controller, scheduler | [`ExecDb`] lock path + wait slots |
//! | back-end controller, commit | group-commit daemon ([`CommitHandle`]) |
//!
//! Fragments flow from workers to their transaction's log processor over
//! bounded channels; commit forces are batched across streams by the
//! group-commit daemon; the monolithic engine mutex is decomposed into a
//! scheduler mutex, sharded buffer-pool locks and per-stream append
//! state. Crash images taken from a live pipeline recover through the
//! ordinary [`rmdb_wal::WalDb::recover`] path — same log format, same
//! distributed-log analysis, no merging.
//!
//! # Example
//!
//! ```
//! use rmdb_exec::{ExecConfig, ExecDb};
//! use std::sync::Arc;
//!
//! let db = Arc::new(ExecDb::new(ExecConfig::default()));
//! crossbeam::thread::scope(|s| {
//!     for w in 0..4usize {
//!         let db = Arc::clone(&db);
//!         s.spawn(move |_| {
//!             db.run_txn(w, |ctx| ctx.write(w as u64, 0, b"hello"))
//!                 .unwrap();
//!         });
//!     }
//! })
//! .unwrap();
//! assert_eq!(db.stats().committed, 4);
//! ```

pub mod appender;
pub mod db;
pub mod executor;
pub mod group;

pub use appender::LogAppender;
pub use db::{ExecConfig, ExecCtx, ExecDb, ExecStats, Txn};
pub use executor::{Executor, JobHandle};
pub use group::CommitHandle;
