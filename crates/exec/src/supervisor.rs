//! The failover supervisor: one thread health-checking the log-processor
//! fleet.
//!
//! The paper's recovery architectures assume a component that *notices*
//! a failed log processor; this is it. Every
//! [`ExecConfig::health_interval_us`](crate::ExecConfig) the supervisor
//! probes each live appender ([`crate::LogAppender::probe`]) and renders
//! a verdict:
//!
//! * a **sticky storage error** — the stream's device failed after the
//!   appender's own bounded retries → quarantine as *persistent*;
//! * a **dead thread** (`!alive`) — panic or channel collapse →
//!   quarantine as *thread death* (the panic payload, if any, surfaces
//!   through [`crate::LogAppender::shutdown`]);
//! * a **wedged thread** — the heartbeat has not advanced for
//!   [`ExecConfig::force_deadline_ms`](crate::ExecConfig) → quarantine
//!   as *stalled*. A healthy appender bumps its heartbeat every loop
//!   iteration *including idle ticks* (it wakes from its channel wait
//!   every few milliseconds), per batched request, after every force,
//!   and through each slice of the modeled device delay — so a frozen
//!   heartbeat isolates a **single** device I/O that is stuck, never a
//!   long batch or a slow-but-working device.
//!
//! Quarantining goes through [`Inner::quarantine_stream`] — the same
//! idempotent path worker append errors and daemon force errors use, so
//! whichever detector fires first wins and the rest are no-ops. The
//! supervisor is strictly an accelerator: correctness never depends on
//! it (producers discover failures synchronously too), it just shortens
//! the window in which new transactions are routed at a dead stream.
//!
//! ## Membership management
//!
//! The supervisor is also the fleet's **membership manager** — the
//! readmission half of failover:
//!
//! * **Rejoin probing** — when
//!   [`ExecConfig::rejoin_probe_ms`](crate::ExecConfig) is non-zero,
//!   every period it attempts [`Inner::rejoin_stream`] on each
//!   quarantined (non-parked) stream. A device whose fault has cleared
//!   passes the vault probe and rejoins — durable prefix revalidated,
//!   successor appender spawned, routing restored, degraded mode
//!   recomputed. A still-broken device fails the probe and simply stays
//!   quarantined until the next period; failed probes are counted in
//!   `failover.rejoin_probes_failed`.
//! * **Autoscale** — when [`ExecConfig::autoscale`](crate::ExecConfig)
//!   is set, the serving fleet tracks load: sustained idle (no appender
//!   backlog for [`SCALE_DOWN_IDLE_TICKS`] consecutive probes) parks the
//!   highest live stream, and backlog above [`SCALE_UP_BACKLOG`]
//!   fragments per live stream unparks one. Parking never shrinks the
//!   fleet below `min_live_streams`; both directions emit
//!   [`FleetResized`](rmdb_obs::EventKind::FleetResized) events.
//!
//! Per-stream `appender.health.s{i}` gauges (1 = healthy, 0 =
//! quarantined) and the `failover.detect_us` histogram (probe-loop
//! detection latency from the first suspicious probe to the verdict)
//! make the supervisor's view observable.

use crate::db::Inner;
use crate::error::AppenderError;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Autoscale: unpark a stream once backlog (issued − appended, summed
/// over live streams) exceeds this many fragments per live stream.
const SCALE_UP_BACKLOG: u64 = 64;
/// Autoscale: park a stream after this many consecutive zero-backlog
/// probes.
const SCALE_DOWN_IDLE_TICKS: u32 = 200;

/// Supervisor main loop; runs until `stop` is raised.
pub(crate) fn run_supervisor(inner: Arc<Inner>, stop: Arc<AtomicBool>) {
    let obs = inner.obs.clone();
    let n = inner.appenders.len();
    let health: Vec<_> = (0..n)
        .map(|i| obs.gauge(&format!("appender.health.s{i}")))
        .collect();
    for g in &health {
        g.set(1);
    }
    let live_gauge = obs.gauge("failover.live_streams");
    let detect_us = obs.histogram("failover.detect_us");
    let probes_failed = obs.counter("failover.rejoin_probes_failed");
    let interval = Duration::from_micros(inner.cfg.health_interval_us.max(100));
    let deadline = Duration::from_millis(inner.cfg.force_deadline_ms.max(1));
    let rejoin_probe =
        (inner.cfg.rejoin_probe_ms > 0).then(|| Duration::from_millis(inner.cfg.rejoin_probe_ms));
    let mut next_rejoin_probe = Instant::now();
    let mut idle_ticks: u32 = 0;
    // last observed heartbeat per stream, with when it last *changed*
    let mut last_beat: Vec<(u64, Instant)> = (0..n).map(|_| (0, Instant::now())).collect();
    // dead last tick, to reset the heartbeat clock across a rejoin (a
    // fresh incarnation's heartbeat could otherwise look frozen against
    // the retired incarnation's last value)
    let mut was_dead: Vec<bool> = vec![false; n];
    while !stop.load(Ordering::Acquire) {
        let mut backlog: u64 = 0;
        for i in 0..n {
            let appender = inner.appenders.get(i);
            if inner.is_stream_dead(i) {
                health[i].set(0);
                was_dead[i] = true;
                continue;
            }
            let probe = appender.probe();
            if std::mem::take(&mut was_dead[i]) {
                last_beat[i] = (probe.heartbeat, Instant::now());
            }
            backlog += probe.issued.saturating_sub(probe.appended);
            let t_suspect = {
                let (beat, since) = &mut last_beat[i];
                if probe.heartbeat != *beat {
                    *beat = probe.heartbeat;
                    *since = Instant::now();
                }
                *since
            };
            let verdict = if let Some(e) = probe.error {
                Some(AppenderError::Persistent(e))
            } else if !probe.alive {
                Some(AppenderError::ThreadDeath(
                    "appender thread found dead by supervisor".to_string(),
                ))
            } else if t_suspect.elapsed() >= deadline {
                // no beat for a whole deadline — a single device I/O is
                // wedged (a healthy thread beats every few ms when idle,
                // per batched request, and through modeled device delays)
                Some(AppenderError::Stalled {
                    what: "heartbeat",
                    waited_ms: t_suspect.elapsed().as_millis() as u64,
                })
            } else {
                None
            };
            match verdict {
                Some(error) => {
                    inner.quarantine_stream(i, &error);
                    health[i].set(0);
                    was_dead[i] = true;
                    detect_us.record(t_suspect.elapsed().as_micros() as u64);
                }
                None => health[i].set(1),
            }
        }
        // membership: probe quarantined devices for readmission
        if let Some(period) = rejoin_probe {
            if Instant::now() >= next_rejoin_probe {
                next_rejoin_probe = Instant::now() + period;
                for i in 0..n {
                    if inner.is_stream_dead(i)
                        && !inner.is_parked(i)
                        && inner.rejoin_stream(i).is_err()
                    {
                        probes_failed.inc();
                    }
                }
            }
        }
        // membership: resize the serving fleet under load
        if inner.cfg.autoscale {
            let live = inner.live_streams().max(1) as u64;
            if backlog == 0 {
                idle_ticks = idle_ticks.saturating_add(1);
            } else {
                idle_ticks = 0;
            }
            if backlog > SCALE_UP_BACKLOG * live && inner.parked_count() > 0 {
                for i in 0..n {
                    if inner.is_parked(i) && inner.unpark_stream(i).is_ok() {
                        break;
                    }
                }
                idle_ticks = 0;
            } else if idle_ticks >= SCALE_DOWN_IDLE_TICKS {
                // park the highest live stream; park_stream refuses at
                // the floor, so this is a cheap no-op when already there
                for i in (0..n).rev() {
                    if !inner.is_stream_dead(i) && inner.park_stream(i).is_ok() {
                        break;
                    }
                }
                idle_ticks = 0;
            }
        }
        live_gauge.set(inner.live_streams() as u64);
        // MVCC housekeeping: sweep dead page versions below the snapshot
        // watermark. Cheap when idle (read-latch probe per chain), and
        // riding the supervisor tick keeps chains bounded without a
        // dedicated GC thread.
        inner.mvcc.gc();
        std::thread::sleep(interval);
    }
}

#[cfg(test)]
mod tests {
    use crate::db::{ExecConfig, ExecDb};
    use crate::error::ExecError;
    use rmdb_storage::FaultPlan;
    use rmdb_wal::db::WalConfig;
    use std::time::{Duration, Instant};

    fn cfg(streams: usize) -> ExecConfig {
        ExecConfig {
            wal: WalConfig {
                data_pages: 64,
                pool_frames: 16,
                log_streams: streams,
                log_frames: 4096,
                seed: 7,
                ..WalConfig::default()
            },
            pool_shards: 4,
            health_interval_us: 200,
            force_deadline_ms: 100,
            ..ExecConfig::default()
        }
    }

    fn wait_for<F: Fn() -> bool>(what: &str, deadline: Duration, f: F) {
        let t0 = Instant::now();
        while !f() {
            assert!(t0.elapsed() < deadline, "timed out waiting for {what}");
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    #[test]
    fn slow_forces_do_not_convict_a_healthy_appender() {
        // A modeled device service time well past the stall deadline:
        // the appender heartbeats through the delay in slices, so the
        // supervisor must keep telling "slow" apart from "stuck".
        let mut c = cfg(2);
        c.force_delay_us = 250_000; // 250 ms per force
        c.force_deadline_ms = 100; // stall verdict after 100 ms
        let db = ExecDb::new(c);
        for i in 0..3u64 {
            db.run_txn(i as usize, |ctx| ctx.write(i, 0, b"slow"))
                .unwrap();
        }
        assert_eq!(db.live_streams(), 2, "slow stream falsely quarantined");
        assert!(!db.is_degraded());
        let snap = db.obs().snapshot();
        assert_eq!(snap.counter("failover.quarantined").unwrap_or(0), 0);
    }

    #[test]
    fn supervisor_quarantines_dead_appender_thread() {
        let db = ExecDb::new(cfg(3));
        db.run_txn(0, |ctx| ctx.write(1, 0, b"warm")).unwrap();
        assert_eq!(db.live_streams(), 3);
        // kill one appender thread outright; no producer ever touches it
        // again — only the supervisor can notice
        db.appender(2).inject_panic();
        wait_for(
            "supervisor to quarantine stream 2",
            Duration::from_secs(5),
            || db.live_streams() == 2 && db.obs().snapshot().gauge("appender.health.s2") == Some(0),
        );
        let snap = db.obs().snapshot();
        assert!(snap.counter("failover.quarantined.thread_death") >= Some(1));
        // the fleet keeps committing
        for i in 0..8u64 {
            db.run_txn(i as usize, |ctx| ctx.write(2 + i, 0, b"after"))
                .unwrap();
        }
    }

    #[test]
    fn supervisor_quarantines_stuck_appender_by_heartbeat() {
        let db = ExecDb::new(cfg(3));
        db.run_txn(0, |ctx| ctx.write(1, 0, b"warm")).unwrap();
        // wedge stream 1's device: its next write stalls 2 s inside the
        // appender thread, freezing the heartbeat mid-batch
        db.inject_stream_fault(1, FaultPlan::new().stick_write(0, 2_000).fail_from_write(1))
            .unwrap();
        // hand the wedged stream work without parking on it ourselves
        let seq = db
            .appender(1)
            .append(rmdb_wal::record::LogRecord::Abort { txn: u64::MAX })
            .unwrap();
        db.appender(1).request_force(seq).unwrap();
        wait_for(
            "supervisor to declare stream 1 stalled or failed",
            Duration::from_secs(10),
            || db.is_stream_dead(1),
        );
        let snap = db.obs().snapshot();
        assert!(
            snap.counter("failover.quarantined") >= Some(1),
            "quarantine counter missing"
        );
        // survivors still commit; min_live is 1, so no degraded mode
        match db.run_txn(0, |ctx| ctx.write(3, 0, b"alive")) {
            Ok(()) => {}
            Err(ExecError::Degraded { .. }) => panic!("must not degrade at min_live=1"),
            Err(e) => panic!("unexpected: {e}"),
        }
        assert!(!db.is_degraded());
    }
}
