//! One log processor as a real thread: an appender owning a
//! [`LogStream`] and draining a bounded MPSC channel of log fragments.
//!
//! The paper's log processors receive fragments from many query
//! processors and assemble them into 4 KB log pages. Here each
//! [`LogAppender`] thread does exactly that: fragments arrive over a
//! bounded channel (backpressure — a full queue blocks the producer, the
//! pipeline's flow control), are appended to the stream in ticket order,
//! and are made durable when a force request arrives. Consecutive
//! channel messages are drained in batches, so one `force()` covers every
//! fragment that raced in ahead of it — the stream-level half of group
//! commit.
//!
//! Producers never touch the stream itself. They hold a ticket — the
//! per-stream sequence number assigned at enqueue time — and synchronise
//! through [`LogAppender::wait_forced`], which parks on a condvar until
//! the appender reports the ticket durable. The WAL rule and the commit
//! protocol are both phrased as "force through ticket t".
//!
//! ## Failure surface
//!
//! The appender is the unit the failover supervisor watches, so its
//! failure modes are typed ([`AppenderError`]) and observable:
//!
//! * a **heartbeat** counter the thread bumps every loop iteration
//!   (idle ticks included) *and* around each long I/O section — per
//!   batched request, after every force, and through each slice of the
//!   modeled device delay — so a frozen heartbeat means one device I/O
//!   is wedged, not merely that a batch is long or the device slow;
//! * a **sticky storage error**: stream appends/forces go through
//!   [`rmdb_wal::stream::IO_RETRIES`] bounded retries internally, so an
//!   error surfacing here is post-retry and classified *persistent*;
//! * a **vault**: the thread deposits its [`LogStream`] into a shared
//!   slot on every exit path — including panic unwind — so the durable
//!   log disk survives thread death and stays snapshot-able;
//! * a **quarantine flag** set by failover: producers fail fast with
//!   [`AppenderError::Quarantined`] instead of queueing work a dead
//!   stream will never make durable.
//!
//! The thread itself keeps running after a sticky error *and* after
//! quarantine, serving [`Req::Snapshot`] requests — crash images of a
//! quarantined stream's durable prefix go through the ordinary snapshot
//! path, which is what lets recovery merge that prefix with the
//! survivors' logs.

use crate::error::{AppenderError, ExecError};
use crate::sync::lock_ok;
use rmdb_obs::{Counter, EventKind, Histogram, Registry};
use rmdb_storage::{Disk, FaultHandle, StorageError};
use rmdb_wal::record::LogRecord;
use rmdb_wal::stream::LogStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Default producer wait deadline (overridable per appender via
/// [`LogAppender::spawn_observed`]; never hit in healthy runs).
pub const DEFAULT_WAIT: Duration = Duration::from_secs(30);

/// Idle receive timeout: the thread wakes at least this often to bump
/// its heartbeat, so supervision can tell "idle" from "wedged".
const HEARTBEAT_TICK: Duration = Duration::from_millis(10);

/// Requests crossing the fragment channel.
enum Req {
    /// Append a record; `seq` is the ticket assigned at enqueue time.
    Append { rec: LogRecord, seq: u64 },
    /// Make everything appended up to (at least) `seq` durable.
    Force { seq: u64 },
    /// Reply with a crash snapshot of the log disk.
    Snapshot { reply: SyncSender<Disk> },
    /// Attach a fault injector to the stream's disk (mid-run failure
    /// injection — the `--kill-stream` mechanism).
    InjectFaults { handle: FaultHandle },
    /// Panic the thread (failure-injection hook for supervision tests).
    #[cfg(test)]
    Panic,
    /// Drain and exit the thread.
    Shutdown,
}

/// Durability bookkeeping shared between producers and the appender.
struct Shared {
    state: Mutex<State>,
    cv: Condvar,
    /// Bumped by the thread every loop iteration (see [`HEARTBEAT_TICK`])
    /// and around each long I/O section — per batched request, after each
    /// force, and through each slice of the modeled device delay — so a
    /// frozen heartbeat isolates a single wedged I/O.
    heartbeat: AtomicU64,
    /// Cleared by the vault guard on every thread exit path.
    alive: AtomicBool,
    /// Where the thread deposits its stream on exit — normal return,
    /// channel close, or panic unwind alike.
    vault: Mutex<Option<LogStream>>,
}

#[derive(Default)]
struct State {
    /// Highest ticket appended to the stream (volatile).
    appended: u64,
    /// Highest ticket covered by a completed force (durable).
    forced: u64,
    /// First storage error the appender hit, if any; sticky.
    error: Option<StorageError>,
    /// Set by failover: no new fragments should be routed here.
    quarantined: bool,
}

/// A point-in-time health reading, consumed by the supervisor.
#[derive(Debug, Clone)]
pub struct AppenderProbe {
    /// Thread loop iterations so far; a constant value across probes
    /// separated by more than the heartbeat tick means a wedged thread.
    pub heartbeat: u64,
    /// Whether the thread is still running.
    pub alive: bool,
    /// Highest ticket appended (volatile).
    pub appended: u64,
    /// Highest ticket durable.
    pub forced: u64,
    /// Tickets issued by producers (work pending = `issued > appended`).
    pub issued: u64,
    /// The sticky storage error, if any.
    pub error: Option<StorageError>,
    /// Whether failover already quarantined this stream.
    pub quarantined: bool,
}

/// The appender thread's metric handles (one set per stream).
struct ThreadObs {
    /// Stream index, for event attribution.
    idx: u64,
    /// Fragments the thread appended to the stream.
    appended: Counter,
    /// Forces the thread performed (not requests — actual `force()` calls).
    forces: Counter,
    /// Wall-clock per force, including the modeled device service time.
    force_us: Histogram,
    /// Event sink for [`EventKind::StreamForce`].
    obs: Registry,
}

/// Ticket-space state a rejoined stream incarnation inherits from its
/// predecessor, so tickets stay unique per stream across churn and the
/// durable prefix stays queryable through the fresh handle.
#[derive(Debug, Clone, Default)]
pub struct TicketInheritance {
    /// First ticket the new incarnation will issue (old `issued + 1`).
    pub next_seq: u64,
    /// Highest durable ticket of the old incarnation; `is_forced` keeps
    /// answering true for the inherited prefix.
    pub forced: u64,
    /// Orphan ranges `(lo, hi]`: tickets issued by a dead incarnation but
    /// never forced — lost with its volatile tail, never durable here.
    pub orphans: Vec<(u64, u64)>,
}

/// Handle to one log-processor thread.
pub struct LogAppender {
    /// Stream index in the fleet, for error attribution.
    idx: usize,
    /// Ticket issue + enqueue, atomically (so channel order == seq order).
    tx: Mutex<SyncSender<Req>>,
    next_seq: AtomicU64,
    shared: Arc<Shared>,
    forces: AtomicU64,
    /// Producer wait deadline for `wait_forced` / `snapshot`.
    wait: Duration,
    /// Tickets issued by dead predecessor incarnations that never became
    /// durable: `(lo, hi]` ranges, immutable for this incarnation's
    /// lifetime. `is_forced` must never report them durable even though
    /// the inherited `forced` watermark has passed them.
    orphans: Vec<(u64, u64)>,
    /// Fragments enqueued — the producer-side half of the
    /// `fragments_enqueued == fragments_appended` conservation law.
    enqueued: Counter,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl LogAppender {
    /// Spawn an appender thread owning `stream`, with a bounded queue of
    /// `queue` fragments. `force_delay` models the log device's service
    /// time per force (the paper's log disks are rotational; a force is
    /// never free) — the appender thread sleeps that long after each
    /// completed force, during which further commits pile up behind it
    /// and share the next force. Zero means an ideal device.
    pub fn spawn(stream: LogStream, queue: usize, force_delay: Duration) -> Self {
        LogAppender::spawn_observed(
            stream,
            queue,
            force_delay,
            &Registry::new(),
            0,
            DEFAULT_WAIT,
        )
    }

    /// [`LogAppender::spawn`] publishing per-stream metrics into `obs`:
    /// `wal.fragments_enqueued.s<idx>` (producer side, at ticket issue),
    /// `wal.fragments_appended.s<idx>` (appender side, after the stream
    /// write), `wal.forces.s<idx>` and the `wal.force_us.s<idx>` latency
    /// histogram, plus a [`EventKind::StreamForce`] event per force.
    /// `wait` bounds every producer-side blocking wait on this appender.
    pub fn spawn_observed(
        stream: LogStream,
        queue: usize,
        force_delay: Duration,
        obs: &Registry,
        idx: usize,
        wait: Duration,
    ) -> Self {
        LogAppender::spawn_rejoined(
            stream,
            queue,
            force_delay,
            obs,
            idx,
            wait,
            TicketInheritance {
                next_seq: 1,
                forced: 0,
                orphans: Vec::new(),
            },
        )
    }

    /// [`LogAppender::spawn_observed`] for a rejoined stream incarnation:
    /// the fresh appender continues the predecessor's ticket space so the
    /// inherited durable prefix stays `is_forced` and the orphaned tail
    /// stays *not* durable — forever. The `appended` and `forced`
    /// watermarks both start at the inherited `forced`, so a post-rejoin
    /// force can never sweep the orphan range into durability.
    pub fn spawn_rejoined(
        stream: LogStream,
        queue: usize,
        force_delay: Duration,
        obs: &Registry,
        idx: usize,
        wait: Duration,
        inherit: TicketInheritance,
    ) -> Self {
        let (tx, rx) = sync_channel(queue.max(1));
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                appended: inherit.forced,
                forced: inherit.forced,
                ..State::default()
            }),
            cv: Condvar::new(),
            heartbeat: AtomicU64::new(0),
            alive: AtomicBool::new(true),
            vault: Mutex::new(None),
        });
        let thread_shared = Arc::clone(&shared);
        let tobs = ThreadObs {
            idx: idx as u64,
            appended: obs.counter(&format!("wal.fragments_appended.s{idx}")),
            forces: obs.counter(&format!("wal.forces.s{idx}")),
            force_us: obs.histogram(&format!("wal.force_us.s{idx}")),
            obs: obs.clone(),
        };
        let handle = std::thread::Builder::new()
            .name("rmdb-log-appender".into())
            .spawn(move || run(stream, rx, thread_shared, force_delay, tobs))
            .expect("spawn log appender");
        LogAppender {
            idx,
            tx: Mutex::new(tx),
            next_seq: AtomicU64::new(inherit.next_seq.max(1)),
            shared,
            forces: AtomicU64::new(0),
            wait,
            orphans: inherit.orphans,
            enqueued: obs.counter(&format!("wal.fragments_enqueued.s{idx}")),
            handle: Some(handle),
        }
    }

    /// Stream index in the fleet.
    pub fn index(&self) -> usize {
        self.idx
    }

    fn err(&self, error: AppenderError) -> ExecError {
        ExecError::Appender {
            stream: self.idx,
            error,
        }
    }

    fn thread_gone(&self) -> ExecError {
        self.err(AppenderError::ThreadDeath(
            "fragment channel closed".to_string(),
        ))
    }

    /// Enqueue a fragment; returns its ticket. Blocks when the queue is
    /// full (backpressure). Fails fast on a quarantined or errored stream.
    pub fn append(&self, rec: LogRecord) -> Result<u64, ExecError> {
        self.check_error()?;
        let tx = lock_ok(&self.tx);
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        // Count before the send so a live sample never sees
        // appended > enqueued; a failed send leaves enqueued one ahead,
        // but then the appender is gone and the pipeline is erroring out.
        self.enqueued.inc();
        tx.send(Req::Append { rec, seq })
            .map_err(|_| self.thread_gone())?;
        Ok(seq)
    }

    /// Ask the appender to make ticket `seq` durable (non-blocking).
    pub fn request_force(&self, seq: u64) -> Result<(), ExecError> {
        if self.orphaned(seq) {
            return Err(self.err(AppenderError::Orphaned { seq }));
        }
        if self.is_forced(seq) {
            return Ok(());
        }
        self.forces.fetch_add(1, Ordering::Relaxed);
        let tx = lock_ok(&self.tx);
        tx.send(Req::Force { seq })
            .map_err(|_| self.thread_gone())?;
        Ok(())
    }

    /// Whether ticket `seq` is already durable (cheap check). `forced`
    /// is monotone truth about the platter — it stays valid after an
    /// error or a quarantine, which is exactly what lets the WAL-rule
    /// flush path keep flushing pages whose fragments were durable on a
    /// stream before it died.
    pub fn is_forced(&self, seq: u64) -> bool {
        !self.orphaned(seq) && lock_ok(&self.shared.state).forced >= seq
    }

    /// Whether ticket `seq` was orphaned by a predecessor incarnation's
    /// death: issued but never forced before the rejoin, so its bytes
    /// are gone. Such a ticket can never become durable here — the
    /// fragment must be re-appended (here or elsewhere) under a new
    /// ticket.
    pub fn orphaned(&self, seq: u64) -> bool {
        self.orphans.iter().any(|&(lo, hi)| lo < seq && seq <= hi)
    }

    /// The accumulated orphan ranges `(lo, hi]`, oldest first.
    pub fn orphan_ranges(&self) -> &[(u64, u64)] {
        &self.orphans
    }

    /// Highest durable ticket — the quarantined stream's durable prefix
    /// boundary the reroute logic partitions against.
    pub fn forced_high(&self) -> u64 {
        lock_ok(&self.shared.state).forced
    }

    /// Park until ticket `seq` is durable (or the appender fails —
    /// classified, in precedence order: already durable wins over any
    /// failure state, then quarantine, sticky error, thread death, and
    /// finally the bounded-wait deadline).
    pub fn wait_forced(&self, seq: u64) -> Result<(), ExecError> {
        if self.orphaned(seq) {
            // never durable here — waiting out the deadline would be lying
            return Err(self.err(AppenderError::Orphaned { seq }));
        }
        let start = Instant::now();
        let mut state = lock_ok(&self.shared.state);
        loop {
            if state.forced >= seq {
                return Ok(());
            }
            if state.quarantined {
                return Err(self.err(AppenderError::Quarantined));
            }
            if let Some(e) = &state.error {
                return Err(self.err(AppenderError::Persistent(e.clone())));
            }
            if !self.shared.alive.load(Ordering::Acquire) {
                return Err(self.err(AppenderError::ThreadDeath(
                    "appender thread exited".to_string(),
                )));
            }
            let elapsed = start.elapsed();
            if elapsed >= self.wait {
                return Err(self.err(AppenderError::Stalled {
                    what: "force",
                    waited_ms: elapsed.as_millis() as u64,
                }));
            }
            let (next, _) = self
                .shared
                .cv
                .wait_timeout(state, self.wait - elapsed)
                .unwrap_or_else(|e| e.into_inner());
            state = next;
        }
    }

    /// Force + wait: returns once ticket `seq` is on stable storage.
    pub fn force_through(&self, seq: u64) -> Result<(), ExecError> {
        self.request_force(seq)?;
        self.wait_forced(seq)
    }

    /// Crash snapshot of this stream's log disk, as of "now" in the
    /// appender's frame of reference (between batches, never mid-force).
    /// If the thread is dead the snapshot is served from the vaulted
    /// stream instead — a quarantined stream's durable prefix stays
    /// reachable for crash images.
    pub fn snapshot(&self) -> Result<Disk, ExecError> {
        let (reply, rx) = sync_channel(1);
        let sent = {
            let tx = lock_ok(&self.tx);
            tx.send(Req::Snapshot { reply }).is_ok()
        };
        if sent {
            match rx.recv_timeout(self.wait) {
                Ok(disk) => return Ok(disk),
                Err(RecvTimeoutError::Timeout) => {
                    return Err(self.err(AppenderError::Stalled {
                        what: "snapshot",
                        waited_ms: self.wait.as_millis() as u64,
                    }));
                }
                // the thread exited with our request still queued: its
                // vault guard has already deposited the stream (locals
                // drop before the channel receiver) — fall through
                Err(RecvTimeoutError::Disconnected) => {}
            }
        }
        let vault = lock_ok(&self.shared.vault);
        match vault.as_ref() {
            Some(stream) => Ok(stream.disk_snapshot()),
            None => Err(self.err(AppenderError::ThreadDeath(
                "appender thread gone and stream unrecoverable".to_string(),
            ))),
        }
    }

    /// Attach a fault injector to the stream's disk, from inside the
    /// appender thread (so it composes with in-flight appends exactly
    /// like a real device failing under load).
    pub fn inject_faults(&self, handle: FaultHandle) -> Result<(), ExecError> {
        let tx = lock_ok(&self.tx);
        tx.send(Req::InjectFaults { handle })
            .map_err(|_| self.thread_gone())?;
        Ok(())
    }

    /// Panic the appender thread (supervision/diagnostics tests).
    #[cfg(test)]
    pub(crate) fn inject_panic(&self) {
        let tx = lock_ok(&self.tx);
        let _ = tx.send(Req::Panic);
    }

    /// Mark this stream quarantined: producers fail fast, and waiters
    /// currently parked in [`LogAppender::wait_forced`] wake immediately
    /// with [`AppenderError::Quarantined`] instead of riding out their
    /// full deadline.
    pub fn quarantine(&self) {
        let mut state = lock_ok(&self.shared.state);
        state.quarantined = true;
        self.shared.cv.notify_all();
    }

    /// Whether failover has quarantined this stream.
    pub fn is_quarantined(&self) -> bool {
        lock_ok(&self.shared.state).quarantined
    }

    /// A point-in-time health reading for the supervisor.
    pub fn probe(&self) -> AppenderProbe {
        let state = lock_ok(&self.shared.state);
        AppenderProbe {
            heartbeat: self.shared.heartbeat.load(Ordering::Relaxed),
            alive: self.shared.alive.load(Ordering::Acquire),
            appended: state.appended,
            forced: state.forced,
            issued: self.next_seq.load(Ordering::Relaxed) - 1,
            error: state.error.clone(),
            quarantined: state.quarantined,
        }
    }

    /// Force requests issued against this stream (observability).
    pub fn forces_requested(&self) -> u64 {
        self.forces.load(Ordering::Relaxed)
    }

    /// Tickets issued so far (fragments enqueued).
    pub fn tickets_issued(&self) -> u64 {
        self.next_seq.load(Ordering::Relaxed) - 1
    }

    fn check_error(&self) -> Result<(), ExecError> {
        let state = lock_ok(&self.shared.state);
        if state.quarantined {
            return Err(self.err(AppenderError::Quarantined));
        }
        match &state.error {
            Some(e) => Err(self.err(AppenderError::Persistent(e.clone()))),
            None => Ok(()),
        }
    }

    /// Stop the thread in place without consuming the handle (the rejoin
    /// protocol's first step: producers may still hold stale clones of
    /// this handle while the fleet slot is being replaced). Sends
    /// shutdown and waits — bounded by the producer deadline — for the
    /// vault guard to run. Idempotent: an already-dead thread returns
    /// `Ok` immediately.
    pub fn retire(&self) -> Result<(), ExecError> {
        {
            let tx = lock_ok(&self.tx);
            let _ = tx.send(Req::Shutdown);
        }
        let start = Instant::now();
        while self.shared.alive.load(Ordering::Acquire) {
            let elapsed = start.elapsed();
            if elapsed >= self.wait {
                return Err(self.err(AppenderError::Stalled {
                    what: "retire",
                    waited_ms: elapsed.as_millis() as u64,
                }));
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        Ok(())
    }

    /// Probe the vaulted stream's device in place: one header-frame read
    /// and write-back through the fault injector. Cheap health gate for
    /// the membership manager's rejoin probe — fails while the device's
    /// permanent fault is still tripped, succeeds once a fault-clear has
    /// revived it. Errors if the thread has not deposited the stream.
    pub fn probe_vaulted_device(&self) -> Result<(), ExecError> {
        let mut vault = lock_ok(&self.shared.vault);
        match vault.as_mut() {
            Some(stream) => stream
                .probe_device()
                .map_err(|e| self.err(AppenderError::Persistent(e))),
            None => Err(self.err(AppenderError::ThreadDeath(
                "stream not vaulted; retire the thread first".to_string(),
            ))),
        }
    }

    /// Take the vaulted stream (rejoin hand-off); the caller now owns the
    /// device and this handle can no longer serve snapshots.
    pub fn take_vaulted(&self) -> Result<LogStream, ExecError> {
        lock_ok(&self.shared.vault).take().ok_or_else(|| {
            self.err(AppenderError::ThreadDeath(
                "appender exited without depositing its stream".to_string(),
            ))
        })
    }

    /// Put a stream back in the vault (a rejoin step failed after the
    /// hand-off; crash images must keep finding the durable prefix).
    pub fn return_to_vault(&self, stream: LogStream) {
        *lock_ok(&self.shared.vault) = Some(stream);
    }

    /// Stop the thread and take the stream back (final shutdown). A
    /// panicked thread surfaces as [`AppenderError::ThreadDeath`] with
    /// the panic payload preserved for diagnosis.
    pub fn shutdown(mut self) -> Result<LogStream, ExecError> {
        {
            let tx = lock_ok(&self.tx);
            let _ = tx.send(Req::Shutdown);
        }
        let handle = self.handle.take().expect("appender joined twice");
        match handle.join() {
            Ok(()) => {
                let mut vault = lock_ok(&self.shared.vault);
                vault.take().ok_or_else(|| {
                    self.err(AppenderError::ThreadDeath(
                        "appender exited without depositing its stream".to_string(),
                    ))
                })
            }
            Err(payload) => Err(self.err(AppenderError::ThreadDeath(panic_message(&*payload)))),
        }
    }
}

impl Drop for LogAppender {
    fn drop(&mut self) {
        if let Some(handle) = self.handle.take() {
            {
                let tx = lock_ok(&self.tx);
                let _ = tx.send(Req::Shutdown);
            }
            let _ = handle.join();
        }
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Deposits the thread's stream into the shared vault on every exit
/// path — normal return and panic unwind alike — and clears `alive` so
/// waiters and the supervisor observe the death promptly.
struct VaultGuard {
    shared: Arc<Shared>,
    stream: Option<LogStream>,
}

impl VaultGuard {
    fn stream(&mut self) -> &mut LogStream {
        self.stream.as_mut().expect("stream vaulted while running")
    }
}

impl Drop for VaultGuard {
    fn drop(&mut self) {
        if let Some(stream) = self.stream.take() {
            *lock_ok(&self.shared.vault) = Some(stream);
        }
        self.shared.alive.store(false, Ordering::Release);
        // wake parked waiters so they classify the death immediately
        self.shared.cv.notify_all();
    }
}

/// The appender thread: drain → append in ticket order → force once per
/// batch if anyone asked → publish progress.
fn run(
    stream: LogStream,
    rx: Receiver<Req>,
    shared: Arc<Shared>,
    force_delay: Duration,
    tobs: ThreadObs,
) {
    let mut guard = VaultGuard {
        shared: Arc::clone(&shared),
        stream: Some(stream),
    };
    loop {
        shared.heartbeat.fetch_add(1, Ordering::Relaxed);
        let first = match rx.recv_timeout(HEARTBEAT_TICK) {
            Ok(req) => req,
            Err(RecvTimeoutError::Timeout) => continue, // idle heartbeat
            Err(RecvTimeoutError::Disconnected) => return, // all senders gone
        };
        let mut batch = vec![first];
        while let Ok(more) = rx.try_recv() {
            batch.push(more);
        }
        let mut appended_high = 0u64;
        let mut force_to: Option<u64> = None;
        let mut snapshots: Vec<SyncSender<Disk>> = Vec::new();
        let mut shutdown = false;
        let mut error: Option<StorageError> = None;
        for req in batch {
            // one beat per request: a large batch of appends (each a
            // potential page write) must not freeze the heartbeat for
            // the whole batch — the supervisor's stall deadline is meant
            // to bound a *single* wedged device I/O, not batch length
            shared.heartbeat.fetch_add(1, Ordering::Relaxed);
            match req {
                Req::Append { rec, seq } => {
                    if error.is_none() {
                        match guard.stream().append(&rec) {
                            Ok(_) => tobs.appended.inc(),
                            Err(e) => error = Some(e),
                        }
                    }
                    appended_high = appended_high.max(seq);
                }
                Req::Force { seq } => {
                    force_to = Some(force_to.map_or(seq, |f| f.max(seq)));
                }
                Req::Snapshot { reply } => snapshots.push(reply),
                Req::InjectFaults { handle } => guard.stream().attach_faults(handle),
                #[cfg(test)]
                Req::Panic => panic!("injected appender panic"),
                Req::Shutdown => shutdown = true,
            }
        }
        {
            let mut state = lock_ok(&shared.state);
            if appended_high > 0 {
                state.appended = state.appended.max(appended_high);
            }
            let need_force = error.is_none() && force_to.is_some_and(|seq| seq > state.forced);
            let appended_now = state.appended;
            drop(state);
            if need_force {
                let t_force = Instant::now();
                let force_res = guard.stream().force();
                // the force is the longest single I/O section; beat as
                // soon as it returns so only time spent *inside* the
                // device counts against the supervisor's stall deadline
                shared.heartbeat.fetch_add(1, Ordering::Relaxed);
                if let Err(e) = force_res {
                    error = Some(e);
                } else {
                    if !force_delay.is_zero() {
                        // modeled device service time; commits queue
                        // behind it. Sleep in heartbeat-sized slices so
                        // a configured delay near (or beyond) the
                        // supervisor deadline does not read as a wedged
                        // thread — the device is slow, not stuck.
                        let mut left = force_delay;
                        while !left.is_zero() {
                            let step = left.min(HEARTBEAT_TICK);
                            std::thread::sleep(step);
                            shared.heartbeat.fetch_add(1, Ordering::Relaxed);
                            left -= step;
                        }
                    }
                    let us = t_force.elapsed().as_micros() as u64;
                    tobs.forces.inc();
                    tobs.force_us.record(us);
                    tobs.obs.emit(EventKind::StreamForce, 0, tobs.idx, 0, us);
                }
            }
            let mut state = lock_ok(&shared.state);
            if need_force && error.is_none() {
                // everything appended before the force is now durable
                state.forced = state.forced.max(appended_now);
            }
            if let Some(e) = error {
                state.error.get_or_insert(e);
            }
            shared.cv.notify_all();
        }
        for reply in snapshots {
            let _ = reply.send(guard.stream().disk_snapshot());
        }
        if shutdown {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmdb_storage::{FaultInjector, FaultPlan};
    use rmdb_wal::ParallelLogManager;
    use rmdb_wal::SelectionPolicy;

    fn commit(txn: u64) -> LogRecord {
        LogRecord::Commit { txn }
    }

    #[test]
    fn appended_records_become_durable_after_force() {
        let app = LogAppender::spawn(LogStream::create(256), 64, Duration::ZERO);
        let t1 = app.append(commit(1)).unwrap();
        let t2 = app.append(commit(2)).unwrap();
        assert!(t2 > t1);
        app.force_through(t2).unwrap();
        assert!(app.is_forced(t1) && app.is_forced(t2));
        let disk = app.snapshot().unwrap();
        let mgr = ParallelLogManager::open(vec![disk], SelectionPolicy::Cyclic, 0).unwrap();
        assert_eq!(mgr.scan_all()[0], vec![commit(1), commit(2)]);
    }

    #[test]
    fn unforced_tail_missing_from_snapshot() {
        let app = LogAppender::spawn(LogStream::create(256), 64, Duration::ZERO);
        let t1 = app.append(commit(1)).unwrap();
        app.force_through(t1).unwrap();
        let _t2 = app.append(commit(2)).unwrap();
        // no force for t2 — snapshot may contain only the durable prefix
        let disk = app.snapshot().unwrap();
        let mgr = ParallelLogManager::open(vec![disk], SelectionPolicy::Cyclic, 0).unwrap();
        let recs = mgr.scan_all()[0].clone();
        assert!(recs.starts_with(&[commit(1)]));
        assert!(recs.len() <= 2);
    }

    #[test]
    fn concurrent_producers_keep_ticket_order() {
        let app = std::sync::Arc::new(LogAppender::spawn(
            LogStream::create(1024),
            8,
            Duration::ZERO,
        ));
        crossbeam::thread::scope(|s| {
            for p in 0..4u64 {
                let app = std::sync::Arc::clone(&app);
                s.spawn(move |_| {
                    for i in 0..50 {
                        let seq = app.append(commit(p * 1000 + i)).unwrap();
                        if i % 10 == 0 {
                            app.force_through(seq).unwrap();
                        }
                    }
                });
            }
        })
        .unwrap();
        let app = std::sync::Arc::into_inner(app).unwrap();
        assert_eq!(app.tickets_issued(), 200);
        let stream = app.shutdown().unwrap();
        // records landed in ticket order: scan parses cleanly and the
        // durable prefix is a permutation-free interleaving
        let (recs, stats) = stream.scan_with_stats();
        assert_eq!(stats.corrupt_pages, 0);
        assert!(!recs.is_empty());
    }

    #[test]
    fn shutdown_returns_stream_with_pending_appends() {
        let app = LogAppender::spawn(LogStream::create(256), 64, Duration::ZERO);
        let seq = app.append(commit(7)).unwrap();
        app.force_through(seq).unwrap();
        let stream = app.shutdown().unwrap();
        assert_eq!(stream.scan(), vec![commit(7)]);
    }

    #[test]
    fn panicked_thread_surfaces_payload_in_typed_error() {
        let app = LogAppender::spawn(LogStream::create(256), 64, Duration::ZERO);
        let seq = app.append(commit(1)).unwrap();
        app.force_through(seq).unwrap();
        app.inject_panic();
        match app.shutdown().map(|_| ()) {
            Err(ExecError::Appender {
                stream: 0,
                error: AppenderError::ThreadDeath(msg),
            }) => assert!(
                msg.contains("injected appender panic"),
                "panic payload lost: {msg:?}"
            ),
            other => panic!("expected ThreadDeath with payload, got {other:?}"),
        }
    }

    #[test]
    fn dead_thread_still_serves_snapshot_from_vault() {
        let app = LogAppender::spawn(LogStream::create(256), 64, Duration::ZERO);
        let seq = app.append(commit(9)).unwrap();
        app.force_through(seq).unwrap();
        app.inject_panic();
        // wait for the unwind to deposit the stream
        let t0 = Instant::now();
        while app.probe().alive && t0.elapsed() < Duration::from_secs(5) {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(!app.probe().alive, "thread should have died");
        let disk = app.snapshot().expect("vault snapshot");
        let mgr = ParallelLogManager::open(vec![disk], SelectionPolicy::Cyclic, 0).unwrap();
        assert_eq!(mgr.scan_all()[0], vec![commit(9)]);
        // waiters on new work classify the death rather than hanging
        match app.wait_forced(seq + 1) {
            Err(ExecError::Appender {
                error: AppenderError::ThreadDeath(_),
                ..
            }) => {}
            other => panic!("expected ThreadDeath, got {other:?}"),
        }
    }

    #[test]
    fn persistent_device_fault_is_classified_and_prefix_survives() {
        let app = LogAppender::spawn(LogStream::create(256), 64, Duration::ZERO);
        let t1 = app.append(commit(1)).unwrap();
        app.force_through(t1).unwrap();
        // kill the device: every write from now on fails
        app.inject_faults(FaultInjector::handle(FaultPlan::new().fail_from_write(0)))
            .unwrap();
        let t2 = app.append(commit(2)).unwrap();
        match app.force_through(t2) {
            Err(ExecError::Appender {
                error: AppenderError::Persistent(_),
                ..
            }) => {}
            other => panic!("expected Persistent, got {other:?}"),
        }
        // the durable prefix is still reachable: forced is monotone truth
        assert!(app.is_forced(t1));
        let disk = app.snapshot().unwrap();
        let mgr = ParallelLogManager::open(vec![disk], SelectionPolicy::Cyclic, 0).unwrap();
        assert_eq!(mgr.scan_all()[0], vec![commit(1)]);
    }

    #[test]
    fn quarantine_fails_fast_and_wakes_waiters() {
        let app = std::sync::Arc::new(LogAppender::spawn(
            LogStream::create(256),
            64,
            Duration::ZERO,
        ));
        let t1 = app.append(commit(1)).unwrap();
        app.force_through(t1).unwrap();
        let t2 = app.append(commit(2)).unwrap();
        let waiter = {
            let app = std::sync::Arc::clone(&app);
            std::thread::spawn(move || app.wait_forced(t2 + 100))
        };
        std::thread::sleep(Duration::from_millis(20));
        app.quarantine();
        // the parked waiter wakes with Quarantined, well inside the deadline
        match waiter.join().expect("waiter") {
            Err(ExecError::Appender {
                error: AppenderError::Quarantined,
                ..
            }) => {}
            other => panic!("expected Quarantined, got {other:?}"),
        }
        // new appends fail fast; durable facts remain queryable
        assert!(matches!(
            app.append(commit(3)),
            Err(ExecError::Appender {
                error: AppenderError::Quarantined,
                ..
            })
        ));
        assert!(app.is_forced(t1));
        assert!(app.is_quarantined());
    }

    #[test]
    fn rejoined_incarnation_inherits_prefix_and_orphans_the_volatile_tail() {
        let app = LogAppender::spawn(LogStream::create(256), 64, Duration::ZERO);
        let t1 = app.append(commit(1)).unwrap();
        app.force_through(t1).unwrap();
        let t2 = app.append(commit(2)).unwrap(); // never forced
        app.retire().unwrap();
        app.probe_vaulted_device().unwrap();
        let issued = app.tickets_issued();
        let forced = app.forced_high();
        assert_eq!((forced, issued), (t1, t2));
        let disk = app.take_vaulted().unwrap().into_disk();
        let reopened = LogStream::open(disk).unwrap();
        let next = LogAppender::spawn_rejoined(
            reopened,
            64,
            Duration::ZERO,
            &rmdb_obs::Registry::new(),
            0,
            Duration::from_secs(5),
            TicketInheritance {
                next_seq: issued + 1,
                forced,
                orphans: vec![(forced, issued)],
            },
        );
        // the durable prefix keeps reading as forced; the lost tail never does
        assert!(next.is_forced(t1));
        assert!(next.orphaned(t2));
        assert!(!next.is_forced(t2));
        match next.request_force(t2) {
            Err(ExecError::Appender {
                error: AppenderError::Orphaned { seq },
                ..
            }) => assert_eq!(seq, t2),
            other => panic!("expected Orphaned, got {other:?}"),
        }
        let t0 = Instant::now();
        match next.wait_forced(t2) {
            Err(ExecError::Appender {
                error: AppenderError::Orphaned { .. },
                ..
            }) => {}
            other => panic!("expected Orphaned, got {other:?}"),
        }
        assert!(
            t0.elapsed() < Duration::from_millis(200),
            "orphan wait must fail fast, not ride out the deadline"
        );
        // ticket space continues past the dead incarnation's issue point
        let t3 = next.append(commit(3)).unwrap();
        assert!(t3 > t2);
        next.force_through(t3).unwrap();
        // forcing new work must not sweep the orphan range into durability
        assert!(!next.is_forced(t2) && next.orphaned(t2));
        assert!(next.is_forced(t1) && next.is_forced(t3));
        // the platter holds exactly the durable records: old prefix + new tail
        let disk = next.snapshot().unwrap();
        let mgr = ParallelLogManager::open(vec![disk], SelectionPolicy::Cyclic, 0).unwrap();
        assert_eq!(mgr.scan_all()[0], vec![commit(1), commit(3)]);
    }

    #[test]
    fn retire_is_idempotent_and_vault_roundtrips() {
        let app = LogAppender::spawn(LogStream::create(256), 64, Duration::ZERO);
        let t1 = app.append(commit(1)).unwrap();
        app.force_through(t1).unwrap();
        app.retire().unwrap();
        app.retire().unwrap(); // already dead: immediate Ok
                               // snapshots are served from the vault while retired
        let disk = app.snapshot().unwrap();
        let mgr = ParallelLogManager::open(vec![disk], SelectionPolicy::Cyclic, 0).unwrap();
        assert_eq!(mgr.scan_all()[0], vec![commit(1)]);
        // a failed rejoin step puts the stream back: the vault keeps serving
        let stream = app.take_vaulted().unwrap();
        assert!(
            app.take_vaulted().is_err(),
            "vault must be empty after take"
        );
        assert!(app.probe_vaulted_device().is_err());
        app.return_to_vault(stream);
        app.probe_vaulted_device().unwrap();
        let disk = app.snapshot().unwrap();
        let mgr = ParallelLogManager::open(vec![disk], SelectionPolicy::Cyclic, 0).unwrap();
        assert_eq!(mgr.scan_all()[0], vec![commit(1)]);
    }
}
