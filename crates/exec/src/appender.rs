//! One log processor as a real thread: an appender owning a
//! [`LogStream`] and draining a bounded MPSC channel of log fragments.
//!
//! The paper's log processors receive fragments from many query
//! processors and assemble them into 4 KB log pages. Here each
//! [`LogAppender`] thread does exactly that: fragments arrive over a
//! bounded channel (backpressure — a full queue blocks the producer, the
//! pipeline's flow control), are appended to the stream in ticket order,
//! and are made durable when a force request arrives. Consecutive
//! channel messages are drained in batches, so one `force()` covers every
//! fragment that raced in ahead of it — the stream-level half of group
//! commit.
//!
//! Producers never touch the stream itself. They hold a ticket — the
//! per-stream sequence number assigned at enqueue time — and synchronise
//! through [`LogAppender::wait_forced`], which parks on a condvar until
//! the appender reports the ticket durable. The WAL rule and the commit
//! protocol are both phrased as "force through ticket t".

use rmdb_obs::{Counter, EventKind, Histogram, Registry};
use rmdb_storage::{MemDisk, StorageError};
use rmdb_wal::record::LogRecord;
use rmdb_wal::stream::LogStream;
use rmdb_wal::WalError;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// How long a producer waits for the appender before declaring it
/// stalled (defence against a wedged pipeline in tests; never hit in
/// healthy runs).
const WAIT_TIMEOUT: Duration = Duration::from_secs(30);

/// Requests crossing the fragment channel.
enum Req {
    /// Append a record; `seq` is the ticket assigned at enqueue time.
    Append { rec: LogRecord, seq: u64 },
    /// Make everything appended up to (at least) `seq` durable.
    Force { seq: u64 },
    /// Reply with a crash snapshot of the log disk.
    Snapshot { reply: SyncSender<MemDisk> },
    /// Drain and exit the thread.
    Shutdown,
}

/// Durability bookkeeping shared between producers and the appender.
struct Shared {
    state: Mutex<State>,
    cv: Condvar,
}

#[derive(Default)]
struct State {
    /// Highest ticket appended to the stream (volatile).
    appended: u64,
    /// Highest ticket covered by a completed force (durable).
    forced: u64,
    /// First storage error the appender hit, if any; sticky.
    error: Option<StorageError>,
}

/// The appender thread's metric handles (one set per stream).
struct ThreadObs {
    /// Stream index, for event attribution.
    idx: u64,
    /// Fragments the thread appended to the stream.
    appended: Counter,
    /// Forces the thread performed (not requests — actual `force()` calls).
    forces: Counter,
    /// Wall-clock per force, including the modeled device service time.
    force_us: Histogram,
    /// Event sink for [`EventKind::StreamForce`].
    obs: Registry,
}

/// Handle to one log-processor thread.
pub struct LogAppender {
    /// Ticket issue + enqueue, atomically (so channel order == seq order).
    tx: Mutex<SyncSender<Req>>,
    next_seq: AtomicU64,
    shared: Arc<Shared>,
    forces: AtomicU64,
    /// Fragments enqueued — the producer-side half of the
    /// `fragments_enqueued == fragments_appended` conservation law.
    enqueued: Counter,
    handle: Option<std::thread::JoinHandle<LogStream>>,
}

impl LogAppender {
    /// Spawn an appender thread owning `stream`, with a bounded queue of
    /// `queue` fragments. `force_delay` models the log device's service
    /// time per force (the paper's log disks are rotational; a force is
    /// never free) — the appender thread sleeps that long after each
    /// completed force, during which further commits pile up behind it
    /// and share the next force. Zero means an ideal device.
    pub fn spawn(stream: LogStream, queue: usize, force_delay: Duration) -> Self {
        LogAppender::spawn_observed(stream, queue, force_delay, &Registry::new(), 0)
    }

    /// [`LogAppender::spawn`] publishing per-stream metrics into `obs`:
    /// `wal.fragments_enqueued.s<idx>` (producer side, at ticket issue),
    /// `wal.fragments_appended.s<idx>` (appender side, after the stream
    /// write), `wal.forces.s<idx>` and the `wal.force_us.s<idx>` latency
    /// histogram, plus a [`EventKind::StreamForce`] event per force.
    pub fn spawn_observed(
        stream: LogStream,
        queue: usize,
        force_delay: Duration,
        obs: &Registry,
        idx: usize,
    ) -> Self {
        let (tx, rx) = sync_channel(queue.max(1));
        let shared = Arc::new(Shared {
            state: Mutex::new(State::default()),
            cv: Condvar::new(),
        });
        let thread_shared = Arc::clone(&shared);
        let tobs = ThreadObs {
            idx: idx as u64,
            appended: obs.counter(&format!("wal.fragments_appended.s{idx}")),
            forces: obs.counter(&format!("wal.forces.s{idx}")),
            force_us: obs.histogram(&format!("wal.force_us.s{idx}")),
            obs: obs.clone(),
        };
        let handle = std::thread::Builder::new()
            .name("rmdb-log-appender".into())
            .spawn(move || run(stream, rx, thread_shared, force_delay, tobs))
            .expect("spawn log appender");
        LogAppender {
            tx: Mutex::new(tx),
            next_seq: AtomicU64::new(1),
            shared,
            forces: AtomicU64::new(0),
            enqueued: obs.counter(&format!("wal.fragments_enqueued.s{idx}")),
            handle: Some(handle),
        }
    }

    /// Enqueue a fragment; returns its ticket. Blocks when the queue is
    /// full (backpressure).
    pub fn append(&self, rec: LogRecord) -> Result<u64, WalError> {
        self.check_error()?;
        let tx = self.tx.lock().expect("appender sender lock");
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        // Count before the send so a live sample never sees
        // appended > enqueued; a failed send leaves enqueued one ahead,
        // but then the appender is gone and the pipeline is erroring out.
        self.enqueued.inc();
        tx.send(Req::Append { rec, seq })
            .map_err(|_| stalled("log appender thread gone"))?;
        Ok(seq)
    }

    /// Ask the appender to make ticket `seq` durable (non-blocking).
    pub fn request_force(&self, seq: u64) -> Result<(), WalError> {
        if self.is_forced(seq) {
            return Ok(());
        }
        self.forces.fetch_add(1, Ordering::Relaxed);
        let tx = self.tx.lock().expect("appender sender lock");
        tx.send(Req::Force { seq })
            .map_err(|_| stalled("log appender thread gone"))?;
        Ok(())
    }

    /// Whether ticket `seq` is already durable (cheap check).
    pub fn is_forced(&self, seq: u64) -> bool {
        let state = self.shared.state.lock().expect("appender state lock");
        state.forced >= seq && state.error.is_none()
    }

    /// Park until ticket `seq` is durable (or the appender reports an
    /// error / stalls).
    pub fn wait_forced(&self, seq: u64) -> Result<(), WalError> {
        let mut state = self.shared.state.lock().expect("appender state lock");
        loop {
            if let Some(e) = &state.error {
                return Err(WalError::Storage(e.clone()));
            }
            if state.forced >= seq {
                return Ok(());
            }
            let (next, timeout) = self
                .shared
                .cv
                .wait_timeout(state, WAIT_TIMEOUT)
                .expect("appender condvar");
            state = next;
            if timeout.timed_out() && state.forced < seq && state.error.is_none() {
                return Err(stalled("log appender stalled: force timed out"));
            }
        }
    }

    /// Force + wait: returns once ticket `seq` is on stable storage.
    pub fn force_through(&self, seq: u64) -> Result<(), WalError> {
        self.request_force(seq)?;
        self.wait_forced(seq)
    }

    /// Crash snapshot of this stream's log disk, as of "now" in the
    /// appender's frame of reference (between batches, never mid-force).
    pub fn snapshot(&self) -> Result<MemDisk, WalError> {
        let (reply, rx) = sync_channel(1);
        {
            let tx = self.tx.lock().expect("appender sender lock");
            tx.send(Req::Snapshot { reply })
                .map_err(|_| stalled("log appender thread gone"))?;
        }
        rx.recv_timeout(WAIT_TIMEOUT)
            .map_err(|_| stalled("log appender stalled: snapshot timed out"))
    }

    /// Force requests issued against this stream (observability).
    pub fn forces_requested(&self) -> u64 {
        self.forces.load(Ordering::Relaxed)
    }

    /// Tickets issued so far (fragments enqueued).
    pub fn tickets_issued(&self) -> u64 {
        self.next_seq.load(Ordering::Relaxed) - 1
    }

    fn check_error(&self) -> Result<(), WalError> {
        let state = self.shared.state.lock().expect("appender state lock");
        match &state.error {
            Some(e) => Err(WalError::Storage(e.clone())),
            None => Ok(()),
        }
    }

    /// Stop the thread and take the stream back (final shutdown).
    pub fn shutdown(mut self) -> Result<LogStream, WalError> {
        {
            let tx = self.tx.lock().expect("appender sender lock");
            let _ = tx.send(Req::Shutdown);
        }
        let handle = self.handle.take().expect("appender joined twice");
        handle
            .join()
            .map_err(|_| stalled("log appender thread panicked"))
    }
}

impl Drop for LogAppender {
    fn drop(&mut self) {
        if let Some(handle) = self.handle.take() {
            if let Ok(tx) = self.tx.lock() {
                let _ = tx.send(Req::Shutdown);
            }
            let _ = handle.join();
        }
    }
}

fn stalled(msg: &'static str) -> WalError {
    WalError::Storage(StorageError::Protocol(msg))
}

/// The appender thread: drain → append in ticket order → force once per
/// batch if anyone asked → publish progress.
fn run(
    mut stream: LogStream,
    rx: Receiver<Req>,
    shared: Arc<Shared>,
    force_delay: Duration,
    tobs: ThreadObs,
) -> LogStream {
    loop {
        let Ok(first) = rx.recv() else {
            return stream; // all senders gone
        };
        let mut batch = vec![first];
        while let Ok(more) = rx.try_recv() {
            batch.push(more);
        }
        let mut appended_high = 0u64;
        let mut force_to: Option<u64> = None;
        let mut snapshots: Vec<SyncSender<MemDisk>> = Vec::new();
        let mut shutdown = false;
        let mut error: Option<StorageError> = None;
        for req in batch {
            match req {
                Req::Append { rec, seq } => {
                    if error.is_none() {
                        match stream.append(&rec) {
                            Ok(_) => tobs.appended.inc(),
                            Err(e) => error = Some(e),
                        }
                    }
                    appended_high = appended_high.max(seq);
                }
                Req::Force { seq } => {
                    force_to = Some(force_to.map_or(seq, |f| f.max(seq)));
                }
                Req::Snapshot { reply } => snapshots.push(reply),
                Req::Shutdown => shutdown = true,
            }
        }
        {
            let mut state = shared.state.lock().expect("appender state lock");
            if appended_high > 0 {
                state.appended = state.appended.max(appended_high);
            }
            let need_force = error.is_none() && force_to.is_some_and(|seq| seq > state.forced);
            let appended_now = state.appended;
            drop(state);
            if need_force {
                let t_force = Instant::now();
                if let Err(e) = stream.force() {
                    error = Some(e);
                } else {
                    if !force_delay.is_zero() {
                        // modeled device service time; commits queue behind it
                        std::thread::sleep(force_delay);
                    }
                    let us = t_force.elapsed().as_micros() as u64;
                    tobs.forces.inc();
                    tobs.force_us.record(us);
                    tobs.obs.emit(EventKind::StreamForce, 0, tobs.idx, 0, us);
                }
            }
            let mut state = shared.state.lock().expect("appender state lock");
            if need_force && error.is_none() {
                // everything appended before the force is now durable
                state.forced = state.forced.max(appended_now);
            }
            if let Some(e) = error {
                state.error.get_or_insert(e);
            }
            shared.cv.notify_all();
        }
        for reply in snapshots {
            let _ = reply.send(stream.disk_snapshot());
        }
        if shutdown {
            return stream;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmdb_wal::ParallelLogManager;
    use rmdb_wal::SelectionPolicy;

    fn commit(txn: u64) -> LogRecord {
        LogRecord::Commit { txn }
    }

    #[test]
    fn appended_records_become_durable_after_force() {
        let app = LogAppender::spawn(LogStream::create(256), 64, Duration::ZERO);
        let t1 = app.append(commit(1)).unwrap();
        let t2 = app.append(commit(2)).unwrap();
        assert!(t2 > t1);
        app.force_through(t2).unwrap();
        assert!(app.is_forced(t1) && app.is_forced(t2));
        let disk = app.snapshot().unwrap();
        let mgr = ParallelLogManager::open(vec![disk], SelectionPolicy::Cyclic, 0).unwrap();
        assert_eq!(mgr.scan_all()[0], vec![commit(1), commit(2)]);
    }

    #[test]
    fn unforced_tail_missing_from_snapshot() {
        let app = LogAppender::spawn(LogStream::create(256), 64, Duration::ZERO);
        let t1 = app.append(commit(1)).unwrap();
        app.force_through(t1).unwrap();
        let _t2 = app.append(commit(2)).unwrap();
        // no force for t2 — snapshot may contain only the durable prefix
        let disk = app.snapshot().unwrap();
        let mgr = ParallelLogManager::open(vec![disk], SelectionPolicy::Cyclic, 0).unwrap();
        let recs = mgr.scan_all()[0].clone();
        assert!(recs.starts_with(&[commit(1)]));
        assert!(recs.len() <= 2);
    }

    #[test]
    fn concurrent_producers_keep_ticket_order() {
        let app = std::sync::Arc::new(LogAppender::spawn(
            LogStream::create(1024),
            8,
            Duration::ZERO,
        ));
        crossbeam::thread::scope(|s| {
            for p in 0..4u64 {
                let app = std::sync::Arc::clone(&app);
                s.spawn(move |_| {
                    for i in 0..50 {
                        let seq = app.append(commit(p * 1000 + i)).unwrap();
                        if i % 10 == 0 {
                            app.force_through(seq).unwrap();
                        }
                    }
                });
            }
        })
        .unwrap();
        let app = std::sync::Arc::into_inner(app).unwrap();
        assert_eq!(app.tickets_issued(), 200);
        let stream = app.shutdown().unwrap();
        // records landed in ticket order: scan parses cleanly and the
        // durable prefix is a permutation-free interleaving
        let (recs, stats) = stream.scan_with_stats();
        assert_eq!(stats.corrupt_pages, 0);
        assert!(!recs.is_empty());
    }

    #[test]
    fn shutdown_returns_stream_with_pending_appends() {
        let app = LogAppender::spawn(LogStream::create(256), 64, Duration::ZERO);
        let seq = app.append(commit(7)).unwrap();
        app.force_through(seq).unwrap();
        let stream = app.shutdown().unwrap();
        assert_eq!(stream.scan(), vec![commit(7)]);
    }
}
