//! Typed errors for the concurrent pipeline.
//!
//! The failover machinery needs to *classify* failures, not just report
//! them: a transient storage hiccup is retried in place, a persistent
//! device fault quarantines the stream and reroutes its fragments, and a
//! dead appender thread is diagnosed with its panic payload intact.
//! [`AppenderError`] is that classification; [`ExecError`] wraps it with
//! the rest of the pipeline's failure surface (lock conflicts, degraded
//! mode, poisoned locks) and carries a single `is_retryable` verdict that
//! [`crate::ExecDb::run_txn`] uses for its bounded retry loop.

use rmdb_storage::StorageError;
use rmdb_wal::WalError;

/// Why a log-appender interaction failed, classified for failover.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AppenderError {
    /// A storage fault that cleared (or may clear) on retry. The stream
    /// stays in the fleet; the caller should back off and try again.
    Transient(StorageError),
    /// The stream's device failed after bounded in-stream retries
    /// ([`rmdb_wal::stream::IO_RETRIES`]); the stream must be
    /// quarantined and its volatile fragments rerouted.
    Persistent(StorageError),
    /// The appender thread is gone — panicked (payload preserved) or its
    /// channel closed underneath a producer.
    ThreadDeath(String),
    /// The appender is alive but unresponsive: a wait exceeded its
    /// deadline without the thread reporting an error.
    Stalled { what: &'static str, waited_ms: u64 },
    /// The stream was already quarantined by failover; the fragment must
    /// be rerouted to a survivor.
    Quarantined,
    /// The ticket was issued against a stream incarnation that died
    /// before forcing it: the fragment was lost with the old appender's
    /// volatile tail and can never become durable here. The caller must
    /// reroute it — the stream itself is healthy (post-rejoin).
    Orphaned {
        /// The orphaned ticket.
        seq: u64,
    },
}

impl AppenderError {
    /// Short class label for metrics and event payloads.
    pub fn class(&self) -> &'static str {
        match self {
            AppenderError::Transient(_) => "transient",
            AppenderError::Persistent(_) => "persistent",
            AppenderError::ThreadDeath(_) => "thread_death",
            AppenderError::Stalled { .. } => "stalled",
            AppenderError::Quarantined => "quarantined",
            AppenderError::Orphaned { .. } => "orphaned",
        }
    }

    /// Ordinal for event payloads (stable, matches `class` order).
    pub fn class_ordinal(&self) -> u64 {
        match self {
            AppenderError::Transient(_) => 0,
            AppenderError::Persistent(_) => 1,
            AppenderError::ThreadDeath(_) => 2,
            AppenderError::Stalled { .. } => 3,
            AppenderError::Quarantined => 4,
            AppenderError::Orphaned { .. } => 5,
        }
    }

    /// Whether the failure warrants quarantining the stream (as opposed
    /// to retrying against it).
    pub fn is_fatal_to_stream(&self) -> bool {
        matches!(
            self,
            AppenderError::Persistent(_)
                | AppenderError::ThreadDeath(_)
                | AppenderError::Stalled { .. }
        )
    }
}

impl std::fmt::Display for AppenderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AppenderError::Transient(e) => write!(f, "transient storage fault: {e}"),
            AppenderError::Persistent(e) => write!(f, "persistent storage fault: {e}"),
            AppenderError::ThreadDeath(msg) => write!(f, "appender thread died: {msg}"),
            AppenderError::Stalled { what, waited_ms } => {
                write!(f, "appender stalled: {what} timed out after {waited_ms} ms")
            }
            AppenderError::Quarantined => write!(f, "stream is quarantined"),
            AppenderError::Orphaned { seq } => {
                write!(f, "ticket {seq} orphaned by a stream rejoin; reroute it")
            }
        }
    }
}

/// Pipeline-level error: everything [`crate::ExecDb`] can surface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// An underlying WAL error (lock conflicts, storage faults outside
    /// the appender fleet, protocol violations).
    Wal(WalError),
    /// A log-appender failure, tagged with the stream it happened on so
    /// failover can quarantine the right one.
    Appender { stream: usize, error: AppenderError },
    /// A bounded wait gave up (e.g. [`crate::CommitHandle::wait`]).
    Timeout { what: &'static str, waited_ms: u64 },
    /// The retry budget ran out without a commit.
    Starved { attempts: u64 },
    /// Degraded mode: fewer than the configured minimum of log streams
    /// survive, so the pipeline sheds load instead of wedging.
    Degraded { live: usize, min: usize },
    /// A lock guarding non-repairable state was poisoned by a panicking
    /// thread; the protected invariants cannot be trusted.
    Poisoned { what: &'static str },
    /// A stream-rejoin step failed (device still unhealthy, thread not
    /// retired, prefix revalidation error): the stream stays quarantined
    /// and the membership manager retries on a later probe.
    Rejoin { stream: usize, reason: String },
}

impl ExecError {
    /// Whether [`crate::ExecDb::run_txn`] should abort, back off, and try
    /// again: lock conflicts and appender failures are retryable (a
    /// failed stream is quarantined and the retry routes around it);
    /// degraded mode, starvation, and poisoning are terminal.
    ///
    /// [`ExecError::Timeout`] is deliberately **not** retryable: a
    /// timed-out [`crate::CommitHandle::wait`] leaves the request owned
    /// by the group-commit daemon, which may still force the commit
    /// record after the waiter gives up (e.g. a device stall that clears
    /// inside the daemon's own bounded waits). Re-executing the body
    /// then would apply the transaction's effects twice. The outcome is
    /// *indeterminate* — only the caller can decide what that means.
    pub fn is_retryable(&self) -> bool {
        match self {
            ExecError::Wal(WalError::LockConflict { .. }) => true,
            ExecError::Appender { .. } => true,
            ExecError::Timeout { .. }
            | ExecError::Wal(_)
            | ExecError::Starved { .. }
            | ExecError::Degraded { .. }
            | ExecError::Poisoned { .. }
            | ExecError::Rejoin { .. } => false,
        }
    }

    /// The lock-conflict holder, when that is what this error is.
    pub fn lock_conflict(&self) -> Option<rmdb_wal::TxnId> {
        match self {
            ExecError::Wal(WalError::LockConflict { holder, .. }) => Some(*holder),
            _ => None,
        }
    }
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Wal(e) => write!(f, "{e}"),
            ExecError::Appender { stream, error } => {
                write!(f, "log stream {stream}: {error}")
            }
            ExecError::Timeout { what, waited_ms } => {
                write!(f, "{what} timed out after {waited_ms} ms")
            }
            ExecError::Starved { attempts } => {
                write!(f, "transaction starved after {attempts} attempts")
            }
            ExecError::Degraded { live, min } => {
                write!(
                    f,
                    "degraded mode: {live} live log streams < minimum {min}; shedding load"
                )
            }
            ExecError::Poisoned { what } => {
                write!(f, "poisoned lock: {what}")
            }
            ExecError::Rejoin { stream, reason } => {
                write!(f, "stream {stream} rejoin failed: {reason}")
            }
        }
    }
}

impl From<WalError> for ExecError {
    fn from(e: WalError) -> Self {
        ExecError::Wal(e)
    }
}

impl From<StorageError> for ExecError {
    fn from(e: StorageError) -> Self {
        ExecError::Wal(WalError::Storage(e))
    }
}

impl std::error::Error for ExecError {}
