//! The group-commit daemon: one thread batching commit forces across the
//! log-processor bank.
//!
//! Workers submit [`CommitReq`]s over a bounded channel and park on a
//! [`CommitHandle`]. The daemon drains a batch, forces every stream
//! holding any batch member's fragments (one force per stream, not one
//! per transaction), then — under the commit gate — appends and forces
//! each member's `Commit` record on its home stream. Locks are released
//! only after the commit record is durable, preserving strict 2PL.
//!
//! The commit gate (`Inner::gate`) is the crash-image linchpin: because
//! every commit-record append + home force happens inside the gate, a
//! snapshot that acquires the gate sees either all of a group's commit
//! records durable or none mid-flight, and any commit record visible in
//! a log snapshot had its fragments forced strictly earlier — so the
//! recovered image can never contain a committed transaction with
//! missing fragments.
//!
//! ## Failure isolation
//!
//! A stream failing mid-batch fails only the members that needed it:
//! force errors are kept per stream and mapped back per member, so a
//! batch spanning four streams loses one stream's transactions, not all
//! of them. Failed members are rolled back **daemon-side** — the worker
//! handed over the undo chain with the [`CommitReq`] — before their
//! locks release, so strict 2PL holds even for commits that die in the
//! daemon. Each failure is also reported to the failover machinery,
//! which quarantines the stream so retries route around it.

use crate::db::{Inner, UndoEntry};
use crate::error::ExecError;
use crate::sync::lock_ok;
use rmdb_obs::{Counter, EventKind};
use rmdb_storage::PageId;
use rmdb_wal::record::LogRecord;
use std::collections::BTreeMap;
use std::sync::atomic::Ordering;
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A worker's commit submission.
pub(crate) struct CommitReq {
    /// Committing transaction.
    pub txn: u64,
    /// Home stream for the commit record.
    pub home: usize,
    /// Per-stream high-water fragment tickets: `(stream, max seq)`.
    pub tickets: Vec<(usize, u64)>,
    /// The undo chain, surrendered at submit so the daemon can roll the
    /// transaction back if its commit fails mid-batch.
    pub undo: Vec<UndoEntry>,
    /// Full images of every page this transaction wrote, captured at
    /// submit under its X locks. On success the daemon installs them in
    /// the MVCC version pool (before releasing locks), making the commit
    /// visible to lock-free snapshot readers; on failure they are simply
    /// dropped.
    pub images: Vec<Arc<rmdb_storage::Page>>,
    /// The commit record the daemon appends on the home stream: a plain
    /// `Commit`, or the transaction's `Logical` record under command
    /// logging — in which case the one record IS the commit record.
    pub commit_rec: LogRecord,
    /// Pages the worker left pinned under deferred capture. The daemon
    /// unpins them only after the appended commit record's ticket is in
    /// their WAL-rule meta entries (success) or after rollback restored
    /// their before-images (failure) — either way, no un-logged dirty
    /// byte can reach the data disk through an eviction.
    pub unpin: Vec<PageId>,
    /// Log bytes command logging saved vs the retained fragments
    /// (`wal.bytes_saved`; 0 for physical commits).
    pub bytes_saved: u64,
    /// Completion channel the worker parks on.
    pub reply: SyncSender<Result<(), ExecError>>,
}

/// Completion handle for a submitted commit.
pub struct CommitHandle {
    rx: std::sync::mpsc::Receiver<Result<(), ExecError>>,
    /// `txn.commits_acked`, bumped when the *waiter* observes success —
    /// the worker-side half of the `commits_acked ==
    /// group_commit_completions` conservation law. `None` on the
    /// read-only fast path, which never crosses the daemon.
    acked: Option<Counter>,
    /// Wait deadline ([`crate::ExecConfig::commit_timeout_ms`]).
    timeout: Duration,
}

impl CommitHandle {
    pub(crate) fn new(
        rx: std::sync::mpsc::Receiver<Result<(), ExecError>>,
        acked: Option<Counter>,
        timeout: Duration,
    ) -> Self {
        CommitHandle { rx, acked, timeout }
    }

    /// Block until the commit record is durable (or the commit failed).
    /// Gives up after the configured deadline with a typed
    /// [`ExecError::Timeout`] — a stuck daemon (or a stuck appender the
    /// daemon is waiting on) sheds the waiter instead of wedging it.
    pub fn wait(self) -> Result<(), ExecError> {
        let t0 = Instant::now();
        match self.rx.recv_timeout(self.timeout) {
            Ok(result) => {
                if result.is_ok() {
                    if let Some(acked) = &self.acked {
                        acked.inc();
                    }
                }
                result
            }
            Err(RecvTimeoutError::Timeout) => Err(ExecError::Timeout {
                what: "group commit",
                waited_ms: t0.elapsed().as_millis() as u64,
            }),
            Err(RecvTimeoutError::Disconnected) => Err(ExecError::Timeout {
                what: "group commit (daemon gone)",
                waited_ms: t0.elapsed().as_millis() as u64,
            }),
        }
    }
}

/// Daemon main loop. Exits when every commit sender is dropped.
pub(crate) fn run_daemon(
    inner: Arc<Inner>,
    rx: Receiver<CommitReq>,
    max_group: usize,
    dwell: Duration,
) {
    let max_group = max_group.max(1);
    let obs = inner.obs.clone();
    let completions = obs.counter("group.completions");
    let batch_size = obs.histogram("group.batch_size");
    let dwell_us = obs.histogram("group.dwell_us");
    let logical_records = obs.counter("wal.logical_records");
    let bytes_saved = obs.counter("wal.bytes_saved");
    while let Ok(first) = rx.recv() {
        let mut batch = vec![first];
        // dwell: linger briefly for stragglers so the force is shared
        let t_arrive = Instant::now();
        let deadline = t_arrive + dwell;
        while batch.len() < max_group {
            match rx.try_recv() {
                Ok(req) => batch.push(req),
                Err(_) => {
                    if Instant::now() >= deadline {
                        break;
                    }
                    std::hint::spin_loop();
                }
            }
        }
        // how long the dwell window actually held the batch open
        dwell_us.record(t_arrive.elapsed().as_micros() as u64);
        batch_size.record(batch.len() as u64);
        obs.emit(EventKind::GroupCommitBatch, 0, 0, 0, batch.len() as u64);
        let results = commit_batch(&inner, &batch);
        inner.stats.group_commits.fetch_add(1, Ordering::Relaxed);
        inner
            .stats
            .commits_grouped
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        inner
            .stats
            .max_group_size
            .fetch_max(batch.len() as u64, Ordering::Relaxed);
        for (req, result) in batch.into_iter().zip(results) {
            match result {
                Ok(()) => {
                    // publish the commit's page versions to the MVCC pool
                    // *before* releasing locks: the X locks pin the
                    // captured images, and publish order under the single
                    // daemon thread is commit order
                    inner.mvcc.commit(&req.images);
                    if matches!(req.commit_rec, LogRecord::Logical { .. }) {
                        logical_records.inc();
                        bytes_saved.add(req.bytes_saved);
                    }
                    // deferred pins drop only now: the durable logical
                    // record is in the pages' WAL-rule meta entries (set
                    // at append time), so eviction forces through it
                    inner.unpin_pages(&req.unpin);
                    // strict 2PL: release only once the outcome is decided
                    inner.release_locks(req.txn);
                    inner.stats.committed.fetch_add(1, Ordering::Relaxed);
                    completions.inc();
                    let _ = req.reply.send(Ok(()));
                }
                Err(e) => {
                    // roll the member back before its locks release, so
                    // no other transaction ever reads its dirty writes
                    inner.undo_and_release(req.txn, req.home, req.undo);
                    inner.unpin_pages(&req.unpin);
                    let _ = req.reply.send(Err(e));
                }
            }
        }
    }
}

/// Force fragments for the whole batch, then gate + append + force the
/// commit records. Returns one result per batch member, in order; a
/// stream failure condemns only the members that needed that stream.
fn commit_batch(inner: &Inner, batch: &[CommitReq]) -> Vec<Result<(), ExecError>> {
    // Phase 1: one fragment force per distinct stream across the group.
    // Fragments on a transaction's own home stream are skipped: its
    // commit record is appended to that stream *after* them, so the home
    // force in phase 2 covers them for free (stream-local append order) —
    // the durable-commit ⇒ durable-fragments invariant still holds.
    let mut frag_high: BTreeMap<usize, u64> = BTreeMap::new();
    for req in batch {
        for &(stream, seq) in &req.tickets {
            if stream == req.home {
                continue;
            }
            let high = frag_high.entry(stream).or_insert(0);
            *high = (*high).max(seq);
        }
    }
    // request all forces first so the appenders work in parallel, then
    // wait for each; keep the result per stream so one dead stream fails
    // only its own dependents
    let mut stream_res: BTreeMap<usize, Result<(), ExecError>> = BTreeMap::new();
    for (&stream, &seq) in &frag_high {
        let r = inner.appenders.get(stream).request_force(seq);
        if let Err(e) = &r {
            inner.note_appender_failure(e);
        }
        stream_res.insert(stream, r);
    }
    for (&stream, &seq) in &frag_high {
        if stream_res.get(&stream).is_some_and(|r| r.is_ok()) {
            if let Err(e) = inner.appenders.get(stream).wait_forced(seq) {
                inner.note_appender_failure(&e);
                stream_res.insert(stream, Err(e));
            }
        }
    }
    let mut results: Vec<Result<(), ExecError>> = batch
        .iter()
        .map(|req| {
            for &(stream, _) in &req.tickets {
                if stream == req.home {
                    continue;
                }
                if let Some(Err(e)) = stream_res.get(&stream) {
                    return Err(e.clone());
                }
            }
            Ok(())
        })
        .collect();

    // Phase 2: commit records, under the gate (see module docs).
    let _gate = lock_ok(&inner.gate);
    let mut appended: Vec<bool> = vec![false; batch.len()];
    let mut home_high: BTreeMap<usize, u64> = BTreeMap::new();
    for (i, req) in batch.iter().enumerate() {
        if results[i].is_err() {
            continue;
        }
        match inner.appenders.get(req.home).append(req.commit_rec.clone()) {
            Ok(seq) => {
                appended[i] = true;
                // a command-logged member's deferred pages now answer to
                // this record: re-pin their WAL-rule meta before any
                // unpin can expose them to the evicting flusher
                inner.cover_deferred(&req.unpin, req.home, seq);
                let high = home_high.entry(req.home).or_insert(0);
                *high = (*high).max(seq);
            }
            Err(e) => {
                inner.note_appender_failure(&e);
                results[i] = Err(e);
            }
        }
    }
    let mut force_res: BTreeMap<usize, Result<(), ExecError>> = BTreeMap::new();
    for (&stream, &seq) in &home_high {
        let r = inner.appenders.get(stream).request_force(seq);
        if let Err(e) = &r {
            inner.note_appender_failure(e);
        }
        force_res.insert(stream, r);
    }
    for (&stream, &seq) in &home_high {
        if force_res.get(&stream).is_some_and(|r| r.is_ok()) {
            if let Err(e) = inner.appenders.get(stream).wait_forced(seq) {
                inner.note_appender_failure(&e);
                force_res.insert(stream, Err(e));
            }
        }
    }
    for (i, req) in batch.iter().enumerate() {
        if results[i].is_ok() && appended[i] {
            if let Some(Err(e)) = force_res.get(&req.home) {
                results[i] = Err(e.clone());
            }
        }
    }
    results
}
