//! The group-commit daemon: one thread batching commit forces across the
//! log-processor bank.
//!
//! Workers submit [`CommitReq`]s over a bounded channel and park on a
//! [`CommitHandle`]. The daemon drains a batch, forces every stream
//! holding any batch member's fragments (one force per stream, not one
//! per transaction), then — under the commit gate — appends and forces
//! each member's `Commit` record on its home stream. Locks are released
//! only after the commit record is durable, preserving strict 2PL.
//!
//! The commit gate (`Inner::gate`) is the crash-image linchpin: because
//! every commit-record append + home force happens inside the gate, a
//! snapshot that acquires the gate sees either all of a group's commit
//! records durable or none mid-flight, and any commit record visible in
//! a log snapshot had its fragments forced strictly earlier — so the
//! recovered image can never contain a committed transaction with
//! missing fragments.

use crate::db::Inner;
use rmdb_obs::{Counter, EventKind};
use rmdb_storage::StorageError;
use rmdb_wal::record::LogRecord;
use rmdb_wal::WalError;
use std::collections::BTreeMap;
use std::sync::atomic::Ordering;
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::Arc;
use std::time::Duration;

/// A worker's commit submission.
pub(crate) struct CommitReq {
    /// Committing transaction.
    pub txn: u64,
    /// Home stream for the commit record.
    pub home: usize,
    /// Per-stream high-water fragment tickets: `(stream, max seq)`.
    pub tickets: Vec<(usize, u64)>,
    /// Completion channel the worker parks on.
    pub reply: SyncSender<Result<(), WalError>>,
}

/// Completion handle for a submitted commit.
pub struct CommitHandle {
    rx: std::sync::mpsc::Receiver<Result<(), WalError>>,
    /// `txn.commits_acked`, bumped when the *waiter* observes success —
    /// the worker-side half of the `commits_acked ==
    /// group_commit_completions` conservation law. `None` on the
    /// read-only fast path, which never crosses the daemon.
    acked: Option<Counter>,
}

impl CommitHandle {
    pub(crate) fn new(
        rx: std::sync::mpsc::Receiver<Result<(), WalError>>,
        acked: Option<Counter>,
    ) -> Self {
        CommitHandle { rx, acked }
    }

    /// Block until the commit record is durable (or the commit failed).
    pub fn wait(self) -> Result<(), WalError> {
        match self.rx.recv_timeout(Duration::from_secs(30)) {
            Ok(result) => {
                if result.is_ok() {
                    if let Some(acked) = &self.acked {
                        acked.inc();
                    }
                }
                result
            }
            Err(_) => Err(WalError::Storage(StorageError::Protocol(
                "group-commit daemon stalled",
            ))),
        }
    }
}

/// Daemon main loop. Exits when every commit sender is dropped.
pub(crate) fn run_daemon(
    inner: Arc<Inner>,
    rx: Receiver<CommitReq>,
    max_group: usize,
    dwell: Duration,
) {
    let max_group = max_group.max(1);
    let obs = inner.obs.clone();
    let completions = obs.counter("group.completions");
    let batch_size = obs.histogram("group.batch_size");
    let dwell_us = obs.histogram("group.dwell_us");
    while let Ok(first) = rx.recv() {
        let mut batch = vec![first];
        // dwell: linger briefly for stragglers so the force is shared
        let t_arrive = std::time::Instant::now();
        let deadline = t_arrive + dwell;
        while batch.len() < max_group {
            match rx.try_recv() {
                Ok(req) => batch.push(req),
                Err(_) => {
                    if std::time::Instant::now() >= deadline {
                        break;
                    }
                    std::hint::spin_loop();
                }
            }
        }
        // how long the dwell window actually held the batch open
        dwell_us.record(t_arrive.elapsed().as_micros() as u64);
        batch_size.record(batch.len() as u64);
        obs.emit(EventKind::GroupCommitBatch, 0, 0, 0, batch.len() as u64);
        let results = commit_batch(&inner, &batch);
        inner.stats.group_commits.fetch_add(1, Ordering::Relaxed);
        inner
            .stats
            .commits_grouped
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        inner
            .stats
            .max_group_size
            .fetch_max(batch.len() as u64, Ordering::Relaxed);
        for (req, result) in batch.into_iter().zip(results) {
            let ok = result.is_ok();
            // strict 2PL: release only once the outcome is decided
            inner.release_locks(req.txn);
            if ok {
                inner.stats.committed.fetch_add(1, Ordering::Relaxed);
                completions.inc();
            } else {
                inner.stats.aborted.fetch_add(1, Ordering::Relaxed);
            }
            let _ = req.reply.send(result);
        }
    }
}

/// Force fragments for the whole batch, then gate + append + force the
/// commit records. Returns one result per batch member, in order.
fn commit_batch(inner: &Inner, batch: &[CommitReq]) -> Vec<Result<(), WalError>> {
    // Phase 1: one fragment force per distinct stream across the group.
    // Fragments on a transaction's own home stream are skipped: its
    // commit record is appended to that stream *after* them, so the home
    // force in phase 2 covers them for free (stream-local append order) —
    // the durable-commit ⇒ durable-fragments invariant still holds.
    let mut frag_high: BTreeMap<usize, u64> = BTreeMap::new();
    for req in batch {
        for &(stream, seq) in &req.tickets {
            if stream == req.home {
                continue;
            }
            let high = frag_high.entry(stream).or_insert(0);
            *high = (*high).max(seq);
        }
    }
    // request all forces first so the appenders work in parallel …
    let mut phase1: Result<(), WalError> = Ok(());
    for (&stream, &seq) in &frag_high {
        if let Err(e) = inner.appenders[stream].request_force(seq) {
            phase1 = Err(e);
            break;
        }
    }
    // … then wait for each.
    if phase1.is_ok() {
        for (&stream, &seq) in &frag_high {
            if let Err(e) = inner.appenders[stream].wait_forced(seq) {
                phase1 = Err(e);
                break;
            }
        }
    }
    if let Err(e) = phase1 {
        return batch.iter().map(|_| Err(e.clone())).collect();
    }

    // Phase 2: commit records, under the gate (see module docs).
    let _gate = inner.gate.lock().expect("commit gate");
    let mut results: Vec<Result<(), WalError>> = Vec::with_capacity(batch.len());
    let mut home_high: BTreeMap<usize, u64> = BTreeMap::new();
    for req in batch {
        match inner.appenders[req.home].append(LogRecord::Commit { txn: req.txn }) {
            Ok(seq) => {
                let high = home_high.entry(req.home).or_insert(0);
                *high = (*high).max(seq);
                results.push(Ok(()));
            }
            Err(e) => results.push(Err(e)),
        }
    }
    let mut phase2: Result<(), WalError> = Ok(());
    for (&stream, &seq) in &home_high {
        if let Err(e) = inner.appenders[stream].request_force(seq) {
            phase2 = Err(e);
            break;
        }
    }
    if phase2.is_ok() {
        for (&stream, &seq) in &home_high {
            if let Err(e) = inner.appenders[stream].wait_forced(seq) {
                phase2 = Err(e);
                break;
            }
        }
    }
    if let Err(e) = phase2 {
        for r in results.iter_mut() {
            if r.is_ok() {
                *r = Err(e.clone());
            }
        }
    }
    results
}
