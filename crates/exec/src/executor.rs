//! A bounded worker-pool executor — the query-processor bank.
//!
//! Jobs are submitted over a bounded channel; when every worker is busy
//! and the queue is full, [`Executor::submit`] blocks — backpressure,
//! the pipeline's admission control. Workers are plain threads running a
//! recv loop; the pool drains and joins on [`Executor::join`] (or drop).

use crate::sync::lock_ok;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed pool of worker threads with a bounded job queue.
pub struct Executor {
    tx: Option<SyncSender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

/// Completion handle for a submitted job.
pub struct JobHandle<R> {
    rx: Receiver<R>,
}

impl<R> JobHandle<R> {
    /// Block until the job finishes and return its result.
    ///
    /// # Panics
    /// If the job's worker thread panicked before sending a result.
    pub fn wait(self) -> R {
        self.rx.recv().expect("worker dropped job result")
    }

    /// Non-blocking poll; `None` while the job is still running.
    pub fn try_wait(&self) -> Option<R> {
        self.rx.try_recv().ok()
    }
}

impl Executor {
    /// Spawn `workers` threads sharing a queue of `queue` pending jobs.
    pub fn new(workers: usize, queue: usize) -> Self {
        let workers = workers.max(1);
        let (tx, rx) = sync_channel::<Job>(queue.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let handles = (0..workers)
            .map(|i| {
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("rmdb-worker-{i}"))
                    .spawn(move || loop {
                        let job = {
                            // poison-tolerant: a sibling dying with the
                            // guard held must not wedge the whole pool
                            let rx = lock_ok(&rx);
                            rx.recv()
                        };
                        match job {
                            Ok(job) => job(),
                            Err(_) => return, // all senders gone
                        }
                    })
                    .expect("spawn worker")
            })
            .collect();
        Executor {
            tx: Some(tx),
            workers: handles,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Submit a job; blocks when the queue is full (backpressure).
    pub fn submit<F, R>(&self, f: F) -> JobHandle<R>
    where
        F: FnOnce() -> R + Send + 'static,
        R: Send + 'static,
    {
        let (done, rx) = sync_channel(1);
        let job: Job = Box::new(move || {
            let _ = done.send(f());
        });
        self.tx
            .as_ref()
            .expect("executor running")
            .send(job)
            .expect("worker pool gone");
        JobHandle { rx }
    }

    /// Stop accepting jobs, run out the queue, and join every worker.
    pub fn join(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.tx = None;
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn runs_all_jobs_and_returns_results() {
        let pool = Executor::new(4, 8);
        let handles: Vec<_> = (0..100u64).map(|i| pool.submit(move || i * 2)).collect();
        let total: u64 = handles.into_iter().map(|h| h.wait()).sum();
        assert_eq!(total, (0..100u64).map(|i| i * 2).sum());
        pool.join();
    }

    #[test]
    fn bounded_queue_applies_backpressure() {
        // queue of 1 with a slow worker: submit must block rather than
        // grow without bound — observed via the counter never racing
        // ahead of completions by more than workers + queue + 1
        let pool = Executor::new(1, 1);
        let done = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let counter = Arc::clone(&done);
            handles.push(pool.submit(move || {
                std::thread::sleep(std::time::Duration::from_millis(5));
                counter.fetch_add(1, Ordering::Relaxed);
            }));
            let finished = done.load(Ordering::Relaxed);
            let submitted = handles.len() as u64;
            assert!(submitted - finished <= 3, "queue grew past its bound");
        }
        for h in handles {
            h.wait();
        }
        assert_eq!(done.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn join_drains_pending_jobs() {
        let pool = Executor::new(2, 16);
        let done = Arc::new(AtomicU64::new(0));
        for _ in 0..32 {
            let done = Arc::clone(&done);
            pool.submit(move || {
                done.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.join();
        assert_eq!(done.load(Ordering::Relaxed), 32);
    }
}
