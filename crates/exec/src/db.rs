//! [`ExecDb`] — the concurrent transaction pipeline.
//!
//! This is the paper's machine organisation with the roles mapped onto
//! real threads instead of a simulated event loop:
//!
//! * **query processors** — the caller's worker threads, each running
//!   transactions against `&ExecDb`;
//! * **log processors** — one [`LogAppender`] thread per log stream,
//!   draining a bounded fragment channel into 4 KB log pages;
//! * **back-end controller scheduler** — a [`Scheduler`] behind its own
//!   mutex, with waiting workers parked on per-transaction condvar slots;
//! * **back-end controller commit path** — the group-commit daemon
//!   ([`crate::group`]), batching commit forces across streams.
//!
//! The monolithic engine mutex of `rmdb_wal::SharedWal` is decomposed
//! into fine-grained locks: the scheduler mutex (lock table only), a
//! sharded buffer pool (page content + per-page log tickets, one mutex
//! per shard), one data-disk mutex (flush serialisation), and one tiny
//! sender mutex per log stream (ticket issue). No lock is held across a
//! blocking wait on another worker; waits on the appender threads are
//! safe because appenders never take engine locks.
//!
//! ## Commit-ordering invariant
//!
//! A transaction's `Commit` record is appended to its home stream only
//! after every stream holding one of its fragments has confirmed a force
//! covering that fragment's ticket. Together with the crash-image
//! protocol (commit gate + data-before-logs snapshot order, see
//! [`ExecDb::crash_image`]), this guarantees any crash image containing
//! a durable `Commit{t}` also contains every fragment of `t` — so
//! [`rmdb_wal::WalDb::recover`] replays exactly the committed state.

use crate::appender::LogAppender;
use crate::group::{run_daemon, CommitHandle, CommitReq};
use rmdb_obs::{Counter, EventKind, Histogram, MetricsSnapshot, Registry};
use rmdb_storage::Lsn;
use rmdb_storage::{
    read_page_retry, write_page_verified, MemDisk, Page, PageId, ShardedPool, StorageError,
    PAYLOAD_SIZE,
};
use rmdb_wal::db::{LogMode, WalConfig};
use rmdb_wal::lock::LockMode;
use rmdb_wal::record::LogRecord;
use rmdb_wal::scheduler::{Decision, Scheduler, WaitStats};
use rmdb_wal::select::Selector;
use rmdb_wal::stream::{LogStream, IO_RETRIES};
use rmdb_wal::{Backoff, CrashImage, WalError};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Retries before a transaction is declared starved.
const MAX_RETRIES: usize = 1000;
/// Safety valve on lock waits; healthy runs never hit it.
const LOCK_WAIT_TIMEOUT: Duration = Duration::from_secs(10);

/// Pipeline configuration: the WAL knobs plus the concurrency shape.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Underlying WAL layout (data pages, streams, log mode, seed, …).
    /// `ckpt_every_commits` is ignored — the pipeline does not
    /// checkpoint; recovery scans the distributed logs from the start.
    pub wal: WalConfig,
    /// Buffer-pool shards (page → shard by multiplicative hash).
    pub pool_shards: usize,
    /// Bounded fragment-channel depth per log appender (backpressure).
    pub appender_queue: usize,
    /// Bounded commit-channel depth (backpressure on committers).
    pub commit_queue: usize,
    /// Max transactions the daemon folds into one group commit.
    pub max_group: usize,
    /// Group-commit dwell: after the first commit of a batch arrives,
    /// the daemon lingers up to this long for stragglers before forcing.
    /// Trades a little single-transaction latency for batch depth under
    /// load (the paper's group-commit knob, expressed as a window).
    pub group_dwell_us: u64,
    /// Modeled log-device service time per force, in microseconds. The
    /// paper's log disks are rotational — a force is never free; this is
    /// what makes sharing forces (group commit) worth anything. Zero
    /// (the default) models an ideal device, which unit tests want.
    pub force_delay_us: u64,
    /// Observability registry the pipeline publishes into. Cloneable and
    /// Arc-backed, so a bench can hand several databases the same
    /// registry and read cumulative metrics across all of them. Defaults
    /// to a fresh private registry.
    pub obs: Registry,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            wal: WalConfig::default(),
            pool_shards: 8,
            appender_queue: 1024,
            commit_queue: 1024,
            max_group: 64,
            group_dwell_us: 40,
            force_delay_us: 0,
            obs: Registry::new(),
        }
    }
}

/// Counter snapshot (all monotonic since construction).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Transactions durably committed (incl. read-only fast path).
    pub committed: u64,
    /// Transactions aborted (voluntary, victim, or failed commit).
    pub aborted: u64,
    /// `run_txn` attempts (first tries + retries).
    pub attempts: u64,
    /// Retries caused by lock conflicts / deadlock victimisation.
    pub conflict_retries: u64,
    /// Transactions that exhausted their retry budget.
    pub starved: u64,
    /// Fragment forces triggered by dirty-page eviction (WAL rule).
    pub wal_forces: u64,
    /// Group-commit batches flushed by the daemon.
    pub group_commits: u64,
    /// Transactions that went through the daemon (batch members).
    pub commits_grouped: u64,
    /// Largest batch the daemon flushed.
    pub max_group_size: u64,
    /// Waiters cancelled as deadlock victims.
    pub deadlock_victims: u64,
}

#[derive(Default)]
pub(crate) struct Stats {
    pub committed: AtomicU64,
    pub aborted: AtomicU64,
    pub attempts: AtomicU64,
    pub conflict_retries: AtomicU64,
    pub starved: AtomicU64,
    pub wal_forces: AtomicU64,
    pub group_commits: AtomicU64,
    pub commits_grouped: AtomicU64,
    pub max_group_size: AtomicU64,
    pub deadlock_victims: AtomicU64,
}

/// Outcome delivered to a parked lock waiter.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Outcome {
    /// The scheduler granted the lock; the waiter now holds it.
    Granted,
    /// The waiter was cancelled as a deadlock victim; it must abort.
    Victim,
}

/// One parked worker's wake-up slot.
struct Slot {
    state: Mutex<Option<Outcome>>,
    cv: Condvar,
}

/// Per-transaction condvar slots. Signals and waits may race (a grant
/// can land before the waiter parks), so both sides get-or-create.
#[derive(Default)]
struct WaitTable {
    slots: Mutex<HashMap<u64, Arc<Slot>>>,
}

impl WaitTable {
    fn slot(&self, txn: u64) -> Arc<Slot> {
        let mut slots = self.slots.lock().expect("wait table");
        Arc::clone(slots.entry(txn).or_insert_with(|| {
            Arc::new(Slot {
                state: Mutex::new(None),
                cv: Condvar::new(),
            })
        }))
    }

    /// Deliver `outcome` to `txn`'s slot. Callers hold the scheduler
    /// mutex, making signal/timeout interleavings serialisable.
    fn signal(&self, txn: u64, outcome: Outcome) {
        let slot = self.slot(txn);
        *slot.state.lock().expect("wait slot") = Some(outcome);
        slot.cv.notify_all();
    }

    /// Consume a delivered outcome without blocking (timeout re-check).
    fn take(&self, txn: u64) -> Option<Outcome> {
        let slot = self.slot(txn);
        let out = slot.state.lock().expect("wait slot").take();
        if out.is_some() {
            self.slots.lock().expect("wait table").remove(&txn);
        }
        out
    }

    /// Park until an outcome arrives; `None` on timeout (slot retained —
    /// the caller resolves the race under the scheduler mutex).
    fn wait(&self, txn: u64) -> Option<Outcome> {
        let slot = self.slot(txn);
        let mut state = slot.state.lock().expect("wait slot");
        let deadline = std::time::Instant::now() + LOCK_WAIT_TIMEOUT;
        loop {
            if let Some(out) = state.take() {
                drop(state);
                self.slots.lock().expect("wait table").remove(&txn);
                return Some(out);
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            let (next, _) = slot
                .cv
                .wait_timeout(state, deadline - now)
                .expect("wait slot condvar");
            state = next;
        }
    }
}

/// An undone-able update (worker-local; never crosses threads).
struct UndoEntry {
    page: PageId,
    offset: u32,
    before: Vec<u8>,
    new_lsn: Lsn,
}

/// An in-flight transaction, owned by the worker driving it.
pub struct Txn {
    id: u64,
    /// Home stream for the commit/abort record.
    home: usize,
    /// Per-stream high-water fragment tickets.
    tickets: HashMap<usize, u64>,
    undo: Vec<UndoEntry>,
}

impl Txn {
    /// Transaction id (monotonic; doubles as age for victim selection).
    pub fn id(&self) -> u64 {
        self.id
    }
}

/// Data disk plus the doublewrite cursor it protects.
struct DataState {
    disk: MemDisk,
    dw_cursor: u64,
}

/// Everything shared between workers, the appenders, and the daemon.
pub(crate) struct Inner {
    cfg: ExecConfig,
    sched: Mutex<Scheduler>,
    waits: WaitTable,
    /// Page cache, sharded; shard meta maps page → `(stream, ticket)` of
    /// its latest fragment (the WAL rule's "which log holds this page's
    /// fragment" table from the paper's back-end controller).
    shards: ShardedPool<HashMap<PageId, (usize, u64)>>,
    data: Mutex<DataState>,
    pub(crate) appenders: Vec<LogAppender>,
    selector: Mutex<Selector>,
    /// Commit gate: held for every commit-record append + home force and
    /// for the whole of [`ExecDb::crash_image`].
    pub(crate) gate: Mutex<()>,
    next_txn: AtomicU64,
    next_lsn: AtomicU64,
    pub(crate) stats: Stats,
    /// Shared observability registry (see [`ExecConfig::obs`]).
    pub(crate) obs: Registry,
    /// Worker-side commit acks (paired with the daemon's
    /// `group.completions`).
    commits_acked: Counter,
    /// End-to-end `run_txn` commit latency, µs.
    commit_us: Histogram,
}

impl Inner {
    /// Release `txn`'s locks and wake every waiter the release granted.
    /// Called by workers (abort) and the daemon (commit durable).
    pub(crate) fn release_locks(&self, txn: u64) {
        let mut sched = self.sched.lock().expect("scheduler");
        for (granted, _page) in sched.release_all(txn) {
            self.waits.signal(granted, Outcome::Granted);
        }
    }
}

/// The concurrent engine. Shared by reference across worker threads
/// (wrap in [`Arc`] to move between threads).
pub struct ExecDb {
    inner: Arc<Inner>,
    commit_tx: Option<SyncSender<CommitReq>>,
    daemon: Option<std::thread::JoinHandle<()>>,
}

impl ExecDb {
    /// A fresh database with `cfg.wal.log_streams` appender threads and
    /// the group-commit daemon running.
    pub fn new(cfg: ExecConfig) -> Self {
        assert!(cfg.pool_shards > 0, "need at least one pool shard");
        let wal = &cfg.wal;
        let force_delay = Duration::from_micros(cfg.force_delay_us);
        let obs = cfg.obs.clone();
        let appenders = (0..wal.log_streams)
            .map(|idx| {
                LogAppender::spawn_observed(
                    LogStream::create(wal.log_frames),
                    cfg.appender_queue,
                    force_delay,
                    &obs,
                    idx,
                )
            })
            .collect();
        let inner = Arc::new(Inner {
            sched: Mutex::new(Scheduler::new()),
            waits: WaitTable::default(),
            shards: ShardedPool::with_meta(
                cfg.pool_shards,
                wal.pool_frames,
                wal.evict,
                HashMap::new,
            ),
            data: Mutex::new(DataState {
                disk: MemDisk::new(wal.data_pages + wal.dw_slots),
                dw_cursor: 0,
            }),
            appenders,
            selector: Mutex::new(Selector::new(wal.policy, wal.log_streams, wal.seed)),
            gate: Mutex::new(()),
            next_txn: AtomicU64::new(1),
            next_lsn: AtomicU64::new(1),
            stats: Stats::default(),
            commits_acked: obs.counter("txn.commits_acked"),
            commit_us: obs.histogram("txn.commit_us"),
            obs,
            cfg: cfg.clone(),
        });
        let (commit_tx, commit_rx) = sync_channel(cfg.commit_queue.max(1));
        let daemon_inner = Arc::clone(&inner);
        let max_group = cfg.max_group;
        let dwell = Duration::from_micros(cfg.group_dwell_us);
        let daemon = std::thread::Builder::new()
            .name("rmdb-group-commit".into())
            .spawn(move || run_daemon(daemon_inner, commit_rx, max_group, dwell))
            .expect("spawn group-commit daemon");
        ExecDb {
            inner,
            commit_tx: Some(commit_tx),
            daemon: Some(daemon),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &ExecConfig {
        &self.inner.cfg
    }

    /// Begin a transaction on behalf of query processor `qp`.
    pub fn begin(&self, qp: usize) -> Txn {
        let id = self.inner.next_txn.fetch_add(1, Ordering::Relaxed);
        let home = self.inner.selector.lock().expect("selector").pick(qp, id);
        Txn {
            id,
            home,
            tickets: HashMap::new(),
            undo: Vec::new(),
        }
    }

    fn check_bounds(&self, page: u64, offset: usize, len: usize) -> Result<(), WalError> {
        if page >= self.inner.cfg.wal.data_pages || offset + len > PAYLOAD_SIZE {
            Err(WalError::OutOfBounds { page, offset, len })
        } else {
            Ok(())
        }
    }

    /// Acquire `mode` on `page` for `txn`, parking on the wait table if
    /// the scheduler queues us. Deadlock victims (us or others) surface
    /// as [`WalError::LockConflict`], the retryable error.
    fn lock_page(&self, txn: u64, page: PageId, mode: LockMode) -> Result<(), WalError> {
        let decision = {
            let mut sched = self.inner.sched.lock().expect("scheduler");
            let decision = sched.request(txn, page, mode);
            // signal victims while still holding the scheduler mutex so
            // victim/grant deliveries are serialised
            match &decision {
                Decision::Waiting { victims } | Decision::Deadlock { victims, .. } => {
                    for &v in victims {
                        self.inner
                            .stats
                            .deadlock_victims
                            .fetch_add(1, Ordering::Relaxed);
                        self.inner.waits.signal(v, Outcome::Victim);
                    }
                }
                Decision::Granted => {}
            }
            decision
        };
        match decision {
            Decision::Granted => Ok(()),
            Decision::Deadlock { cycle, .. } => {
                self.inner
                    .stats
                    .deadlock_victims
                    .fetch_add(1, Ordering::Relaxed);
                Err(WalError::LockConflict {
                    page,
                    holder: cycle.get(1).copied().unwrap_or(0),
                })
            }
            Decision::Waiting { .. } => match self.inner.waits.wait(txn) {
                Some(Outcome::Granted) => Ok(()),
                Some(Outcome::Victim) => Err(WalError::LockConflict { page, holder: 0 }),
                None => {
                    // timed out: resolve the race under the scheduler
                    // mutex — either a signal landed after the timeout,
                    // or we withdraw the wait
                    let mut sched = self.inner.sched.lock().expect("scheduler");
                    match self.inner.waits.take(txn) {
                        Some(Outcome::Granted) => Ok(()),
                        Some(Outcome::Victim) => Err(WalError::LockConflict { page, holder: 0 }),
                        None => {
                            sched.cancel_wait(txn);
                            Err(WalError::LockConflict { page, holder: 0 })
                        }
                    }
                }
            },
        }
    }

    /// Ensure `page` is resident in its shard, flushing any evicted dirty
    /// victim under the WAL rule. Caller holds the shard lock via `shard`.
    fn ensure_resident(
        &self,
        shard: &mut rmdb_storage::PoolShard<HashMap<PageId, (usize, u64)>>,
        id: PageId,
    ) -> Result<(), WalError> {
        if shard.pool.contains(id) {
            return Ok(());
        }
        let page = {
            let data = self.inner.data.lock().expect("data disk");
            if data.disk.is_allocated(id.0) {
                read_page_retry(&data.disk, id.0, IO_RETRIES)?
            } else {
                Page::new(id)
            }
        };
        if let Some(evicted) = shard.pool.insert(id, page, false)? {
            if evicted.dirty {
                self.flush_page(shard, &evicted.page)?;
            }
        }
        Ok(())
    }

    /// WAL-rule flush: force the page's latest fragment if not yet
    /// durable, then doublewrite + verified home write.
    fn flush_page(
        &self,
        shard: &mut rmdb_storage::PoolShard<HashMap<PageId, (usize, u64)>>,
        page: &Page,
    ) -> Result<(), WalError> {
        if let Some(&(stream, seq)) = shard.meta.get(&page.id) {
            let appender = &self.inner.appenders[stream];
            if !appender.is_forced(seq) {
                appender.force_through(seq)?;
                self.inner.stats.wal_forces.fetch_add(1, Ordering::Relaxed);
            }
        }
        let mut data = self.inner.data.lock().expect("data disk");
        let wal = &self.inner.cfg.wal;
        if wal.dw_slots > 0 {
            let slot = wal.data_pages + data.dw_cursor % wal.dw_slots;
            data.dw_cursor += 1;
            write_page_verified(&mut data.disk, slot, page, IO_RETRIES)?;
        }
        write_page_verified(&mut data.disk, page.id.0, page, IO_RETRIES)?;
        Ok(())
    }

    /// Read `len` bytes at `offset` of `page` under a shared lock.
    pub fn read(
        &self,
        txn: &mut Txn,
        page: u64,
        offset: usize,
        len: usize,
    ) -> Result<Vec<u8>, WalError> {
        self.check_bounds(page, offset, len)?;
        let id = PageId(page);
        self.lock_page(txn.id, id, LockMode::Shared)?;
        let mut shard = self.inner.shards.lock(id);
        self.ensure_resident(&mut shard, id)?;
        let p = shard.pool.get(id).expect("resident page");
        Ok(p.read_at(offset, len).to_vec())
    }

    /// Write `data` at `offset` of `page`: X-lock, log a fragment to this
    /// transaction's routed stream, then apply in the buffer pool. The
    /// fragment ticket and the page content move together under one shard
    /// lock, so a concurrent evicting flusher can never see new bytes
    /// with a stale ticket.
    pub fn write(
        &self,
        txn: &mut Txn,
        page: u64,
        offset: usize,
        data: &[u8],
    ) -> Result<(), WalError> {
        self.check_bounds(page, offset, data.len())?;
        let id = PageId(page);
        self.lock_page(txn.id, id, LockMode::Exclusive)?;

        // pre-image under the shard lock (X lock pins the content)
        let (rec, undo_entry, new_lsn) = {
            let mut shard = self.inner.shards.lock(id);
            self.ensure_resident(&mut shard, id)?;
            let p = shard.pool.get(id).expect("resident page");
            let prev_lsn = p.lsn;
            let new_lsn = Lsn(self.inner.next_lsn.fetch_add(1, Ordering::Relaxed));
            match self.inner.cfg.wal.log_mode {
                LogMode::Logical => {
                    let before = p.read_at(offset, data.len()).to_vec();
                    (
                        LogRecord::Update {
                            txn: txn.id,
                            page: id,
                            prev_lsn,
                            new_lsn,
                            offset: offset as u32,
                            before: before.clone(),
                            after: data.to_vec(),
                        },
                        UndoEntry {
                            page: id,
                            offset: offset as u32,
                            before,
                            new_lsn,
                        },
                        new_lsn,
                    )
                }
                LogMode::Physical => {
                    let before = p.payload().to_vec();
                    let mut after = before.clone();
                    after[offset..offset + data.len()].copy_from_slice(data);
                    (
                        LogRecord::Update {
                            txn: txn.id,
                            page: id,
                            prev_lsn,
                            new_lsn,
                            offset: 0,
                            before: before.clone(),
                            after,
                        },
                        UndoEntry {
                            page: id,
                            offset: 0,
                            before,
                            new_lsn,
                        },
                        new_lsn,
                    )
                }
            }
        };

        // ship the fragment to this txn's home log processor
        let stream = txn.home;
        let seq = self.inner.appenders[stream].append(rec)?;
        let high = txn.tickets.entry(stream).or_insert(0);
        *high = (*high).max(seq);
        txn.undo.push(undo_entry);

        // apply + publish the ticket atomically w.r.t. the flusher
        let mut shard = self.inner.shards.lock(id);
        self.ensure_resident(&mut shard, id)?;
        shard.meta.insert(id, (stream, seq));
        let p = shard.pool.get_mut(id).expect("resident page");
        p.write_at(offset, data);
        p.lsn = new_lsn;
        Ok(())
    }

    /// Commit: submit to the group-commit daemon and return a handle the
    /// caller waits on. Read-only transactions resolve immediately.
    pub fn commit(&self, txn: Txn) -> Result<CommitHandle, WalError> {
        let (reply, rx) = sync_channel(1);
        if txn.tickets.is_empty() {
            // read-only fast path: nothing to force — and no ack counter,
            // so `txn.commits_acked` stays paired with the daemon's
            // `group.completions`
            self.inner.release_locks(txn.id);
            self.inner.stats.committed.fetch_add(1, Ordering::Relaxed);
            let _ = reply.send(Ok(()));
            return Ok(CommitHandle::new(rx, None));
        }
        let req = CommitReq {
            txn: txn.id,
            home: txn.home,
            tickets: txn.tickets.into_iter().collect(),
            reply,
        };
        let tx = self.commit_tx.as_ref().expect("pipeline running");
        tx.send(req)
            .map_err(|_| WalError::Storage(StorageError::Protocol("group-commit daemon gone")))?;
        Ok(CommitHandle::new(
            rx,
            Some(self.inner.commits_acked.clone()),
        ))
    }

    /// Abort: walk the undo chain backwards, logging a compensation per
    /// undone update, append the `Abort` record (no force needed), then
    /// release locks.
    pub fn abort(&self, mut txn: Txn) -> Result<(), WalError> {
        let result = self.undo_all(&mut txn);
        self.inner.release_locks(txn.id);
        self.inner.stats.aborted.fetch_add(1, Ordering::Relaxed);
        result
    }

    fn undo_all(&self, txn: &mut Txn) -> Result<(), WalError> {
        let stream = txn.home;
        for entry in txn.undo.drain(..).rev() {
            let clr_lsn = Lsn(self.inner.next_lsn.fetch_add(1, Ordering::Relaxed));
            let rec = LogRecord::Compensation {
                txn: txn.id,
                page: entry.page,
                undoes: entry.new_lsn,
                new_lsn: clr_lsn,
                offset: entry.offset,
                data: entry.before.clone(),
            };
            let seq = self.inner.appenders[stream].append(rec)?;
            let mut shard = self.inner.shards.lock(entry.page);
            self.ensure_resident(&mut shard, entry.page)?;
            shard.meta.insert(entry.page, (stream, seq));
            let p = shard.pool.get_mut(entry.page).expect("resident page");
            p.write_at(entry.offset as usize, &entry.before);
            p.lsn = clr_lsn;
        }
        self.inner.appenders[stream].append(LogRecord::Abort { txn: txn.id })?;
        Ok(())
    }

    /// Run `body` as a transaction with conflict retry: on lock conflict
    /// the transaction aborts, backs off (seeded exponential + jitter),
    /// and retries up to an internal budget before reporting starvation.
    pub fn run_txn<F>(&self, qp: usize, body: F) -> Result<(), WalError>
    where
        F: Fn(&mut ExecCtx<'_>) -> Result<(), WalError>,
    {
        let seed = self.inner.cfg.wal.seed ^ (qp as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut backoff = Backoff::with_bounds(seed, 10, 1_000);
        let t_start = std::time::Instant::now();
        for _ in 0..MAX_RETRIES {
            self.inner.stats.attempts.fetch_add(1, Ordering::Relaxed);
            let mut txn = self.begin(qp);
            let txn_id = txn.id;
            let mut ctx = ExecCtx {
                db: self,
                txn: &mut txn,
            };
            match body(&mut ctx) {
                Ok(()) => match self.commit(txn)?.wait() {
                    Ok(()) => {
                        let us = t_start.elapsed().as_micros() as u64;
                        self.inner.commit_us.record(us);
                        self.inner
                            .obs
                            .emit(EventKind::TxnCommit, txn_id, qp as u64, 0, us);
                        return Ok(());
                    }
                    Err(e) => return Err(e),
                },
                Err(WalError::LockConflict { page, .. }) => {
                    self.abort(txn)?;
                    self.inner
                        .stats
                        .conflict_retries
                        .fetch_add(1, Ordering::Relaxed);
                    let delay = backoff.next_delay();
                    self.inner.obs.emit(
                        EventKind::TxnConflictRetry,
                        txn_id,
                        qp as u64,
                        page.0,
                        delay.as_micros() as u64,
                    );
                    if delay.is_zero() {
                        std::thread::yield_now();
                    } else {
                        std::thread::sleep(delay);
                    }
                }
                Err(e) => {
                    self.abort(txn)?;
                    self.inner.obs.emit(
                        EventKind::TxnAbort,
                        txn_id,
                        qp as u64,
                        0,
                        backoff.attempts() as u64,
                    );
                    return Err(e);
                }
            }
        }
        self.inner.stats.starved.fetch_add(1, Ordering::Relaxed);
        self.inner.obs.emit(
            EventKind::TxnStarved,
            0,
            qp as u64,
            0,
            backoff.attempts() as u64,
        );
        Err(WalError::Storage(StorageError::Protocol(
            "transaction starved: retry budget exhausted",
        )))
    }

    /// A crash-consistent image for [`rmdb_wal::WalDb::recover`].
    ///
    /// Protocol: hold the commit gate (no commit record can become
    /// durable inside the window), snapshot the data disk **first**, then
    /// every log disk. Data-first means any page visible on the data
    /// snapshot had its fragment forced strictly before the log
    /// snapshots (WAL rule holds in the image); the gate means any
    /// durable commit record's fragment forces finished strictly before
    /// the window (commit atomicity holds in the image).
    pub fn crash_image(&self) -> Result<CrashImage, WalError> {
        let _gate = self.inner.gate.lock().expect("commit gate");
        let data = self.inner.data.lock().expect("data disk").disk.snapshot();
        let logs = self
            .inner
            .appenders
            .iter()
            .map(|a| a.snapshot())
            .collect::<Result<Vec<_>, _>>()?;
        Ok(CrashImage { data, logs })
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ExecStats {
        let s = &self.inner.stats;
        ExecStats {
            committed: s.committed.load(Ordering::Relaxed),
            aborted: s.aborted.load(Ordering::Relaxed),
            attempts: s.attempts.load(Ordering::Relaxed),
            conflict_retries: s.conflict_retries.load(Ordering::Relaxed),
            starved: s.starved.load(Ordering::Relaxed),
            wal_forces: s.wal_forces.load(Ordering::Relaxed),
            group_commits: s.group_commits.load(Ordering::Relaxed),
            commits_grouped: s.commits_grouped.load(Ordering::Relaxed),
            max_group_size: s.max_group_size.load(Ordering::Relaxed),
            deadlock_victims: s.deadlock_victims.load(Ordering::Relaxed),
        }
    }

    /// Scheduler wait-queue counters.
    pub fn wait_stats(&self) -> WaitStats {
        self.inner.sched.lock().expect("scheduler").wait_stats()
    }

    /// Buffer-pool hit/miss counters summed over shards.
    pub fn pool_hit_miss(&self) -> (u64, u64) {
        self.inner.shards.hit_miss()
    }

    /// The observability registry the pipeline publishes into (same
    /// registry as [`ExecConfig::obs`]). Counters/histograms of note:
    /// `txn.commits_acked`, `txn.commit_us`, `group.completions`,
    /// `group.batch_size`, `group.dwell_us`, and per-stream
    /// `wal.fragments_enqueued.s{i}` / `wal.fragments_appended.s{i}` /
    /// `wal.forces.s{i}` / `wal.force_us.s{i}`.
    pub fn obs(&self) -> &Registry {
        &self.inner.obs
    }

    /// Quiesce the appender queues: force every stream through its last
    /// issued ticket. A force completes only after all earlier appends
    /// are processed, so after this returns `wal.fragments_appended.s{i}`
    /// has caught up with `wal.fragments_enqueued.s{i}` — the state the
    /// conservation-law assertions need.
    pub fn drain_appenders(&self) -> Result<(), WalError> {
        for appender in &self.inner.appenders {
            appender.force_through(appender.tickets_issued())?;
        }
        Ok(())
    }

    /// Publish the buffer-pool shard counters as gauges and take a
    /// [`MetricsSnapshot`]. Pool counters live as plain integers inside
    /// the shard mutexes (storage stays observability-free), so they are
    /// copied out here rather than updated on the hot path.
    pub fn metrics(&self) -> MetricsSnapshot {
        let obs = &self.inner.obs;
        let (mut hits, mut misses, mut lookups, mut evictions) = (0u64, 0u64, 0u64, 0u64);
        for s in self.inner.shards.shard_stats() {
            obs.gauge(&format!("pool.s{}.hits", s.shard)).set(s.hits);
            obs.gauge(&format!("pool.s{}.misses", s.shard))
                .set(s.misses);
            obs.gauge(&format!("pool.s{}.lookups", s.shard))
                .set(s.lookups);
            obs.gauge(&format!("pool.s{}.evictions", s.shard))
                .set(s.evictions);
            hits += s.hits;
            misses += s.misses;
            lookups += s.lookups;
            evictions += s.evictions;
        }
        obs.gauge("pool.hits").set(hits);
        obs.gauge("pool.misses").set(misses);
        obs.gauge("pool.lookups").set(lookups);
        obs.gauge("pool.evictions").set(evictions);
        obs.snapshot()
    }

    /// Stop the daemon and the appender threads, surfacing any error the
    /// pipeline hit. The database is consumed (its disks die with it —
    /// take a [`ExecDb::crash_image`] first to keep the durable state).
    pub fn shutdown(mut self) -> Result<(), WalError> {
        self.stop_threads();
        Ok(())
    }

    fn stop_threads(&mut self) {
        self.commit_tx = None; // daemon exits on channel close
        if let Some(daemon) = self.daemon.take() {
            let _ = daemon.join();
        }
        // appender threads exit via LogAppender::drop when Inner drops
    }
}

impl Drop for ExecDb {
    fn drop(&mut self) {
        self.stop_threads();
    }
}

/// Transaction scope handed to [`ExecDb::run_txn`] bodies.
pub struct ExecCtx<'a> {
    db: &'a ExecDb,
    txn: &'a mut Txn,
}

impl ExecCtx<'_> {
    /// Transaction id.
    pub fn id(&self) -> u64 {
        self.txn.id
    }

    /// Read under a shared lock.
    pub fn read(&mut self, page: u64, offset: usize, len: usize) -> Result<Vec<u8>, WalError> {
        self.db.read(self.txn, page, offset, len)
    }

    /// Write under an exclusive lock.
    pub fn write(&mut self, page: u64, offset: usize, data: &[u8]) -> Result<(), WalError> {
        self.db.write(self.txn, page, offset, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmdb_wal::WalDb;

    fn small_cfg() -> ExecConfig {
        ExecConfig {
            wal: WalConfig {
                data_pages: 64,
                pool_frames: 16,
                log_streams: 3,
                log_frames: 4096,
                seed: 42,
                ..WalConfig::default()
            },
            pool_shards: 4,
            ..ExecConfig::default()
        }
    }

    #[test]
    fn single_txn_commits_and_recovers() {
        let db = ExecDb::new(small_cfg());
        let mut t = db.begin(0);
        db.write(&mut t, 3, 0, b"hello").unwrap();
        db.commit(t).unwrap().wait().unwrap();
        let image = db.crash_image().unwrap();
        let (mut recovered, report) = WalDb::recover(image, small_cfg().wal).unwrap();
        assert_eq!(report.redone_updates, 1);
        let t2 = recovered.begin();
        assert_eq!(recovered.read(t2, 3, 0, 5).unwrap(), b"hello");
    }

    #[test]
    fn abort_restores_before_image() {
        let db = ExecDb::new(small_cfg());
        let mut t = db.begin(0);
        db.write(&mut t, 1, 0, b"aaaa").unwrap();
        db.commit(t).unwrap().wait().unwrap();
        let mut t = db.begin(0);
        db.write(&mut t, 1, 0, b"bbbb").unwrap();
        db.abort(t).unwrap();
        let mut t = db.begin(0);
        assert_eq!(db.read(&mut t, 1, 0, 4).unwrap(), b"aaaa");
        db.commit(t).unwrap().wait().unwrap();
    }

    #[test]
    fn uncommitted_txn_invisible_after_crash() {
        let db = ExecDb::new(small_cfg());
        let mut t1 = db.begin(0);
        db.write(&mut t1, 2, 0, b"keep").unwrap();
        db.commit(t1).unwrap().wait().unwrap();
        let mut t2 = db.begin(1);
        db.write(&mut t2, 5, 0, b"lose").unwrap();
        // no commit for t2 — crash now
        let image = db.crash_image().unwrap();
        let (mut recovered, _) = WalDb::recover(image, small_cfg().wal).unwrap();
        let t = recovered.begin();
        assert_eq!(recovered.read(t, 2, 0, 4).unwrap(), b"keep");
        assert_eq!(recovered.read(t, 5, 0, 4).unwrap(), vec![0u8; 4]);
    }

    #[test]
    fn eviction_pressure_preserves_wal_rule() {
        // pool far smaller than the working set forces steady evictions
        let mut cfg = small_cfg();
        cfg.wal.pool_frames = 4;
        cfg.pool_shards = 2;
        let db = ExecDb::new(cfg.clone());
        for round in 0..4u8 {
            // one transaction touching 8× the pool: evictions must flush
            // pages whose fragments are appended but not yet forced
            let mut t = db.begin(0);
            for page in 0..32u64 {
                db.write(&mut t, page, 0, &[round; 8]).unwrap();
            }
            db.commit(t).unwrap().wait().unwrap();
        }
        assert!(db.stats().wal_forces > 0, "evictions must have forced");
        let image = db.crash_image().unwrap();
        let (mut recovered, _) = WalDb::recover(image, cfg.wal).unwrap();
        let t = recovered.begin();
        for page in 0..32u64 {
            assert_eq!(recovered.read(t, page, 0, 8).unwrap(), vec![3u8; 8]);
        }
    }

    #[test]
    fn concurrent_writers_group_commit() {
        let db = Arc::new(ExecDb::new(small_cfg()));
        crossbeam::thread::scope(|s| {
            for w in 0..4usize {
                let db = Arc::clone(&db);
                s.spawn(move |_| {
                    for i in 0..25u64 {
                        let page = (w as u64) * 16 + (i % 16);
                        db.run_txn(w, |ctx| ctx.write(page, 0, &i.to_le_bytes()))
                            .unwrap();
                    }
                });
            }
        })
        .unwrap();
        let stats = db.stats();
        assert_eq!(stats.committed, 100);
        assert!(stats.group_commits <= stats.commits_grouped);
    }

    #[test]
    fn deadlock_is_broken_and_both_txns_finish() {
        let db = Arc::new(ExecDb::new(small_cfg()));
        // classic crossover: worker 0 writes P then Q, worker 1 writes Q
        // then P — must terminate via victimisation + retry
        crossbeam::thread::scope(|s| {
            for (w, (a, b)) in [(7u64, 9u64), (9, 7)].into_iter().enumerate() {
                let db = Arc::clone(&db);
                s.spawn(move |_| {
                    for i in 0..20u64 {
                        db.run_txn(w, |ctx| {
                            ctx.write(a, 0, &i.to_le_bytes())?;
                            ctx.write(b, 8, &i.to_le_bytes())
                        })
                        .unwrap();
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(db.stats().committed, 40);
    }
}
