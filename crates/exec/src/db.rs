//! [`ExecDb`] — the concurrent transaction pipeline.
//!
//! This is the paper's machine organisation with the roles mapped onto
//! real threads instead of a simulated event loop:
//!
//! * **query processors** — the caller's worker threads, each running
//!   transactions against `&ExecDb`;
//! * **log processors** — one [`LogAppender`] thread per log stream,
//!   draining a bounded fragment channel into 4 KB log pages;
//! * **back-end controller scheduler** — a [`Scheduler`] behind its own
//!   mutex, with waiting workers parked on per-transaction condvar slots;
//! * **back-end controller commit path** — the group-commit daemon
//!   ([`crate::group`]), batching commit forces across streams;
//! * **supervisor** — a health-check thread ([`crate::supervisor`])
//!   probing each log processor and quarantining failed ones.
//!
//! The monolithic engine mutex of `rmdb_wal::SharedWal` is decomposed
//! into fine-grained locks: the scheduler mutex (lock table only), a
//! sharded buffer pool (page content + per-page log tickets, one mutex
//! per shard), one data-disk mutex (flush serialisation), and one tiny
//! sender mutex per log stream (ticket issue). No lock is held across a
//! blocking wait on another worker; waits on the appender threads are
//! safe because appenders never take engine locks.
//!
//! ## Commit-ordering invariant
//!
//! A transaction's `Commit` record is appended to its home stream only
//! after every stream holding one of its fragments has confirmed a force
//! covering that fragment's ticket. Together with the crash-image
//! protocol (commit gate + data-before-logs snapshot order, see
//! [`ExecDb::crash_image`]), this guarantees any crash image containing
//! a durable `Commit{t}` also contains every fragment of `t` — so
//! [`rmdb_wal::WalDb::recover`] replays exactly the committed state.
//!
//! ## Failover
//!
//! A log stream whose device fails persistently (or whose thread dies or
//! wedges) is **quarantined**: the [`Selector`] stops routing new
//! transactions to it, and in-flight transactions **reroute** the
//! volatile tail of their fragments — everything above the dead stream's
//! durable high-water ticket — to a surviving stream, re-pinning each
//! affected page's WAL-rule entry as they go
//! ([`Inner::reroute_if_needed`]). The durable prefix stays where it is:
//! recovery scans the quarantined stream's disk like any other and
//! deduplicates rerouted fragments by their globally unique LSN.
//! Commits acked before the failure therefore survive it. When fewer
//! than [`ExecConfig::min_live_streams`] streams survive, the pipeline
//! degrades: [`ExecDb::run_txn`] sheds load with a typed
//! [`ExecError::Degraded`] instead of queueing work that cannot commit.
//!
//! ## Membership churn
//!
//! Quarantine is no longer a one-way door. [`ExecDb::rejoin_stream`]
//! readmits a recovered device: the dead incarnation's thread is
//! retired, the vaulted device probed through its fault injector, the
//! durable prefix revalidated by reopening the stream (torn-tail cut +
//! epoch bump), and a fresh appender spawned that *inherits the ticket
//! space* — the durable prefix stays forced, while tickets issued but
//! never forced by the dead incarnation become an **orphan range** that
//! can never read as durable again ([`LogAppender::orphaned`]). Owners
//! of orphaned fragments re-append them under new tickets via the same
//! reroute path used for dead streams; recovery deduplicates any copies
//! by LSN exactly as it does for rerouted fragments. A device that will
//! never return is swapped out by [`ExecDb::replace_stream`], which
//! archives the old platter for recovery and spawns the successor on a
//! blank one. [`ExecDb::park_stream`] / [`ExecDb::unpark_stream`]
//! resize the *serving* fleet without touching durability (a parked
//! appender keeps answering forces). Every membership change recomputes
//! degraded mode from the live count — the latch clears when the fleet
//! recovers.

use crate::appender::{LogAppender, TicketInheritance};
use crate::error::{AppenderError, ExecError};
use crate::group::{run_daemon, CommitHandle, CommitReq};
use crate::sync::lock_ok;
use rmdb_mvcc::{Mvcc, Snapshot};
use rmdb_obs::{Counter, EventKind, Histogram, MetricsSnapshot, Registry};
use rmdb_storage::Lsn;
use rmdb_storage::{
    read_page_retry, write_page_verified, Disk, FaultHandle, FaultInjector, FaultPlan, Page,
    PageId, ShardedPool, StorageError, PAYLOAD_SIZE,
};
use rmdb_wal::db::{LogMode, LoggingPolicy, WalConfig};
use rmdb_wal::lock::LockMode;
use rmdb_wal::record::{LogRecord, LogicalOp, DECISION_COST, DECISION_FORCED};
use rmdb_wal::scheduler::{Decision, Scheduler, WaitStats};
use rmdb_wal::select::Selector;
use rmdb_wal::stream::{LogStream, IO_RETRIES};
use rmdb_wal::{Backoff, CrashImage, WalError};
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Retries before a transaction is declared starved.
const MAX_RETRIES: usize = 1000;
/// Safety valve on lock waits; healthy runs never hit it.
const LOCK_WAIT_TIMEOUT: Duration = Duration::from_secs(10);

/// Pipeline configuration: the WAL knobs plus the concurrency shape.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Underlying WAL layout (data pages, streams, log mode, seed, …).
    /// `ckpt_every_commits` is ignored — the pipeline does not
    /// checkpoint; recovery scans the distributed logs from the start.
    pub wal: WalConfig,
    /// Buffer-pool shards (page → shard by multiplicative hash).
    pub pool_shards: usize,
    /// Bounded fragment-channel depth per log appender (backpressure).
    pub appender_queue: usize,
    /// Bounded commit-channel depth (backpressure on committers).
    pub commit_queue: usize,
    /// Max transactions the daemon folds into one group commit.
    pub max_group: usize,
    /// Group-commit dwell: after the first commit of a batch arrives,
    /// the daemon lingers up to this long for stragglers before forcing.
    /// Trades a little single-transaction latency for batch depth under
    /// load (the paper's group-commit knob, expressed as a window).
    pub group_dwell_us: u64,
    /// Modeled log-device service time per force, in microseconds. The
    /// paper's log disks are rotational — a force is never free; this is
    /// what makes sharing forces (group commit) worth anything. Zero
    /// (the default) models an ideal device, which unit tests want.
    pub force_delay_us: u64,
    /// Minimum surviving log streams below which the pipeline degrades:
    /// `run_txn` sheds load with [`ExecError::Degraded`] instead of
    /// committing against a fleet too small to be safe. Default 1 — run
    /// as long as any stream lives.
    pub min_live_streams: usize,
    /// Supervisor probe interval, microseconds.
    pub health_interval_us: u64,
    /// Supervisor verdict deadline: an appender whose heartbeat has not
    /// advanced for this long while it has work pending is declared
    /// stalled and quarantined.
    pub force_deadline_ms: u64,
    /// [`CommitHandle::wait`] deadline before it gives up with a typed
    /// [`ExecError::Timeout`].
    pub commit_timeout_ms: u64,
    /// Producer-side wait deadline per appender interaction (force
    /// waits, snapshot replies).
    pub append_wait_ms: u64,
    /// Membership-manager probe period for quarantined streams, in
    /// milliseconds. When non-zero the supervisor periodically attempts
    /// [`ExecDb::rejoin_stream`] on every quarantined stream; a device
    /// whose fault has cleared (or was cleared by an operator) rejoins
    /// automatically, one that is still broken fails the probe and
    /// stays quarantined until the next period. Zero (the default)
    /// disables auto-rejoin — failed streams stay out until readmitted
    /// explicitly.
    pub rejoin_probe_ms: u64,
    /// Let the supervisor resize the serving fleet under load: park the
    /// highest live stream after a sustained idle spell, unpark parked
    /// streams when appender backlog builds. Parking never shrinks the
    /// serving fleet below `min_live_streams` (or 1). Off by default.
    pub autoscale: bool,
    /// Observability registry the pipeline publishes into. Cloneable and
    /// Arc-backed, so a bench can hand several databases the same
    /// registry and read cumulative metrics across all of them. Defaults
    /// to a fresh private registry.
    pub obs: Registry,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            wal: WalConfig::default(),
            pool_shards: 8,
            appender_queue: 1024,
            commit_queue: 1024,
            max_group: 64,
            group_dwell_us: 40,
            force_delay_us: 0,
            min_live_streams: 1,
            health_interval_us: 1_000,
            force_deadline_ms: 1_000,
            commit_timeout_ms: 30_000,
            append_wait_ms: 30_000,
            rejoin_probe_ms: 0,
            autoscale: false,
            obs: Registry::new(),
        }
    }
}

/// Counter snapshot (all monotonic since construction).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Transactions durably committed (incl. read-only fast path).
    pub committed: u64,
    /// Transactions aborted (voluntary, victim, or failed commit).
    pub aborted: u64,
    /// `run_txn` attempts (first tries + retries).
    pub attempts: u64,
    /// Retries caused by lock conflicts / deadlock victimisation.
    pub conflict_retries: u64,
    /// Transactions that exhausted their retry budget.
    pub starved: u64,
    /// Fragment forces triggered by dirty-page eviction (WAL rule).
    pub wal_forces: u64,
    /// Group-commit batches flushed by the daemon.
    pub group_commits: u64,
    /// Transactions that went through the daemon (batch members).
    pub commits_grouped: u64,
    /// Largest batch the daemon flushed.
    pub max_group_size: u64,
    /// Waiters cancelled as deadlock victims.
    pub deadlock_victims: u64,
}

#[derive(Default)]
pub(crate) struct Stats {
    pub committed: AtomicU64,
    pub aborted: AtomicU64,
    pub attempts: AtomicU64,
    pub conflict_retries: AtomicU64,
    pub starved: AtomicU64,
    pub wal_forces: AtomicU64,
    pub group_commits: AtomicU64,
    pub commits_grouped: AtomicU64,
    pub max_group_size: AtomicU64,
    pub deadlock_victims: AtomicU64,
}

/// Outcome delivered to a parked lock waiter.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Outcome {
    /// The scheduler granted the lock; the waiter now holds it.
    Granted,
    /// The waiter was cancelled as a deadlock victim; it must abort.
    Victim,
}

/// One parked worker's wake-up slot.
struct Slot {
    state: Mutex<Option<Outcome>>,
    cv: Condvar,
}

/// Per-transaction condvar slots. Signals and waits may race (a grant
/// can land before the waiter parks), so both sides get-or-create.
#[derive(Default)]
struct WaitTable {
    slots: Mutex<HashMap<u64, Arc<Slot>>>,
}

impl WaitTable {
    fn slot(&self, txn: u64) -> Arc<Slot> {
        let mut slots = lock_ok(&self.slots);
        Arc::clone(slots.entry(txn).or_insert_with(|| {
            Arc::new(Slot {
                state: Mutex::new(None),
                cv: Condvar::new(),
            })
        }))
    }

    /// Deliver `outcome` to `txn`'s slot. Callers hold the scheduler
    /// mutex, making signal/timeout interleavings serialisable.
    fn signal(&self, txn: u64, outcome: Outcome) {
        let slot = self.slot(txn);
        *lock_ok(&slot.state) = Some(outcome);
        slot.cv.notify_all();
    }

    /// Consume a delivered outcome without blocking (timeout re-check).
    fn take(&self, txn: u64) -> Option<Outcome> {
        let slot = self.slot(txn);
        let out = lock_ok(&slot.state).take();
        if out.is_some() {
            lock_ok(&self.slots).remove(&txn);
        }
        out
    }

    /// Park until an outcome arrives; `None` on timeout (slot retained —
    /// the caller resolves the race under the scheduler mutex).
    fn wait(&self, txn: u64) -> Option<Outcome> {
        let slot = self.slot(txn);
        let mut state = lock_ok(&slot.state);
        let deadline = Instant::now() + LOCK_WAIT_TIMEOUT;
        loop {
            if let Some(out) = state.take() {
                drop(state);
                lock_ok(&self.slots).remove(&txn);
                return Some(out);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (next, _) = slot
                .cv
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            state = next;
        }
    }
}

/// An undone-able update. Travels with the transaction: worker-local
/// while the body runs, handed to the group-commit daemon at submit so a
/// commit that fails mid-batch can be rolled back daemon-side.
pub(crate) struct UndoEntry {
    page: PageId,
    offset: u32,
    before: Vec<u8>,
    new_lsn: Lsn,
}

/// One not-yet-committed fragment, retained so failover can re-append it
/// to a surviving stream if its original stream dies. Fragments at or
/// below the dead stream's durable high-water ticket never move — their
/// stream's disk outlives its thread and recovery reads them from it.
struct PendingFrag {
    stream: usize,
    seq: u64,
    page: PageId,
    rec: LogRecord,
}

/// Deferred-capture state for a transaction running under
/// [`LoggingPolicy::Command`] or [`LoggingPolicy::Adaptive`]: nothing is
/// appended while the body runs. The fragments each write *would* have
/// appended are retained for a possible commit-time spill, the logical
/// ops for the command record, and every written page is pinned in the
/// pool so the steal-policy flusher can never put un-logged bytes on the
/// data disk. Deferred losers log nothing at all.
#[derive(Default)]
struct ExecDeferred {
    /// Retained after-image fragments, in write order (the spill path).
    frags: Vec<(PageId, LogRecord)>,
    /// Logical ops, in execution order (the command-record path).
    ops: Vec<LogicalOp>,
    /// Distinct written pages, each holding one pool pin.
    pages: BTreeSet<PageId>,
    /// Pages read under shared locks — the command record's read set,
    /// which the replay DAG turns into write→read precedence edges.
    reads: BTreeSet<PageId>,
    /// Encoded bytes the retained fragments would cost: the physical
    /// side of the commit-time cost comparison.
    phys_bytes: usize,
}

/// An in-flight transaction, owned by the worker driving it.
pub struct Txn {
    id: u64,
    /// Home stream for the commit/abort record.
    home: usize,
    /// Per-stream high-water fragment tickets.
    tickets: HashMap<usize, u64>,
    undo: Vec<UndoEntry>,
    /// Volatile fragments, kept for failover rerouting.
    pending: Vec<PendingFrag>,
    /// Deferred-capture state; `Some` exactly while the logging policy
    /// is still deciding (a spill resets it to `None` for good).
    deferred: Option<ExecDeferred>,
}

impl Txn {
    /// Transaction id (monotonic; doubles as age for victim selection).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Current home stream (may change if the original home dies).
    pub fn home(&self) -> usize {
        self.home
    }
}

/// What a successful [`ExecDb::rejoin_stream`] /
/// [`ExecDb::replace_stream`] did.
#[derive(Debug, Clone)]
pub struct RejoinReport {
    /// The readmitted stream.
    pub stream: usize,
    /// `true` for [`ExecDb::replace_stream`] (old platter archived, new
    /// device blank), `false` for a same-device rejoin.
    pub replaced_device: bool,
    /// Records revalidated on the durable prefix (0 for a replacement —
    /// its prefix lives in the archive, not on the new device).
    pub durable_records: u64,
    /// Torn log pages the prefix validation cut away.
    pub corrupt_pages: u64,
    /// Tickets orphaned across all of this stream's incarnations:
    /// issued but never forced, lost with a dead incarnation's volatile
    /// tail. Owners re-append them under new tickets.
    pub orphaned_tickets: u64,
    /// Serving streams after readmission.
    pub live_streams: usize,
    /// Wall-clock from the rejoin request to the stream serving again.
    pub catchup_us: u64,
}

/// Data disk plus the doublewrite cursor it protects.
struct DataState {
    disk: Disk,
    dw_cursor: u64,
}

/// The appender fleet with replaceable membership: one slot per stream,
/// each holding the current incarnation behind its own tiny mutex so a
/// rejoin can swap in a fresh appender while producers keep cloning
/// handles. Producers hold an `Arc` across an interaction; a handle that
/// goes stale mid-call fails with a quarantine/orphan error and the
/// retry re-resolves through the slot.
pub(crate) struct Fleet {
    slots: Vec<Mutex<Arc<LogAppender>>>,
}

impl Fleet {
    fn new(appenders: Vec<LogAppender>) -> Self {
        Fleet {
            slots: appenders
                .into_iter()
                .map(|a| Mutex::new(Arc::new(a)))
                .collect(),
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.slots.len()
    }

    /// The current incarnation serving `stream`.
    pub(crate) fn get(&self, stream: usize) -> Arc<LogAppender> {
        Arc::clone(&lock_ok(&self.slots[stream]))
    }

    /// Swap in a fresh incarnation; returns the retired one (kept alive
    /// by any producer still mid-interaction with it).
    fn replace(&self, stream: usize, next: LogAppender) -> Arc<LogAppender> {
        std::mem::replace(&mut *lock_ok(&self.slots[stream]), Arc::new(next))
    }
}

/// Everything shared between workers, the appenders, the daemon, and
/// the supervisor.
pub(crate) struct Inner {
    pub(crate) cfg: ExecConfig,
    sched: Mutex<Scheduler>,
    waits: WaitTable,
    /// Page cache, sharded; shard meta maps page → `(stream, ticket)` of
    /// its latest fragment (the WAL rule's "which log holds this page's
    /// fragment" table from the paper's back-end controller).
    shards: ShardedPool<HashMap<PageId, (usize, u64)>>,
    data: Mutex<DataState>,
    pub(crate) appenders: Fleet,
    selector: Mutex<Selector>,
    /// Serialises membership changes (rejoin, replace, park, unpark) so
    /// two probes cannot hand the same vaulted device to two incarnations.
    membership: Mutex<()>,
    /// Streams taken out of routing by scale-down, per stream. Parked is
    /// *not* quarantined: the appender keeps running and serving forces
    /// for already-issued tickets; the selector just stops routing new
    /// work at it.
    parked: Vec<AtomicBool>,
    /// Platters archived by [`ExecDb::replace_stream`]: the durable
    /// prefix of every device that was swapped out rather than rejoined.
    /// [`ExecDb::crash_image`] appends them so recovery still merges the
    /// commits they hold.
    archived_logs: Mutex<Vec<Disk>>,
    /// Commit gate: held for every commit-record append + home force and
    /// for the whole of [`ExecDb::crash_image`].
    pub(crate) gate: Mutex<()>,
    next_txn: AtomicU64,
    next_lsn: AtomicU64,
    /// `live < min_live_streams`, recomputed on every membership change
    /// ([`Inner::recompute_degraded`]) — clears when the fleet recovers.
    degraded: AtomicBool,
    pub(crate) stats: Stats,
    /// Shared observability registry (see [`ExecConfig::obs`]).
    pub(crate) obs: Registry,
    /// Worker-side commit acks (paired with the daemon's
    /// `group.completions`).
    commits_acked: Counter,
    /// End-to-end `run_txn` commit latency, µs.
    commit_us: Histogram,
    /// The versioned buffer pool + snapshot registry: the lock-free read
    /// path beside the locked one. The group-commit daemon is its single
    /// publisher; [`ExecDb::run_ro_txn`] is its consumer.
    pub(crate) mvcc: Mvcc,
    /// Read-only snapshot transactions completed.
    ro_txns: Counter,
    /// End-to-end `run_ro_txn` latency, µs.
    ro_us: Histogram,
}

impl Inner {
    /// Release `txn`'s locks and wake every waiter the release granted.
    /// Called by workers (abort) and the daemon (commit durable).
    /// Poison-tolerant: on the release path the lock table must keep
    /// draining even if another worker panicked, or the whole pipeline
    /// wedges behind the dead transaction's locks.
    pub(crate) fn release_locks(&self, txn: u64) {
        let mut sched = self.sched.lock().unwrap_or_else(|e| e.into_inner());
        for (granted, _page) in sched.release_all(txn) {
            self.waits.signal(granted, Outcome::Granted);
        }
    }

    /// Log streams not yet quarantined.
    pub(crate) fn live_streams(&self) -> usize {
        lock_ok(&self.selector).live_count()
    }

    /// Whether `stream` has been quarantined.
    pub(crate) fn is_stream_dead(&self, stream: usize) -> bool {
        lock_ok(&self.selector).is_dead(stream)
    }

    /// A surviving stream for rerouted work, if any. The salt feeds the
    /// policy's qp argument too, so mod-based policies spread failover
    /// traffic (CLR reroutes, undo-path re-homes) across the live fleet
    /// instead of always walking forward from stream 0.
    fn pick_live(&self, salt: u64) -> Option<usize> {
        let mut sel = lock_ok(&self.selector);
        if sel.live_count() == 0 {
            return None;
        }
        Some(sel.pick(salt as usize, salt))
    }

    /// Quarantine `stream`: take it out of routing, fail its producers
    /// fast, and record the failover. Idempotent — concurrent detectors
    /// (worker append errors, daemon force errors, supervisor probes)
    /// may all report the same stream; only the first wins.
    pub(crate) fn quarantine_stream(&self, stream: usize, error: &AppenderError) {
        let live = {
            let mut sel = lock_ok(&self.selector);
            if sel.is_dead(stream) {
                return;
            }
            sel.mark_dead(stream);
            sel.live_count()
        };
        self.obs.emit(
            EventKind::FailoverStarted,
            0,
            stream as u64,
            0,
            error.class_ordinal(),
        );
        self.appenders.get(stream).quarantine();
        self.obs.counter("failover.quarantined").inc();
        self.obs
            .counter(&format!("failover.quarantined.{}", error.class()))
            .inc();
        self.obs.emit(
            EventKind::StreamQuarantined,
            0,
            stream as u64,
            0,
            live as u64,
        );
        self.recompute_degraded();
    }

    /// Recompute degraded mode from the current live count and publish
    /// the gauge. Every membership change (quarantine, rejoin, replace,
    /// park, unpark) funnels through here, so degraded mode is always
    /// `live < min_live_streams` — no one-way latch.
    pub(crate) fn recompute_degraded(&self) -> usize {
        let live = self.live_streams();
        self.degraded
            .store(live < self.cfg.min_live_streams, Ordering::Release);
        self.obs.gauge("failover.live_streams").set(live as u64);
        live
    }

    /// Classify an error from an appender interaction; quarantine the
    /// stream when the failure class warrants it.
    ///
    /// Guarded against stale handles: after a rejoin, a producer still
    /// holding the retired incarnation's `Arc` can report that
    /// incarnation's sticky error. The verdict is confirmed against the
    /// *current* slot before convicting — a healthy successor absorbs
    /// the stale report. `Stalled` always convicts (a probe cannot see
    /// a wedged I/O; a mistaken conviction is undone by the next rejoin
    /// probe).
    pub(crate) fn note_appender_failure(&self, e: &ExecError) {
        if let ExecError::Appender { stream, error } = e {
            if !error.is_fatal_to_stream() {
                return;
            }
            if *stream < self.appenders.len() {
                let probe = self.appenders.get(*stream).probe();
                let confirmed = match error {
                    AppenderError::Persistent(_) => probe.error.is_some(),
                    AppenderError::ThreadDeath(_) => !probe.alive,
                    _ => true,
                };
                if !confirmed {
                    return;
                }
            }
            self.quarantine_stream(*stream, error);
        }
    }

    /// Whether `stream` is parked (scale-down, not failure).
    pub(crate) fn is_parked(&self, stream: usize) -> bool {
        self.parked[stream].load(Ordering::Acquire)
    }

    /// Parked stream count.
    pub(crate) fn parked_count(&self) -> usize {
        self.parked
            .iter()
            .filter(|p| p.load(Ordering::Acquire))
            .count()
    }

    /// The ticket space the successor of `old` inherits: the durable
    /// prefix stays forced, everything issued-but-unforced becomes a new
    /// orphan range, and earlier incarnations' orphan ranges carry over.
    fn inheritance_from(old: &LogAppender) -> TicketInheritance {
        let issued = old.tickets_issued();
        let forced = old.forced_high();
        let mut orphans = old.orphan_ranges().to_vec();
        if issued > forced {
            orphans.push((forced, issued));
        }
        TicketInheritance {
            next_seq: issued + 1,
            forced,
            orphans,
        }
    }

    fn spawn_successor(
        &self,
        stream: usize,
        log: LogStream,
        inherit: TicketInheritance,
    ) -> LogAppender {
        LogAppender::spawn_rejoined(
            log,
            self.cfg.appender_queue,
            Duration::from_micros(self.cfg.force_delay_us),
            &self.obs,
            stream,
            Duration::from_millis(self.cfg.append_wait_ms.max(1)),
            inherit,
        )
    }

    /// Validate a rejoin/replace target under the membership lock: must
    /// exist, be quarantined (selector-dead), and not merely parked.
    fn check_rejoinable(&self, stream: usize) -> Result<(), ExecError> {
        if stream >= self.appenders.len() {
            return Err(ExecError::Rejoin {
                stream,
                reason: "no such stream".into(),
            });
        }
        if !self.is_stream_dead(stream) {
            return Err(ExecError::Rejoin {
                stream,
                reason: "stream is live".into(),
            });
        }
        if self.is_parked(stream) {
            return Err(ExecError::Rejoin {
                stream,
                reason: "stream is parked, not quarantined (unpark it)".into(),
            });
        }
        Ok(())
    }

    /// Readmission bookkeeping shared by rejoin and replace: swap the
    /// fleet slot, clear the selector dead bit, publish the event and
    /// metrics, and un-latch degraded mode — in that order. The slot
    /// swap comes first so no producer routed by `mark_live` can reach
    /// the retired handle through the slot; degraded clears last so load
    /// is shed until the stream can actually serve.
    fn readmit(&self, stream: usize, successor: LogAppender, t0: Instant) -> (usize, u64) {
        let _retired = self.appenders.replace(stream, successor);
        let live = {
            let mut sel = lock_ok(&self.selector);
            sel.mark_live(stream);
            sel.live_count()
        };
        let catchup_us = t0.elapsed().as_micros() as u64;
        self.obs.counter("failover.rejoins").inc();
        self.obs.histogram("failover.catchup_us").record(catchup_us);
        self.obs
            .emit(EventKind::StreamRejoined, 0, stream as u64, 0, live as u64);
        self.recompute_degraded();
        (live, catchup_us)
    }

    /// Readmit a quarantined stream on its own (recovered) device.
    ///
    /// Protocol, in order: **retire** the dead incarnation's thread (its
    /// vault guard deposits the device even if it panicked); **probe**
    /// the vaulted device *through its fault injector* — a still-broken
    /// device fails here and the stream stays vaulted for the next
    /// probe; **revalidate** the durable prefix by reopening the stream
    /// on the honest platter (injector detached — the probe already
    /// vouched for the device and validation I/O must not be refused by
    /// a fault plan scheduled for later), which cuts any torn tail
    /// record and bumps the write epoch; re-attach the injector so
    /// future faults quarantine correctly; **spawn** a successor
    /// appender inheriting the ticket space; then [`Inner::readmit`].
    pub(crate) fn rejoin_stream(&self, stream: usize) -> Result<RejoinReport, ExecError> {
        let _membership = lock_ok(&self.membership);
        self.check_rejoinable(stream)?;
        let t0 = Instant::now();
        let old = self.appenders.get(stream);
        old.retire().map_err(|e| ExecError::Rejoin {
            stream,
            reason: format!("retire: {e}"),
        })?;
        old.probe_vaulted_device().map_err(|e| ExecError::Rejoin {
            stream,
            reason: format!("device probe: {e}"),
        })?;
        let inherit = Self::inheritance_from(&old);
        let recovered = old.take_vaulted().map_err(|e| ExecError::Rejoin {
            stream,
            reason: format!("vault hand-off: {e}"),
        })?;
        let mut disk = recovered.into_disk();
        let faults = disk.detach_faults();
        let mut reopened = match LogStream::open(disk) {
            Ok(s) => s,
            // Unreachable after a successful probe (the platter is
            // injector-free here), but if it ever fires the device is
            // gone for good: report it — replace_stream is the way out.
            Err(e) => {
                return Err(ExecError::Rejoin {
                    stream,
                    reason: format!("durable-prefix validation failed: {e}"),
                })
            }
        };
        let (records, stats) = reopened.scan_with_stats();
        let durable_records = records.len() as u64;
        if let Some(handle) = faults {
            reopened.attach_faults(handle);
        }
        let orphaned_tickets = inherit.orphans.iter().map(|&(lo, hi)| hi - lo).sum();
        let successor = self.spawn_successor(stream, reopened, inherit);
        let (live, catchup_us) = self.readmit(stream, successor, t0);
        Ok(RejoinReport {
            stream,
            replaced_device: false,
            durable_records,
            corrupt_pages: stats.corrupt_pages,
            orphaned_tickets,
            live_streams: live,
            catchup_us,
        })
    }

    /// Swap a quarantined stream onto a brand-new device. The old
    /// platter's durable prefix is archived (snapshotted past the
    /// injector) so [`ExecDb::crash_image`] — and therefore recovery —
    /// still merges the commits it holds; the successor appender starts
    /// on a blank platter but inherits the ticket space, so the durable
    /// prefix keeps reading as forced and the unforced tail as orphaned.
    /// For devices that will never come back.
    pub(crate) fn replace_stream(&self, stream: usize) -> Result<RejoinReport, ExecError> {
        let _membership = lock_ok(&self.membership);
        self.check_rejoinable(stream)?;
        let t0 = Instant::now();
        let old = self.appenders.get(stream);
        old.retire().map_err(|e| ExecError::Rejoin {
            stream,
            reason: format!("retire: {e}"),
        })?;
        let inherit = Self::inheritance_from(&old);
        let recovered = old.take_vaulted().map_err(|e| ExecError::Rejoin {
            stream,
            reason: format!("vault hand-off: {e}"),
        })?;
        let archived = recovered.into_disk().snapshot();
        lock_ok(&self.archived_logs).push(archived);
        let orphaned_tickets = inherit.orphans.iter().map(|&(lo, hi)| hi - lo).sum();
        let fresh = self
            .cfg
            .wal
            .backend
            .provision(self.cfg.wal.log_frames)
            .and_then(LogStream::create_on)
            .map_err(|e| ExecError::Rejoin {
                stream,
                reason: format!("provision replacement platter: {e}"),
            })?;
        let successor = self.spawn_successor(stream, fresh, inherit);
        let (live, catchup_us) = self.readmit(stream, successor, t0);
        Ok(RejoinReport {
            stream,
            replaced_device: true,
            durable_records: 0,
            corrupt_pages: 0,
            orphaned_tickets,
            live_streams: live,
            catchup_us,
        })
    }

    /// Scale-down: take a healthy stream out of routing. Its appender
    /// keeps running (forces against already-issued tickets still
    /// serve); only new work stops arriving. Refuses to shrink the
    /// serving fleet below `min_live_streams` (or 1).
    pub(crate) fn park_stream(&self, stream: usize) -> Result<usize, ExecError> {
        let _membership = lock_ok(&self.membership);
        if stream >= self.appenders.len() {
            return Err(ExecError::Rejoin {
                stream,
                reason: "no such stream".into(),
            });
        }
        let floor = self.cfg.min_live_streams.max(1);
        let live = {
            let mut sel = lock_ok(&self.selector);
            if sel.is_dead(stream) {
                return Err(ExecError::Rejoin {
                    stream,
                    reason: "stream is not serving (quarantined or already parked)".into(),
                });
            }
            if sel.live_count() <= floor {
                return Err(ExecError::Rejoin {
                    stream,
                    reason: format!("serving fleet is at its floor ({floor})"),
                });
            }
            self.parked[stream].store(true, Ordering::Release);
            sel.mark_dead(stream);
            sel.live_count()
        };
        self.obs.counter("fleet.parks").inc();
        self.obs
            .gauge("fleet.parked_streams")
            .set(self.parked_count() as u64);
        self.obs
            .emit(EventKind::FleetResized, 0, stream as u64, 0, live as u64);
        self.recompute_degraded();
        Ok(live)
    }

    /// Scale-up: put a parked stream back into routing. The appender
    /// never stopped, so this is pure bookkeeping — unless the device
    /// failed *while parked*, in which case the stream is readmitted
    /// and immediately quarantined through the normal failure path
    /// (parked streams dodge the supervisor, so this is where such a
    /// failure surfaces).
    pub(crate) fn unpark_stream(&self, stream: usize) -> Result<usize, ExecError> {
        let _membership = lock_ok(&self.membership);
        if stream >= self.appenders.len() || !self.is_parked(stream) {
            return Err(ExecError::Rejoin {
                stream,
                reason: "stream is not parked".into(),
            });
        }
        self.parked[stream].store(false, Ordering::Release);
        let live = {
            let mut sel = lock_ok(&self.selector);
            sel.mark_live(stream);
            sel.live_count()
        };
        let probe = self.appenders.get(stream).probe();
        let sick = if let Some(e) = probe.error {
            Some(AppenderError::Persistent(e))
        } else if !probe.alive {
            Some(AppenderError::ThreadDeath(
                "appender died while parked".to_string(),
            ))
        } else {
            None
        };
        if let Some(error) = sick {
            self.quarantine_stream(stream, &error);
            return Err(ExecError::Rejoin {
                stream,
                reason: format!("unparked straight into quarantine: {error}"),
            });
        }
        self.obs.counter("fleet.unparks").inc();
        self.obs
            .gauge("fleet.parked_streams")
            .set(self.parked_count() as u64);
        self.obs
            .emit(EventKind::FleetResized, 0, stream as u64, 0, live as u64);
        self.recompute_degraded();
        Ok(live)
    }

    /// Capture the full committed-to-be images of every page `txn`
    /// wrote, for MVCC version publication. Called at commit submit,
    /// while the transaction's X locks pin each page's content; strict
    /// 2PL holds those locks until the daemon has published the commit,
    /// so the captured images stay exact until they are installed. A
    /// page evicted since the last write is re-read through the ordinary
    /// residency path (its fragment was forced at eviction per the WAL
    /// rule, so the disk copy is the locked content).
    pub(crate) fn capture_images(&self, txn: &Txn) -> Result<Vec<Arc<Page>>, ExecError> {
        let mut pages: Vec<PageId> = txn.undo.iter().map(|u| u.page).collect();
        pages.sort_unstable();
        pages.dedup();
        let mut images = Vec::with_capacity(pages.len());
        for id in pages {
            let mut shard = self.shards.lock(id);
            self.ensure_resident(&mut shard, id)?;
            let page = shard.pool.get(id).ok_or(ExecError::Wal(WalError::Storage(
                StorageError::Protocol("page vanished during image capture"),
            )))?;
            images.push(Arc::new(page.clone()));
        }
        Ok(images)
    }

    /// Point `pages`' WAL-rule meta entries at `(stream, seq)` — the
    /// just-appended logical commit record that now covers their deferred
    /// writes. Called by the daemon before the home force; the pages are
    /// still pinned, so no eviction can race the re-pin.
    pub(crate) fn cover_deferred(&self, pages: &[PageId], stream: usize, seq: u64) {
        for &id in pages {
            let mut shard = self.shards.lock(id);
            shard.meta.insert(id, (stream, seq));
        }
    }

    /// Drop the deferred-capture pins on `pages` (one pin per page).
    pub(crate) fn unpin_pages(&self, pages: &[PageId]) {
        for &id in pages {
            let mut shard = self.shards.lock(id);
            shard.pool.unpin(id);
        }
    }

    /// Ensure `page` is resident in its shard, flushing any evicted dirty
    /// victim under the WAL rule. Caller holds the shard lock via `shard`.
    fn ensure_resident(
        &self,
        shard: &mut rmdb_storage::PoolShard<HashMap<PageId, (usize, u64)>>,
        id: PageId,
    ) -> Result<(), ExecError> {
        if shard.pool.contains(id) {
            return Ok(());
        }
        let page = {
            let data = lock_ok(&self.data);
            if data.disk.is_allocated(id.0) {
                read_page_retry(&data.disk, id.0, IO_RETRIES).map_err(ExecError::from)?
            } else {
                Page::new(id)
            }
        };
        if let Some(evicted) = shard
            .pool
            .insert(id, page, false)
            .map_err(ExecError::from)?
        {
            if evicted.dirty {
                if let Err(e) = self.flush_page(shard, &evicted.page) {
                    // The victim's fragment is not durable (e.g. its
                    // stream just died): un-evict it so the dirty bytes
                    // are not lost, give back the frame we took, and let
                    // the caller retry once failover has rerouted the
                    // fragment. The pool regained a free slot, so the
                    // re-insert cannot cascade.
                    shard.pool.remove(id);
                    let victim = evicted.page.id;
                    shard
                        .pool
                        .insert(victim, evicted.page, true)
                        .map_err(ExecError::from)?;
                    return Err(e);
                }
            }
        }
        Ok(())
    }

    /// WAL-rule flush: force the page's latest fragment if not yet
    /// durable, then doublewrite + verified home write.
    fn flush_page(
        &self,
        shard: &mut rmdb_storage::PoolShard<HashMap<PageId, (usize, u64)>>,
        page: &Page,
    ) -> Result<(), ExecError> {
        if let Some(&(stream, seq)) = shard.meta.get(&page.id) {
            let appender = self.appenders.get(stream);
            if !appender.is_forced(seq) {
                if let Err(e) = appender.force_through(seq) {
                    // A quarantined stream with an un-durable fragment:
                    // the fragment's owner will reroute it (and re-pin
                    // this page's meta) on its next append or at commit;
                    // until then this page cannot be flushed.
                    self.note_appender_failure(&e);
                    return Err(e);
                }
                self.stats.wal_forces.fetch_add(1, Ordering::Relaxed);
            }
        }
        let mut data = lock_ok(&self.data);
        let wal = &self.cfg.wal;
        if wal.dw_slots > 0 {
            let slot = wal.data_pages + data.dw_cursor % wal.dw_slots;
            data.dw_cursor += 1;
            write_page_verified(&mut data.disk, slot, page, IO_RETRIES).map_err(ExecError::from)?;
        }
        write_page_verified(&mut data.disk, page.id.0, page, IO_RETRIES)
            .map_err(ExecError::from)?;
        Ok(())
    }

    /// Move `txn` off any quarantined stream: re-pick its home and
    /// re-append the volatile tail of its fragments (everything above
    /// the dead stream's durable high-water ticket) to the new home,
    /// re-pinning each page's WAL-rule entry. Fragments within the
    /// durable prefix keep their ticket, clamped so commit-time forces
    /// against the dead stream are satisfied without touching it —
    /// recovery reads them from the quarantined disk and dedups the
    /// rerouted copies by LSN. Idempotent; cheap no-op when nothing the
    /// transaction touched is dead.
    pub(crate) fn reroute_if_needed(&self, txn: &mut Txn) -> Result<(), ExecError> {
        // Streams a rejoin has orphaned fragments of this transaction on:
        // the fragment's ticket was issued by a dead incarnation and
        // never forced, so it can never read as durable again — on a
        // stream that is otherwise perfectly live.
        let orphaned: Vec<usize> = {
            let mut streams: Vec<usize> = txn.pending.iter().map(|f| f.stream).collect();
            streams.sort_unstable();
            streams.dedup();
            streams
                .into_iter()
                .filter(|&s| {
                    let app = self.appenders.get(s);
                    txn.pending
                        .iter()
                        .any(|f| f.stream == s && app.orphaned(f.seq))
                })
                .collect()
        };
        let (dead, new_home) = {
            let mut sel = lock_ok(&self.selector);
            let mut dead: Vec<usize> = txn
                .tickets
                .keys()
                .copied()
                .filter(|&s| sel.is_dead(s))
                .collect();
            if sel.is_dead(txn.home) && !dead.contains(&txn.home) {
                dead.push(txn.home);
            }
            if dead.is_empty() && orphaned.is_empty() {
                return Ok(());
            }
            let home = if sel.is_dead(txn.home) {
                sel.pick(txn.home, txn.id)
            } else {
                txn.home
            };
            (dead, home)
        };
        let t0 = Instant::now();
        txn.home = new_home;
        let rerouted = self.obs.counter("failover.rerouted_fragments");
        // Pass 1 — orphans, before the dead-stream pass: a rejoined
        // incarnation's forced watermark sweeps past the orphan range as
        // soon as it forces new work, so the `seq > forced` partition
        // below would mistake orphans for durable prefix. Re-append them
        // under fresh tickets and recompute the source ticket exactly
        // (clamping cannot excise a hole in the middle of the range).
        for s in orphaned {
            let app = self.appenders.get(s);
            let target = self.appenders.get(new_home);
            for frag in txn.pending.iter_mut().filter(|f| f.stream == s) {
                if !app.orphaned(frag.seq) {
                    continue;
                }
                let new_seq = target.append(frag.rec.clone())?;
                let mut shard = self.shards.lock(frag.page);
                if shard.meta.get(&frag.page) == Some(&(s, frag.seq)) {
                    shard.meta.insert(frag.page, (new_home, new_seq));
                }
                drop(shard);
                self.obs.emit(
                    EventKind::FragmentRerouted,
                    txn.id,
                    new_home as u64,
                    frag.page.0,
                    s as u64,
                );
                rerouted.inc();
                frag.stream = new_home;
                frag.seq = new_seq;
            }
            match txn
                .pending
                .iter()
                .filter(|f| f.stream == s)
                .map(|f| f.seq)
                .max()
            {
                Some(high) => {
                    txn.tickets.insert(s, high);
                }
                None => {
                    txn.tickets.remove(&s);
                }
            }
            if let Some(high) = txn
                .pending
                .iter()
                .filter(|f| f.stream == new_home)
                .map(|f| f.seq)
                .max()
            {
                let t = txn.tickets.entry(new_home).or_insert(0);
                *t = (*t).max(high);
            }
        }
        // Pass 2 — quarantined streams: move the volatile tail, keep the
        // durable prefix in place.
        for s in dead {
            let forced = self.appenders.get(s).forced_high();
            let target = self.appenders.get(new_home);
            for frag in txn
                .pending
                .iter_mut()
                .filter(|f| f.stream == s && f.seq > forced)
            {
                let new_seq = target.append(frag.rec.clone())?;
                // Re-pin the page's WAL-rule entry — but only if it still
                // names the fragment we just moved; a newer fragment (or
                // a CLR) may have superseded it.
                let mut shard = self.shards.lock(frag.page);
                if shard.meta.get(&frag.page) == Some(&(s, frag.seq)) {
                    shard.meta.insert(frag.page, (new_home, new_seq));
                }
                drop(shard);
                let high = txn.tickets.entry(new_home).or_insert(0);
                *high = (*high).max(new_seq);
                self.obs.emit(
                    EventKind::FragmentRerouted,
                    txn.id,
                    new_home as u64,
                    frag.page.0,
                    s as u64,
                );
                rerouted.inc();
                frag.stream = new_home;
                frag.seq = new_seq;
            }
            // The durable prefix is already forced: clamp the ticket so
            // the commit-time force against the dead stream resolves via
            // `is_forced` without waking its (possibly dead) thread.
            if let Some(high) = txn.tickets.get_mut(&s) {
                *high = (*high).min(forced);
                if *high == 0 {
                    txn.tickets.remove(&s);
                }
            }
        }
        self.obs.counter("failover.reroutes").inc();
        self.obs
            .histogram("failover.reroute_us")
            .record(t0.elapsed().as_micros() as u64);
        Ok(())
    }

    /// Roll back and release: compensations, lock release, abort count.
    /// Used by the worker abort path and by the daemon when a batch
    /// member's commit fails (the worker no longer owns the undo chain
    /// by then — it travelled with the [`CommitReq`]).
    pub(crate) fn undo_and_release(&self, txn_id: u64, home: usize, undo: Vec<UndoEntry>) {
        self.undo_apply(txn_id, home, undo);
        self.release_locks(txn_id);
        self.stats.aborted.fetch_add(1, Ordering::Relaxed);
    }

    /// Walk the undo chain backwards, logging a compensation per undone
    /// update and restoring before-images in the pool. Best-effort with
    /// respect to the log: CLRs route around dead streams, and when no
    /// stream survives the bytes are still restored — but the page LSN
    /// is left untouched, since advancing it to an LSN that exists on no
    /// durable log could defeat redo idempotence after recovery.
    fn undo_apply(&self, txn_id: u64, home: usize, mut undo: Vec<UndoEntry>) {
        let mut clr_stream = if !self.is_stream_dead(home) {
            Some(home)
        } else {
            self.pick_live(txn_id)
        };
        for entry in undo.drain(..).rev() {
            let clr_lsn = Lsn(self.next_lsn.fetch_add(1, Ordering::Relaxed));
            let rec = LogRecord::Compensation {
                txn: txn_id,
                page: entry.page,
                undoes: entry.new_lsn,
                new_lsn: clr_lsn,
                offset: entry.offset,
                data: entry.before.clone(),
            };
            let mut appended: Option<(usize, u64)> = None;
            while let Some(s) = clr_stream {
                match self.appenders.get(s).append(rec.clone()) {
                    Ok(seq) => {
                        appended = Some((s, seq));
                        break;
                    }
                    Err(e) => {
                        self.note_appender_failure(&e);
                        let next = self.pick_live(txn_id);
                        clr_stream = if next == Some(s) { None } else { next };
                    }
                }
            }
            let mut shard = self.shards.lock(entry.page);
            if self.ensure_resident(&mut shard, entry.page).is_err() {
                // Can't load the page (e.g. every stream dead, eviction
                // blocked). The CLR (if any) still covers recovery; the
                // volatile copy is unreachable anyway.
                continue;
            }
            if let Some((s, seq)) = appended {
                shard.meta.insert(entry.page, (s, seq));
            }
            if let Some(p) = shard.pool.get_mut(entry.page) {
                p.write_at(entry.offset as usize, &entry.before);
                if appended.is_some() {
                    p.lsn = clr_lsn;
                }
            }
        }
        if let Some(s) = clr_stream {
            let _ = self
                .appenders
                .get(s)
                .append(LogRecord::Abort { txn: txn_id });
        }
    }
}

/// Whether `e` is the buffer pool's "every frame pinned" signal — the
/// cue for a deferred transaction to spill its pins.
fn is_pool_exhausted(e: &ExecError) -> bool {
    matches!(
        e,
        ExecError::Wal(WalError::Storage(StorageError::PoolExhausted))
    )
}

/// The concurrent engine. Shared by reference across worker threads
/// (wrap in [`Arc`] to move between threads).
pub struct ExecDb {
    inner: Arc<Inner>,
    commit_tx: Option<SyncSender<CommitReq>>,
    daemon: Option<std::thread::JoinHandle<()>>,
    supervisor: Option<std::thread::JoinHandle<()>>,
    sup_stop: Arc<AtomicBool>,
}

impl ExecDb {
    /// A fresh database with `cfg.wal.log_streams` appender threads, the
    /// group-commit daemon, and the failover supervisor running.
    pub fn new(cfg: ExecConfig) -> Self {
        assert!(cfg.pool_shards > 0, "need at least one pool shard");
        let wal = &cfg.wal;
        let force_delay = Duration::from_micros(cfg.force_delay_us);
        let append_wait = Duration::from_millis(cfg.append_wait_ms.max(1));
        let obs = cfg.obs.clone();
        let provision = |frames| {
            wal.backend
                .provision(frames)
                .expect("provisioning a disk on the configured backend")
        };
        let appenders = (0..wal.log_streams)
            .map(|idx| {
                LogAppender::spawn_observed(
                    LogStream::create_on(provision(wal.log_frames))
                        .expect("fresh log disk has room for a header"),
                    cfg.appender_queue,
                    force_delay,
                    &obs,
                    idx,
                    append_wait,
                )
            })
            .collect();
        obs.gauge("failover.live_streams")
            .set(wal.log_streams as u64);
        let inner = Arc::new(Inner {
            sched: Mutex::new(Scheduler::new()),
            waits: WaitTable::default(),
            shards: ShardedPool::with_meta(
                cfg.pool_shards,
                wal.pool_frames,
                wal.evict,
                HashMap::new,
            ),
            data: Mutex::new(DataState {
                disk: provision(wal.data_pages + wal.dw_slots),
                dw_cursor: 0,
            }),
            appenders: Fleet::new(appenders),
            selector: Mutex::new(Selector::new(wal.policy, wal.log_streams, wal.seed)),
            membership: Mutex::new(()),
            parked: (0..wal.log_streams)
                .map(|_| AtomicBool::new(false))
                .collect(),
            archived_logs: Mutex::new(Vec::new()),
            gate: Mutex::new(()),
            next_txn: AtomicU64::new(1),
            next_lsn: AtomicU64::new(1),
            degraded: AtomicBool::new(false),
            stats: Stats::default(),
            commits_acked: obs.counter("txn.commits_acked"),
            commit_us: obs.histogram("txn.commit_us"),
            mvcc: Mvcc::new(wal.data_pages as usize, &obs),
            ro_txns: obs.counter("mvcc.ro_txns"),
            ro_us: obs.histogram("mvcc.read_us"),
            obs,
            cfg: cfg.clone(),
        });
        let (commit_tx, commit_rx) = sync_channel(cfg.commit_queue.max(1));
        let daemon_inner = Arc::clone(&inner);
        let max_group = cfg.max_group;
        let dwell = Duration::from_micros(cfg.group_dwell_us);
        let daemon = std::thread::Builder::new()
            .name("rmdb-group-commit".into())
            .spawn(move || run_daemon(daemon_inner, commit_rx, max_group, dwell))
            .expect("spawn group-commit daemon");
        let sup_stop = Arc::new(AtomicBool::new(false));
        let sup_inner = Arc::clone(&inner);
        let stop = Arc::clone(&sup_stop);
        let supervisor = std::thread::Builder::new()
            .name("rmdb-failover-supervisor".into())
            .spawn(move || crate::supervisor::run_supervisor(sup_inner, stop))
            .expect("spawn failover supervisor");
        ExecDb {
            inner,
            commit_tx: Some(commit_tx),
            daemon: Some(daemon),
            supervisor: Some(supervisor),
            sup_stop,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &ExecConfig {
        &self.inner.cfg
    }

    /// Log streams not yet quarantined.
    pub fn live_streams(&self) -> usize {
        self.inner.live_streams()
    }

    /// Whether the fleet has shrunk below [`ExecConfig::min_live_streams`].
    pub fn is_degraded(&self) -> bool {
        self.inner.degraded.load(Ordering::Acquire)
    }

    /// Whether `stream` has been quarantined by failover.
    pub fn is_stream_dead(&self, stream: usize) -> bool {
        self.inner.is_stream_dead(stream)
    }

    /// Direct appender access for in-crate tests (fault steering).
    #[cfg(test)]
    pub(crate) fn appender(&self, stream: usize) -> Arc<LogAppender> {
        self.inner.appenders.get(stream)
    }

    /// Attach a fault plan to `stream`'s log device, injected from inside
    /// its appender thread so it composes with in-flight appends exactly
    /// like a real device failing under load. `FaultPlan::fail_from_write`
    /// is the mid-run kill switch the failover tests and the
    /// `--kill-stream` bench flag use.
    pub fn inject_stream_fault(&self, stream: usize, plan: FaultPlan) -> Result<(), ExecError> {
        self.inject_stream_fault_handle(stream, FaultInjector::handle(plan))
    }

    /// Like [`ExecDb::inject_stream_fault`], but with a caller-built
    /// [`FaultHandle`] so the caller keeps a clone — the bench's
    /// `--rejoin-at` flag revives the device through its retained handle
    /// mid-run, then lets the membership manager readmit the stream.
    pub fn inject_stream_fault_handle(
        &self,
        stream: usize,
        handle: FaultHandle,
    ) -> Result<(), ExecError> {
        self.inner.appenders.get(stream).inject_faults(handle)
    }

    /// Readmit a quarantined stream on its recovered device. See
    /// [`Inner::rejoin_stream`]'s protocol notes; fails with a typed
    /// [`ExecError::Rejoin`] (stream stays quarantined, crash images
    /// keep working) if the device is still broken.
    pub fn rejoin_stream(&self, stream: usize) -> Result<RejoinReport, ExecError> {
        self.inner.rejoin_stream(stream)
    }

    /// Swap a quarantined stream onto a brand-new device, archiving the
    /// old platter for recovery.
    pub fn replace_stream(&self, stream: usize) -> Result<RejoinReport, ExecError> {
        self.inner.replace_stream(stream)
    }

    /// Scale-down: take a healthy stream out of routing (its appender
    /// keeps serving forces). Returns the serving count after.
    pub fn park_stream(&self, stream: usize) -> Result<usize, ExecError> {
        self.inner.park_stream(stream)
    }

    /// Scale-up: return a parked stream to routing. Returns the serving
    /// count after.
    pub fn unpark_stream(&self, stream: usize) -> Result<usize, ExecError> {
        self.inner.unpark_stream(stream)
    }

    /// Streams currently parked by scale-down.
    pub fn parked_streams(&self) -> usize {
        self.inner.parked_count()
    }

    /// Begin a transaction on behalf of query processor `qp`.
    pub fn begin(&self, qp: usize) -> Txn {
        let id = self.inner.next_txn.fetch_add(1, Ordering::Relaxed);
        let home = lock_ok(&self.inner.selector).pick(qp, id);
        // Command/Adaptive arm deferred capture: the logging decision
        // moves from each write to the commit point.
        let deferred = if self.inner.cfg.wal.logging == LoggingPolicy::Fragments {
            None
        } else {
            Some(ExecDeferred::default())
        };
        Txn {
            id,
            home,
            tickets: HashMap::new(),
            undo: Vec::new(),
            pending: Vec::new(),
            deferred,
        }
    }

    fn check_bounds(&self, page: u64, offset: usize, len: usize) -> Result<(), ExecError> {
        if page >= self.inner.cfg.wal.data_pages || offset + len > PAYLOAD_SIZE {
            Err(ExecError::Wal(WalError::OutOfBounds { page, offset, len }))
        } else {
            Ok(())
        }
    }

    /// Acquire `mode` on `page` for `txn`, parking on the wait table if
    /// the scheduler queues us. Deadlock victims (us or others) surface
    /// as a lock-conflict error, the retryable kind. The scheduler mutex
    /// guards the multi-step waits-for graph, so poisoning there is NOT
    /// repaired — it surfaces as [`ExecError::Poisoned`].
    fn lock_page(&self, txn: u64, page: PageId, mode: LockMode) -> Result<(), ExecError> {
        const POISONED: ExecError = ExecError::Poisoned {
            what: "scheduler lock table",
        };
        let decision = {
            let mut sched = self.inner.sched.lock().map_err(|_| POISONED)?;
            let decision = sched.request(txn, page, mode);
            // signal victims while still holding the scheduler mutex so
            // victim/grant deliveries are serialised
            match &decision {
                Decision::Waiting { victims } | Decision::Deadlock { victims, .. } => {
                    for &v in victims {
                        self.inner
                            .stats
                            .deadlock_victims
                            .fetch_add(1, Ordering::Relaxed);
                        self.inner.waits.signal(v, Outcome::Victim);
                    }
                }
                Decision::Granted => {}
            }
            decision
        };
        let conflict = |holder: u64| ExecError::Wal(WalError::LockConflict { page, holder });
        match decision {
            Decision::Granted => Ok(()),
            Decision::Deadlock { cycle, .. } => {
                self.inner
                    .stats
                    .deadlock_victims
                    .fetch_add(1, Ordering::Relaxed);
                Err(conflict(cycle.get(1).copied().unwrap_or(0)))
            }
            Decision::Waiting { .. } => match self.inner.waits.wait(txn) {
                Some(Outcome::Granted) => Ok(()),
                Some(Outcome::Victim) => Err(conflict(0)),
                None => {
                    // timed out: resolve the race under the scheduler
                    // mutex — either a signal landed after the timeout,
                    // or we withdraw the wait
                    let mut sched = self.inner.sched.lock().map_err(|_| POISONED)?;
                    match self.inner.waits.take(txn) {
                        Some(Outcome::Granted) => Ok(()),
                        Some(Outcome::Victim) => Err(conflict(0)),
                        None => {
                            sched.cancel_wait(txn);
                            Err(conflict(0))
                        }
                    }
                }
            },
        }
    }

    /// Read `len` bytes at `offset` of `page` under a shared lock. Under
    /// deferred capture the page joins the transaction's read set — the
    /// command record ships it so the replay DAG can order this
    /// transaction after the writers it observed.
    pub fn read(
        &self,
        txn: &mut Txn,
        page: u64,
        offset: usize,
        len: usize,
    ) -> Result<Vec<u8>, ExecError> {
        self.check_bounds(page, offset, len)?;
        let id = PageId(page);
        self.lock_page(txn.id, id, LockMode::Shared)?;
        if let Some(d) = txn.deferred.as_mut() {
            d.reads.insert(id);
        }
        let mut shard = self.inner.shards.lock(id);
        if let Err(e) = self.inner.ensure_resident(&mut shard, id) {
            let self_pinned = txn.deferred.as_ref().is_some_and(|d| !d.pages.is_empty());
            if !is_pool_exhausted(&e) || !self_pinned {
                return Err(e);
            }
            // our own deferred pins may be what starved the shard: spill
            // them (logging the retained fragments, dropping the pins)
            // and retry the residency once
            drop(shard);
            self.spill_deferred(txn)?;
            shard = self.inner.shards.lock(id);
            self.inner.ensure_resident(&mut shard, id)?;
        }
        let p = shard.pool.get(id).expect("resident page");
        Ok(p.read_at(offset, len).to_vec())
    }

    /// Write `data` at `offset` of `page`: X-lock, log a fragment to this
    /// transaction's routed stream, then apply in the buffer pool. The
    /// fragment ticket and the page content move together under one shard
    /// lock, so a concurrent evicting flusher can never see new bytes
    /// with a stale ticket. If the routed stream fails mid-append the
    /// failure is classified, the stream quarantined, and the fragment —
    /// plus the transaction's earlier volatile fragments — rerouted to a
    /// survivor before retrying. Under [`LoggingPolicy::Command`] /
    /// [`LoggingPolicy::Adaptive`] nothing is appended here at all — the
    /// write is deferred-captured and the logging decision happens at
    /// commit ([`ExecDb::commit`]).
    pub fn write(
        &self,
        txn: &mut Txn,
        page: u64,
        offset: usize,
        data: &[u8],
    ) -> Result<(), ExecError> {
        self.check_bounds(page, offset, data.len())?;
        let id = PageId(page);
        self.lock_page(txn.id, id, LockMode::Exclusive)?;
        if txn.deferred.is_some() && self.write_deferred(txn, id, offset, data, None)? {
            return Ok(());
        }
        self.write_physical(txn, id, offset, data)
    }

    /// Add `delta` (wrapping) to the little-endian u64 at `offset` of
    /// `page` under an exclusive lock. Under deferred capture the
    /// increment is recorded as a [`LogicalOp::AddU64`] — 29 bytes on the
    /// command record no matter how large the page — making hot-counter
    /// transactions the textbook win for command logging; otherwise it is
    /// an ordinary read-modify-write fragment.
    pub fn add_u64(
        &self,
        txn: &mut Txn,
        page: u64,
        offset: usize,
        delta: u64,
    ) -> Result<(), ExecError> {
        self.check_bounds(page, offset, 8)?;
        let id = PageId(page);
        self.lock_page(txn.id, id, LockMode::Exclusive)?;
        let next = {
            let mut shard = self.inner.shards.lock(id);
            self.inner.ensure_resident(&mut shard, id)?;
            let p = shard.pool.get(id).expect("resident page");
            let mut cur = [0u8; 8];
            cur.copy_from_slice(p.read_at(offset, 8));
            u64::from_le_bytes(cur).wrapping_add(delta)
        };
        let data = next.to_le_bytes();
        if txn.deferred.is_some() && self.write_deferred(txn, id, offset, &data, Some(delta))? {
            return Ok(());
        }
        self.write_physical(txn, id, offset, &data)
    }

    /// Deferred-capture write: no append — retain the fragment the
    /// immediate path would have logged, record the logical op, pin the
    /// page on first touch, and apply the bytes. Returns `Ok(false)` when
    /// the capture was abandoned instead (pin budget or pool pressure →
    /// the transaction spilled to fragments); the caller then writes
    /// through the immediate path.
    fn write_deferred(
        &self,
        txn: &mut Txn,
        id: PageId,
        offset: usize,
        data: &[u8],
        delta: Option<u64>,
    ) -> Result<bool, ExecError> {
        // Pin budget: a deferred transaction must never pin a whole pool
        // shard solid, or its own next page could find nothing to evict.
        // Conservative (all pins could hash to one shard), like the
        // deferred engine's frame guard.
        let per_shard = (self.inner.cfg.wal.pool_frames / self.inner.cfg.pool_shards.max(1)).max(1);
        let budget = per_shard.saturating_sub(1).max(1);
        {
            let d = txn.deferred.as_ref().expect("deferred capture armed");
            if !d.pages.contains(&id) && d.pages.len() + 1 > budget {
                self.spill_deferred(txn)?;
                return Ok(false);
            }
        }
        let mut shard = self.inner.shards.lock(id);
        if let Err(e) = self.inner.ensure_resident(&mut shard, id) {
            if !is_pool_exhausted(&e) {
                return Err(e);
            }
            // shard starved (possibly by our own pins): spill and let the
            // immediate path — which can now evict — take this write
            drop(shard);
            self.spill_deferred(txn)?;
            return Ok(false);
        }
        let p = shard.pool.get(id).expect("resident page");
        let prev_lsn = p.lsn;
        let new_lsn = Lsn(self.inner.next_lsn.fetch_add(1, Ordering::Relaxed));
        let (frag_offset, before, after) = match self.inner.cfg.wal.log_mode {
            LogMode::Logical => (
                offset as u32,
                p.read_at(offset, data.len()).to_vec(),
                data.to_vec(),
            ),
            LogMode::Physical => {
                let before = p.payload().to_vec();
                let mut after = before.clone();
                after[offset..offset + data.len()].copy_from_slice(data);
                (0, before, after)
            }
        };
        let rec = LogRecord::Update {
            txn: txn.id,
            page: id,
            prev_lsn,
            new_lsn,
            offset: frag_offset,
            before: before.clone(),
            after,
        };
        let op = match delta {
            Some(dv) => LogicalOp::AddU64 {
                page: id,
                lsn: new_lsn,
                offset: offset as u32,
                delta: dv,
            },
            None => LogicalOp::Put {
                page: id,
                lsn: new_lsn,
                offset: offset as u32,
                data: data.to_vec(),
            },
        };
        let d = txn.deferred.as_mut().expect("deferred capture armed");
        if d.pages.insert(id) {
            // first touch: pin, so the steal-policy flusher can never
            // evict a page whose only log coverage is transaction-local
            shard.pool.pin(id);
        }
        d.phys_bytes += rec.encoded_len();
        d.frags.push((id, rec));
        d.ops.push(op);
        txn.undo.push(UndoEntry {
            page: id,
            offset: frag_offset,
            before,
            new_lsn,
        });
        let page = shard.pool.get_mut(id).expect("resident page");
        page.write_at(offset, data);
        page.lsn = new_lsn;
        Ok(true)
    }

    /// Append `rec` to the transaction's home stream, routing around
    /// streams that die mid-append (classify → quarantine → reroute →
    /// retry on the new home). Returns the stream + ticket.
    fn append_routed(&self, txn: &mut Txn, rec: &LogRecord) -> Result<(usize, u64), ExecError> {
        let mut attempts = 0usize;
        loop {
            let stream = txn.home;
            match self.inner.appenders.get(stream).append(rec.clone()) {
                Ok(seq) => return Ok((stream, seq)),
                Err(e) => {
                    self.inner.note_appender_failure(&e);
                    attempts += 1;
                    if attempts >= self.inner.cfg.wal.log_streams {
                        return Err(e);
                    }
                    if let Err(re) = self.inner.reroute_if_needed(txn) {
                        // the survivor we rerouted to may itself have
                        // just died — classify it so this site
                        // quarantines it too, like the commit path
                        self.inner.note_appender_failure(&re);
                        return Err(re);
                    }
                    if txn.home == stream {
                        // no live alternative was found
                        return Err(e);
                    }
                }
            }
        }
    }

    /// Spill a deferred transaction to ordinary fragments: append every
    /// retained fragment (routing around dead streams), publish tickets,
    /// pending entries, and WAL-rule meta, then drop the pins. After this
    /// the transaction is a plain fragments transaction for the rest of
    /// its life. If a mid-spill append fails, the un-appended suffix is
    /// reverted in memory and its undo entries forgotten — the appended
    /// prefix keeps its undo chain for the caller's rollback.
    fn spill_deferred(&self, txn: &mut Txn) -> Result<(), ExecError> {
        let Some(d) = txn.deferred.take() else {
            return Ok(());
        };
        debug_assert_eq!(
            txn.undo.len(),
            d.frags.len(),
            "one undo entry per deferred write"
        );
        if !d.frags.is_empty() {
            self.inner.obs.counter("wal.deferred_spills").inc();
        }
        let mut out = Ok(());
        for (i, (id, rec)) in d.frags.into_iter().enumerate() {
            match self.append_routed(txn, &rec) {
                Ok((stream, seq)) => {
                    let high = txn.tickets.entry(stream).or_insert(0);
                    *high = (*high).max(seq);
                    txn.pending.push(PendingFrag {
                        stream,
                        seq,
                        page: id,
                        rec,
                    });
                    let mut shard = self.inner.shards.lock(id);
                    shard.meta.insert(id, (stream, seq));
                }
                Err(e) => {
                    // nothing from this write on reached a log: revert
                    // those writes in memory (reverse order) and forget
                    // their undo entries, so rollback never compensates
                    // an update no log stream has heard of
                    let tail = txn.undo.split_off(i);
                    for entry in tail.iter().rev() {
                        let mut shard = self.inner.shards.lock(entry.page);
                        if let Some(p) = shard.pool.get_mut(entry.page) {
                            p.write_at(entry.offset as usize, &entry.before);
                        }
                    }
                    out = Err(e);
                    break;
                }
            }
        }
        let pages: Vec<PageId> = d.pages.into_iter().collect();
        self.inner.unpin_pages(&pages);
        out
    }

    /// The immediate (fragments) write path: log the after-image
    /// fragment, then apply in the buffer pool.
    fn write_physical(
        &self,
        txn: &mut Txn,
        id: PageId,
        offset: usize,
        data: &[u8],
    ) -> Result<(), ExecError> {
        // pre-image under the shard lock (X lock pins the content)
        let (rec, undo_entry, new_lsn) = {
            let mut shard = self.inner.shards.lock(id);
            self.inner.ensure_resident(&mut shard, id)?;
            let p = shard.pool.get(id).expect("resident page");
            let prev_lsn = p.lsn;
            let new_lsn = Lsn(self.inner.next_lsn.fetch_add(1, Ordering::Relaxed));
            match self.inner.cfg.wal.log_mode {
                LogMode::Logical => {
                    let before = p.read_at(offset, data.len()).to_vec();
                    (
                        LogRecord::Update {
                            txn: txn.id,
                            page: id,
                            prev_lsn,
                            new_lsn,
                            offset: offset as u32,
                            before: before.clone(),
                            after: data.to_vec(),
                        },
                        UndoEntry {
                            page: id,
                            offset: offset as u32,
                            before,
                            new_lsn,
                        },
                        new_lsn,
                    )
                }
                LogMode::Physical => {
                    let before = p.payload().to_vec();
                    let mut after = before.clone();
                    after[offset..offset + data.len()].copy_from_slice(data);
                    (
                        LogRecord::Update {
                            txn: txn.id,
                            page: id,
                            prev_lsn,
                            new_lsn,
                            offset: 0,
                            before: before.clone(),
                            after,
                        },
                        UndoEntry {
                            page: id,
                            offset: 0,
                            before,
                            new_lsn,
                        },
                        new_lsn,
                    )
                }
            }
        };

        // ship the fragment to this txn's home log processor, routing
        // around streams that die mid-transaction
        let (stream, seq) = self.append_routed(txn, &rec)?;
        let high = txn.tickets.entry(stream).or_insert(0);
        *high = (*high).max(seq);
        txn.undo.push(undo_entry);
        txn.pending.push(PendingFrag {
            stream,
            seq,
            page: id,
            rec,
        });

        // apply + publish the ticket atomically w.r.t. the flusher
        let mut shard = self.inner.shards.lock(id);
        self.inner.ensure_resident(&mut shard, id)?;
        shard.meta.insert(id, (stream, seq));
        let p = shard.pool.get_mut(id).expect("resident page");
        p.write_at(offset, data);
        p.lsn = new_lsn;
        Ok(())
    }

    /// Commit: submit to the group-commit daemon and return a handle the
    /// caller waits on. Read-only transactions resolve immediately. If
    /// the transaction's fragments sit on a stream that has since been
    /// quarantined, they are rerouted here, before submission — the
    /// daemon only ever forces live streams (or durable prefixes). On
    /// any failure the transaction is rolled back and its locks released
    /// before the error returns: the caller never owns cleanup.
    pub fn commit(&self, mut txn: Txn) -> Result<CommitHandle, ExecError> {
        let timeout = Duration::from_millis(self.inner.cfg.commit_timeout_ms.max(1));
        let (reply, rx) = sync_channel(1);
        if txn.tickets.is_empty() && txn.deferred.as_ref().is_none_or(|d| d.ops.is_empty()) {
            // read-only fast path: nothing to force — and no ack counter,
            // so `txn.commits_acked` stays paired with the daemon's
            // `group.completions`
            self.inner.release_locks(txn.id);
            self.inner.stats.committed.fetch_add(1, Ordering::Relaxed);
            let _ = reply.send(Ok(()));
            return Ok(CommitHandle::new(rx, None, timeout));
        }
        // The logging decision: one Logical record for a deferred txn the
        // cost policy keeps (it doubles as the commit record), or a spill
        // to fragments plus the plain Commit record.
        let (commit_rec, unpin, bytes_saved) = match self.decide_commit(&mut txn) {
            Ok(v) => v,
            Err(e) => {
                // the spill failed; it already reverted the un-appended
                // suffix and dropped the pins — roll back what was logged
                self.inner.undo_and_release(txn.id, txn.home, txn.undo);
                return Err(e);
            }
        };
        if let Err(e) = self.inner.reroute_if_needed(&mut txn) {
            self.inner.note_appender_failure(&e);
            self.inner.undo_and_release(txn.id, txn.home, txn.undo);
            self.inner.unpin_pages(&unpin);
            return Err(e);
        }
        // capture page images for MVCC publication while this txn's X
        // locks still pin their content (strict 2PL holds them until the
        // daemon publishes); a capture failure aborts the commit cleanly
        let images = match self.inner.capture_images(&txn) {
            Ok(images) => images,
            Err(e) => {
                self.inner.undo_and_release(txn.id, txn.home, txn.undo);
                self.inner.unpin_pages(&unpin);
                return Err(e);
            }
        };
        let req = CommitReq {
            txn: txn.id,
            home: txn.home,
            tickets: txn.tickets.into_iter().collect(),
            undo: txn.undo,
            images,
            commit_rec,
            unpin,
            bytes_saved,
            reply,
        };
        let tx = self.commit_tx.as_ref().expect("pipeline running");
        if let Err(send_err) = tx.send(req) {
            let req = send_err.0;
            self.inner.undo_and_release(req.txn, req.home, req.undo);
            self.inner.unpin_pages(&req.unpin);
            return Err(ExecError::Wal(WalError::Storage(StorageError::Protocol(
                "group-commit daemon gone",
            ))));
        }
        Ok(CommitHandle::new(
            rx,
            Some(self.inner.commits_acked.clone()),
            timeout,
        ))
    }

    /// Run the commit-time logging policy. For a deferred transaction:
    /// command-log (return its [`LogRecord::Logical`] — the commit record
    /// — plus the pages to unpin once it is durable and the log bytes
    /// saved), or spill the retained fragments and commit physically.
    /// Everything else commits with the plain `Commit` record. The
    /// per-transaction decision is recorded in the frame
    /// (`DECISION_FORCED` / `DECISION_COST`), so recovery needs no policy
    /// configuration to replay.
    fn decide_commit(&self, txn: &mut Txn) -> Result<(LogRecord, Vec<PageId>, u64), ExecError> {
        let commit = LogRecord::Commit { txn: txn.id };
        let Some(d) = txn.deferred.as_ref() else {
            return Ok((commit, Vec::new(), 0));
        };
        if d.ops.is_empty() {
            let d = txn.deferred.take().expect("checked deferred");
            return Ok((commit, d.pages.into_iter().collect(), 0));
        }
        let threshold = match self.inner.cfg.wal.logging {
            LoggingPolicy::Command => None, // always command-log
            LoggingPolicy::Adaptive { threshold_pct } => Some(threshold_pct),
            LoggingPolicy::Fragments => {
                // unreachable in practice — deferred capture is only
                // armed under Command/Adaptive — but spilling is the
                // correct fallback either way
                self.spill_deferred(txn)?;
                return Ok((commit, Vec::new(), 0));
            }
        };
        let mut rec = LogRecord::Logical {
            txn: txn.id,
            commit_lsn: Lsn(0), // sized first; allocated only if kept
            decision: if threshold.is_some() {
                DECISION_COST
            } else {
                DECISION_FORCED
            },
            reads: d.reads.iter().copied().collect(),
            ops: d.ops.clone(),
        };
        if let Some(pct) = threshold {
            if rec.encoded_len() as u128 * 100 > u128::from(pct) * d.phys_bytes as u128 {
                // the fragments are cheaper: spill and commit physically
                self.spill_deferred(txn)?;
                return Ok((commit, Vec::new(), 0));
            }
        }
        let d = txn.deferred.take().expect("checked deferred");
        if let LogRecord::Logical { commit_lsn, .. } = &mut rec {
            *commit_lsn = Lsn(self.inner.next_lsn.fetch_add(1, Ordering::Relaxed));
        }
        let bytes_saved = (d.phys_bytes as u64).saturating_sub(rec.encoded_len() as u64);
        Ok((rec, d.pages.into_iter().collect(), bytes_saved))
    }

    /// Abort: walk the undo chain backwards, logging a compensation per
    /// undone update, append the `Abort` record (no force needed), then
    /// release locks. Compensations route around quarantined streams. A
    /// still-deferred transaction takes a cheaper exit: none of its
    /// writes ever reached a log, so there is nothing to compensate —
    /// its bytes are reverted in memory, its pins dropped, and no log
    /// stream hears of it at all.
    pub fn abort(&self, txn: Txn) -> Result<(), ExecError> {
        if let Some(d) = txn.deferred {
            for entry in txn.undo.iter().rev() {
                let mut shard = self.inner.shards.lock(entry.page);
                if let Some(p) = shard.pool.get_mut(entry.page) {
                    // bytes only; the page LSN stays where the deferred
                    // writes left it, matching the no-CLR undo rule —
                    // advancing past it is safe because every later
                    // durable record allocates a higher LSN
                    p.write_at(entry.offset as usize, &entry.before);
                }
            }
            let pages: Vec<PageId> = d.pages.into_iter().collect();
            self.inner.unpin_pages(&pages);
            self.inner.release_locks(txn.id);
            self.inner.stats.aborted.fetch_add(1, Ordering::Relaxed);
            return Ok(());
        }
        self.inner.undo_and_release(txn.id, txn.home, txn.undo);
        Ok(())
    }

    /// Run `body` as a transaction with bounded retry: lock conflicts
    /// abort and back off (seeded exponential + jitter); appender
    /// failures quarantine the stream and retry on the survivors; a
    /// fleet below [`ExecConfig::min_live_streams`] sheds the request
    /// with [`ExecError::Degraded`]; an exhausted budget reports
    /// [`ExecError::Starved`]. A commit wait that exceeds
    /// [`ExecConfig::commit_timeout_ms`] surfaces as
    /// [`ExecError::Timeout`] **without retrying**: the group-commit
    /// daemon still owns the request and may yet make the original
    /// commit durable, so re-executing the body could apply the
    /// transaction twice — the indeterminate outcome belongs to the
    /// caller.
    /// [`ExecError::is_retryable`], widened for deferred capture: a pool
    /// exhausted by *other* transactions' deferred pins clears as soon as
    /// they commit and unpin, so under Command/Adaptive logging the
    /// condition is transient and worth a backed-off retry. Under
    /// `Fragments` nothing pins, so exhaustion means the pool is simply
    /// too small — still a hard error.
    fn retryable(&self, e: &ExecError) -> bool {
        e.is_retryable()
            || (is_pool_exhausted(e) && self.inner.cfg.wal.logging != LoggingPolicy::Fragments)
    }

    pub fn run_txn<F>(&self, qp: usize, body: F) -> Result<(), ExecError>
    where
        F: Fn(&mut ExecCtx<'_>) -> Result<(), ExecError>,
    {
        let seed = self.inner.cfg.wal.seed ^ (qp as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut backoff = Backoff::with_bounds(seed, 10, 1_000);
        let t_start = Instant::now();
        fn pause(backoff: &mut Backoff) -> Duration {
            let delay = backoff.next_delay();
            if delay.is_zero() {
                std::thread::yield_now();
            } else {
                std::thread::sleep(delay);
            }
            delay
        }
        for _ in 0..MAX_RETRIES {
            // degraded gate, checked per attempt: shed load instead of
            // queueing against a fleet that cannot commit safely
            let live = self.inner.live_streams();
            let min = self.inner.cfg.min_live_streams;
            if live < min {
                self.inner.obs.counter("failover.degraded_rejects").inc();
                return Err(ExecError::Degraded { live, min });
            }
            self.inner.stats.attempts.fetch_add(1, Ordering::Relaxed);
            let mut txn = self.begin(qp);
            let txn_id = txn.id;
            let mut ctx = ExecCtx {
                db: self,
                txn: &mut txn,
            };
            match body(&mut ctx) {
                Ok(()) => {
                    let commit = self.commit(txn).and_then(CommitHandle::wait);
                    match commit {
                        Ok(()) => {
                            let us = t_start.elapsed().as_micros() as u64;
                            self.inner.commit_us.record(us);
                            self.inner
                                .obs
                                .emit(EventKind::TxnCommit, txn_id, qp as u64, 0, us);
                            return Ok(());
                        }
                        // Every retryable commit error is *determinate*:
                        // it was either rejected before submission or
                        // rolled back daemon-side with locks released —
                        // no abort here, just retry (the failed stream
                        // is quarantined by now, so the retry routes
                        // around it). ExecError::Timeout never lands
                        // here: the daemon still owns that request and
                        // may yet commit it, so it is non-retryable and
                        // returns below.
                        Err(e) if self.retryable(&e) => {
                            pause(&mut backoff);
                        }
                        Err(e) => return Err(e),
                    }
                }
                Err(e) => {
                    if let Some(_holder) = e.lock_conflict() {
                        let page = match &e {
                            ExecError::Wal(WalError::LockConflict { page, .. }) => page.0,
                            _ => 0,
                        };
                        self.abort(txn)?;
                        self.inner
                            .stats
                            .conflict_retries
                            .fetch_add(1, Ordering::Relaxed);
                        let delay = pause(&mut backoff);
                        self.inner.obs.emit(
                            EventKind::TxnConflictRetry,
                            txn_id,
                            qp as u64,
                            page,
                            delay.as_micros() as u64,
                        );
                    } else if self.retryable(&e) {
                        // appender failure inside the body: the stream is
                        // quarantined (note_appender_failure ran at the
                        // failure site); roll back and retry on survivors
                        self.abort(txn)?;
                        self.inner.obs.counter("failover.txn_retries").inc();
                        pause(&mut backoff);
                    } else {
                        self.abort(txn)?;
                        self.inner.obs.emit(
                            EventKind::TxnAbort,
                            txn_id,
                            qp as u64,
                            0,
                            backoff.attempts() as u64,
                        );
                        return Err(e);
                    }
                }
            }
        }
        self.inner.stats.starved.fetch_add(1, Ordering::Relaxed);
        self.inner.obs.emit(
            EventKind::TxnStarved,
            0,
            qp as u64,
            0,
            backoff.attempts() as u64,
        );
        Err(ExecError::Starved {
            attempts: backoff.attempts() as u64,
        })
    }

    /// Run `body` as a **read-only snapshot transaction** on the MVCC
    /// read path: capture a snapshot LSN at begin, resolve every page as
    /// "newest committed version at or below that LSN", and never touch
    /// the lock table, the group-commit gate, or the appender fleet.
    ///
    /// Consequences of that routing:
    /// * no lock conflicts, no deadlock victimisation, no retry loop —
    ///   the body runs exactly once and the only errors are the body's
    ///   own (e.g. out-of-bounds reads);
    /// * no degraded-mode gate — snapshot reads stay available while
    ///   failover, rejoin, or membership churn runs, because they depend
    ///   on nothing but already-published memory;
    /// * the view is *stale but transaction-consistent*: exactly the
    ///   commits published before the snapshot opened, never a torn
    ///   write set (the paper's differential-file base-file read,
    ///   generalised to every commit point).
    ///
    /// Pages no committed transaction has ever written read as zeroes —
    /// the version pool, not the data disk, is the source of truth here,
    /// because the steal-policy pool may have flushed uncommitted images
    /// to disk.
    pub fn run_ro_txn<T, F>(&self, qp: usize, body: F) -> Result<T, ExecError>
    where
        F: FnOnce(&mut SnapshotCtx<'_>) -> Result<T, ExecError>,
    {
        let t_start = Instant::now();
        let snap = self.inner.mvcc.begin_snapshot();
        let txn_id = self.inner.next_txn.fetch_add(1, Ordering::Relaxed);
        self.inner
            .obs
            .emit(EventKind::SnapshotOpened, txn_id, qp as u64, 0, snap.lsn());
        let mut ctx = SnapshotCtx { db: self, snap };
        let out = body(&mut ctx);
        drop(ctx); // close the snapshot before accounting
        self.inner
            .ro_us
            .record(t_start.elapsed().as_micros().min(u64::MAX as u128) as u64);
        if out.is_ok() {
            self.inner.ro_txns.inc();
        }
        out
    }

    /// The MVCC facade: version pool + snapshot registry. Benches and
    /// tests use it for chain/watermark introspection; ordinary readers
    /// go through [`ExecDb::run_ro_txn`].
    pub fn mvcc(&self) -> &Mvcc {
        &self.inner.mvcc
    }

    /// Sweep the MVCC version pool against the current GC watermark,
    /// returning the versions reclaimed. The supervisor runs this
    /// continuously; tests call it directly for deterministic quiesced
    /// checks.
    pub fn mvcc_gc(&self) -> u64 {
        self.inner.mvcc.gc()
    }

    /// A crash-consistent image for [`rmdb_wal::WalDb::recover`].
    ///
    /// Protocol: hold the commit gate (no commit record can become
    /// durable inside the window), snapshot the data disk **first**, then
    /// every log disk. Data-first means any page visible on the data
    /// snapshot had its fragment forced strictly before the log
    /// snapshots (WAL rule holds in the image); the gate means any
    /// durable commit record's fragment forces finished strictly before
    /// the window (commit atomicity holds in the image). Quarantined
    /// streams are included — their durable prefix is exactly what
    /// recovery merges with the survivors' logs.
    pub fn crash_image(&self) -> Result<CrashImage, ExecError> {
        let _gate = lock_ok(&self.inner.gate);
        let data = lock_ok(&self.inner.data).disk.snapshot();
        let mut logs = (0..self.inner.appenders.len())
            .map(|i| self.inner.appenders.get(i).snapshot())
            .collect::<Result<Vec<_>, _>>()?;
        // Platters archived by replace_stream: their durable prefixes
        // are nowhere else, and recovery merges any number of log disks
        // (duplicates of rerouted fragments dedup by LSN).
        logs.extend(
            lock_ok(&self.inner.archived_logs)
                .iter()
                .map(Disk::snapshot),
        );
        Ok(CrashImage { data, logs })
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ExecStats {
        let s = &self.inner.stats;
        ExecStats {
            committed: s.committed.load(Ordering::Relaxed),
            aborted: s.aborted.load(Ordering::Relaxed),
            attempts: s.attempts.load(Ordering::Relaxed),
            conflict_retries: s.conflict_retries.load(Ordering::Relaxed),
            starved: s.starved.load(Ordering::Relaxed),
            wal_forces: s.wal_forces.load(Ordering::Relaxed),
            group_commits: s.group_commits.load(Ordering::Relaxed),
            commits_grouped: s.commits_grouped.load(Ordering::Relaxed),
            max_group_size: s.max_group_size.load(Ordering::Relaxed),
            deadlock_victims: s.deadlock_victims.load(Ordering::Relaxed),
        }
    }

    /// Scheduler wait-queue counters.
    pub fn wait_stats(&self) -> WaitStats {
        self.inner
            .sched
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .wait_stats()
    }

    /// Buffer-pool hit/miss counters summed over shards.
    pub fn pool_hit_miss(&self) -> (u64, u64) {
        self.inner.shards.hit_miss()
    }

    /// The observability registry the pipeline publishes into (same
    /// registry as [`ExecConfig::obs`]). Counters/histograms of note:
    /// `txn.commits_acked`, `txn.commit_us`, `group.completions`,
    /// `group.batch_size`, `group.dwell_us`, per-stream
    /// `wal.fragments_enqueued.s{i}` / `wal.fragments_appended.s{i}` /
    /// `wal.forces.s{i}` / `wal.force_us.s{i}`, the per-stream
    /// `appender.health.s{i}` gauges, and the failover family:
    /// `failover.quarantined`, `failover.reroutes`,
    /// `failover.rerouted_fragments`, `failover.degraded_rejects`,
    /// `failover.rejoins`, `fleet.parks` / `fleet.unparks`,
    /// `failover.live_streams` and `fleet.parked_streams` (gauges),
    /// `failover.detect_us`, `failover.reroute_us` and
    /// `failover.catchup_us` (histograms).
    pub fn obs(&self) -> &Registry {
        &self.inner.obs
    }

    /// Quiesce the appender queues: force every live stream through its
    /// last issued ticket. A force completes only after all earlier
    /// appends are processed, so after this returns
    /// `wal.fragments_appended.s{i}` has caught up with
    /// `wal.fragments_enqueued.s{i}` on every live stream — the state
    /// the conservation-law assertions need. Quarantined streams are
    /// skipped: their queues can never drain.
    pub fn drain_appenders(&self) -> Result<(), ExecError> {
        for i in 0..self.inner.appenders.len() {
            let appender = self.inner.appenders.get(i);
            if appender.is_quarantined() {
                continue;
            }
            appender.force_through(appender.tickets_issued())?;
        }
        Ok(())
    }

    /// Publish the buffer-pool shard counters as gauges and take a
    /// [`MetricsSnapshot`]. Pool counters live as plain integers inside
    /// the shard mutexes (storage stays observability-free), so they are
    /// copied out here rather than updated on the hot path.
    pub fn metrics(&self) -> MetricsSnapshot {
        let obs = &self.inner.obs;
        let (mut hits, mut misses, mut lookups, mut evictions) = (0u64, 0u64, 0u64, 0u64);
        for s in self.inner.shards.shard_stats() {
            obs.gauge(&format!("pool.s{}.hits", s.shard)).set(s.hits);
            obs.gauge(&format!("pool.s{}.misses", s.shard))
                .set(s.misses);
            obs.gauge(&format!("pool.s{}.lookups", s.shard))
                .set(s.lookups);
            obs.gauge(&format!("pool.s{}.evictions", s.shard))
                .set(s.evictions);
            hits += s.hits;
            misses += s.misses;
            lookups += s.lookups;
            evictions += s.evictions;
        }
        obs.gauge("pool.hits").set(hits);
        obs.gauge("pool.misses").set(misses);
        obs.gauge("pool.lookups").set(lookups);
        obs.gauge("pool.evictions").set(evictions);
        obs.snapshot()
    }

    /// Stop the supervisor, the daemon, and the appender threads,
    /// surfacing any error the pipeline hit. The database is consumed
    /// (its disks die with it — take a [`ExecDb::crash_image`] first to
    /// keep the durable state).
    pub fn shutdown(mut self) -> Result<(), ExecError> {
        self.stop_threads();
        Ok(())
    }

    fn stop_threads(&mut self) {
        self.sup_stop.store(true, Ordering::Release);
        if let Some(supervisor) = self.supervisor.take() {
            let _ = supervisor.join();
        }
        self.commit_tx = None; // daemon exits on channel close
        if let Some(daemon) = self.daemon.take() {
            let _ = daemon.join();
        }
        // appender threads exit via LogAppender::drop when Inner drops
    }
}

impl Drop for ExecDb {
    fn drop(&mut self) {
        self.stop_threads();
    }
}

/// Transaction scope handed to [`ExecDb::run_txn`] bodies.
pub struct ExecCtx<'a> {
    db: &'a ExecDb,
    txn: &'a mut Txn,
}

impl ExecCtx<'_> {
    /// Transaction id.
    pub fn id(&self) -> u64 {
        self.txn.id
    }

    /// Read under a shared lock.
    pub fn read(&mut self, page: u64, offset: usize, len: usize) -> Result<Vec<u8>, ExecError> {
        self.db.read(self.txn, page, offset, len)
    }

    /// Write under an exclusive lock.
    pub fn write(&mut self, page: u64, offset: usize, data: &[u8]) -> Result<(), ExecError> {
        self.db.write(self.txn, page, offset, data)
    }

    /// Add `delta` (wrapping) to the u64 at `offset` under an exclusive
    /// lock — one logical op on the command record under deferred
    /// capture (see [`ExecDb::add_u64`]).
    pub fn add_u64(&mut self, page: u64, offset: usize, delta: u64) -> Result<(), ExecError> {
        self.db.add_u64(self.txn, page, offset, delta)
    }
}

/// Read-only snapshot scope handed to [`ExecDb::run_ro_txn`] bodies.
/// Every read resolves against the same snapshot LSN, so the body sees
/// one transaction-consistent state of the database no matter how many
/// commits publish while it runs.
pub struct SnapshotCtx<'a> {
    db: &'a ExecDb,
    snap: Snapshot,
}

impl SnapshotCtx<'_> {
    /// The snapshot LSN this scope reads as-of.
    pub fn snapshot_lsn(&self) -> u64 {
        self.snap.lsn()
    }

    /// Read `len` bytes at `offset` of `page` from the snapshot — no
    /// locks, no waiting. A page with no committed version at or below
    /// the snapshot LSN reads as zeroes (see [`ExecDb::run_ro_txn`]).
    pub fn read(&self, page: u64, offset: usize, len: usize) -> Result<Vec<u8>, ExecError> {
        self.db.check_bounds(page, offset, len)?;
        Ok(match self.db.inner.mvcc.read_at(PageId(page), &self.snap) {
            Some(p) => p.read_at(offset, len).to_vec(),
            None => vec![0u8; len],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmdb_wal::WalDb;

    fn small_cfg() -> ExecConfig {
        ExecConfig {
            wal: WalConfig {
                data_pages: 64,
                pool_frames: 16,
                log_streams: 3,
                log_frames: 4096,
                seed: 42,
                ..WalConfig::default()
            },
            pool_shards: 4,
            ..ExecConfig::default()
        }
    }

    #[test]
    fn single_txn_commits_and_recovers() {
        let db = ExecDb::new(small_cfg());
        let mut t = db.begin(0);
        db.write(&mut t, 3, 0, b"hello").unwrap();
        db.commit(t).unwrap().wait().unwrap();
        let image = db.crash_image().unwrap();
        let (mut recovered, report) = WalDb::recover(image, small_cfg().wal).unwrap();
        assert_eq!(report.redone_updates, 1);
        let t2 = recovered.begin();
        assert_eq!(recovered.read(t2, 3, 0, 5).unwrap(), b"hello");
    }

    #[test]
    fn abort_restores_before_image() {
        let db = ExecDb::new(small_cfg());
        let mut t = db.begin(0);
        db.write(&mut t, 1, 0, b"aaaa").unwrap();
        db.commit(t).unwrap().wait().unwrap();
        let mut t = db.begin(0);
        db.write(&mut t, 1, 0, b"bbbb").unwrap();
        db.abort(t).unwrap();
        let mut t = db.begin(0);
        assert_eq!(db.read(&mut t, 1, 0, 4).unwrap(), b"aaaa");
        db.commit(t).unwrap().wait().unwrap();
    }

    #[test]
    fn uncommitted_txn_invisible_after_crash() {
        let db = ExecDb::new(small_cfg());
        let mut t1 = db.begin(0);
        db.write(&mut t1, 2, 0, b"keep").unwrap();
        db.commit(t1).unwrap().wait().unwrap();
        let mut t2 = db.begin(1);
        db.write(&mut t2, 5, 0, b"lose").unwrap();
        // no commit for t2 — crash now
        let image = db.crash_image().unwrap();
        let (mut recovered, _) = WalDb::recover(image, small_cfg().wal).unwrap();
        let t = recovered.begin();
        assert_eq!(recovered.read(t, 2, 0, 4).unwrap(), b"keep");
        assert_eq!(recovered.read(t, 5, 0, 4).unwrap(), vec![0u8; 4]);
    }

    #[test]
    fn eviction_pressure_preserves_wal_rule() {
        // pool far smaller than the working set forces steady evictions
        let mut cfg = small_cfg();
        cfg.wal.pool_frames = 4;
        cfg.pool_shards = 2;
        let db = ExecDb::new(cfg.clone());
        for round in 0..4u8 {
            // one transaction touching 8× the pool: evictions must flush
            // pages whose fragments are appended but not yet forced
            let mut t = db.begin(0);
            for page in 0..32u64 {
                db.write(&mut t, page, 0, &[round; 8]).unwrap();
            }
            db.commit(t).unwrap().wait().unwrap();
        }
        assert!(db.stats().wal_forces > 0, "evictions must have forced");
        let image = db.crash_image().unwrap();
        let (mut recovered, _) = WalDb::recover(image, cfg.wal).unwrap();
        let t = recovered.begin();
        for page in 0..32u64 {
            assert_eq!(recovered.read(t, page, 0, 8).unwrap(), vec![3u8; 8]);
        }
    }

    #[test]
    fn concurrent_writers_group_commit() {
        let db = Arc::new(ExecDb::new(small_cfg()));
        crossbeam::thread::scope(|s| {
            for w in 0..4usize {
                let db = Arc::clone(&db);
                s.spawn(move |_| {
                    for i in 0..25u64 {
                        let page = (w as u64) * 16 + (i % 16);
                        db.run_txn(w, |ctx| ctx.write(page, 0, &i.to_le_bytes()))
                            .unwrap();
                    }
                });
            }
        })
        .unwrap();
        let stats = db.stats();
        assert_eq!(stats.committed, 100);
        assert!(stats.group_commits <= stats.commits_grouped);
    }

    #[test]
    fn deadlock_is_broken_and_both_txns_finish() {
        let db = Arc::new(ExecDb::new(small_cfg()));
        // classic crossover: worker 0 writes P then Q, worker 1 writes Q
        // then P — must terminate via victimisation + retry
        crossbeam::thread::scope(|s| {
            for (w, (a, b)) in [(7u64, 9u64), (9, 7)].into_iter().enumerate() {
                let db = Arc::clone(&db);
                s.spawn(move |_| {
                    for i in 0..20u64 {
                        db.run_txn(w, |ctx| {
                            ctx.write(a, 0, &i.to_le_bytes())?;
                            ctx.write(b, 8, &i.to_le_bytes())
                        })
                        .unwrap();
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(db.stats().committed, 40);
    }

    #[test]
    fn killed_stream_reroutes_and_acked_commits_recover() {
        let cfg = small_cfg(); // 3 streams
        let db = ExecDb::new(cfg.clone());
        // phase 1: healthy commits spread across all streams
        for i in 0..12u64 {
            db.run_txn(i as usize, |ctx| ctx.write(i, 0, &(0xA0 | i).to_le_bytes()))
                .unwrap();
        }
        // kill stream 0's device: every write from now on fails
        db.inject_stream_fault(0, FaultPlan::new().fail_from_write(0))
            .unwrap();
        // phase 2: every transaction must still land — those routed to
        // the dead stream fail, quarantine it, and retry on survivors
        for i in 0..24u64 {
            db.run_txn(i as usize, |ctx| {
                ctx.write(24 + i, 0, &(0xB0 | i).to_le_bytes())
            })
            .unwrap();
        }
        assert_eq!(db.stats().committed, 36);
        assert!(db.live_streams() >= 2, "at most one stream may die");
        // recovery merges the quarantined stream's durable prefix with
        // the survivors: every acked value is present
        let image = db.crash_image().unwrap();
        let (mut recovered, _) = WalDb::recover(image, cfg.wal).unwrap();
        let t = recovered.begin();
        for i in 0..12u64 {
            assert_eq!(
                recovered.read(t, i, 0, 8).unwrap(),
                (0xA0 | i).to_le_bytes(),
                "pre-kill commit on page {i} lost"
            );
        }
        for i in 0..24u64 {
            assert_eq!(
                recovered.read(t, 24 + i, 0, 8).unwrap(),
                (0xB0 | i).to_le_bytes(),
                "post-kill commit on page {} lost",
                24 + i
            );
        }
    }

    #[test]
    fn degraded_mode_sheds_load_below_minimum_fleet() {
        let mut cfg = small_cfg();
        cfg.min_live_streams = 3; // all three streams required
        let db = ExecDb::new(cfg);
        db.run_txn(0, |ctx| ctx.write(1, 0, b"ok")).unwrap();
        assert!(!db.is_degraded());
        db.inner
            .quarantine_stream(1, &AppenderError::ThreadDeath("induced".into()));
        match db.run_txn(0, |ctx| ctx.write(2, 0, b"no")) {
            Err(ExecError::Degraded { live: 2, min: 3 }) => {}
            other => panic!("expected Degraded, got {other:?}"),
        }
        assert!(db.is_degraded());
        assert!(db.obs().snapshot().counter("failover.degraded_rejects") >= Some(1));
    }

    #[test]
    fn rejoin_clears_degraded_and_restores_routing() {
        // Satellite regression: degraded mode used to be a one-way
        // latch — quarantine below min_live_streams set it, nothing
        // cleared it. A rejoin that restores the fleet must un-latch it.
        let mut cfg = small_cfg();
        cfg.min_live_streams = 3;
        let db = ExecDb::new(cfg.clone());
        for i in 0..6u64 {
            db.run_txn(i as usize, |ctx| ctx.write(i, 0, &(0xC0 | i).to_le_bytes()))
                .unwrap();
        }
        db.inner
            .quarantine_stream(1, &AppenderError::ThreadDeath("induced".into()));
        assert!(db.is_degraded());
        assert!(matches!(
            db.run_txn(0, |ctx| ctx.write(20, 0, b"no")),
            Err(ExecError::Degraded { live: 2, min: 3 })
        ));
        let report = db.rejoin_stream(1).expect("healthy device must rejoin");
        assert_eq!(report.stream, 1);
        assert_eq!(report.live_streams, 3);
        assert!(!report.replaced_device);
        assert!(!db.is_degraded(), "rejoin must un-latch degraded mode");
        assert!(!db.is_stream_dead(1));
        // the readmitted fleet serves again, including stream 1
        for i in 0..12u64 {
            db.run_txn(i as usize, |ctx| {
                ctx.write(32 + i, 0, &(0xD0 | i).to_le_bytes())
            })
            .unwrap();
        }
        let snap = db.obs().snapshot();
        assert!(snap.counter("failover.rejoins") >= Some(1));
        assert_eq!(snap.gauge("failover.live_streams"), Some(3));
        // nothing acked before, during, or after the churn is lost
        let image = db.crash_image().unwrap();
        let (mut recovered, _) = WalDb::recover(image, cfg.wal).unwrap();
        let t = recovered.begin();
        for i in 0..6u64 {
            assert_eq!(
                recovered.read(t, i, 0, 8).unwrap(),
                (0xC0 | i).to_le_bytes()
            );
        }
        for i in 0..12u64 {
            assert_eq!(
                recovered.read(t, 32 + i, 0, 8).unwrap(),
                (0xD0 | i).to_le_bytes()
            );
        }
    }

    #[test]
    fn rejoin_refuses_a_still_broken_device_and_stays_quarantined() {
        let cfg = small_cfg();
        let db = ExecDb::new(cfg);
        db.inject_stream_fault(0, FaultPlan::new().fail_from_write(0))
            .unwrap();
        // drive work until the stream is quarantined
        for i in 0..24u64 {
            db.run_txn(i as usize, |ctx| ctx.write(i, 0, b"x")).unwrap();
        }
        let t0 = Instant::now();
        while !db.is_stream_dead(0) && t0.elapsed() < Duration::from_secs(5) {
            db.run_txn(0, |ctx| ctx.write(1, 0, b"y")).unwrap();
        }
        assert!(db.is_stream_dead(0));
        let err = db.rejoin_stream(0).unwrap_err();
        match err {
            ExecError::Rejoin { stream: 0, reason } => {
                assert!(
                    reason.contains("device probe"),
                    "unexpected reason: {reason}"
                )
            }
            other => panic!("expected Rejoin, got {other:?}"),
        }
        assert!(db.is_stream_dead(0), "failed rejoin must leave quarantine");
        // the vaulted durable prefix still serves crash images
        let image = db.crash_image().unwrap();
        assert_eq!(image.logs.len(), 3);
        // rejoining a live stream is refused too
        assert!(matches!(
            db.rejoin_stream(1),
            Err(ExecError::Rejoin { stream: 1, .. })
        ));
    }

    #[test]
    fn orphaned_fragments_reroute_after_rejoin() {
        // A transaction writes a fragment that is still volatile when
        // its stream dies; the stream rejoins (volatile tail lost, the
        // ticket now orphaned) before the transaction commits. The
        // commit path must re-append the orphan under a new ticket —
        // against the rejoined incarnation itself — and still land.
        let cfg = small_cfg();
        let db = ExecDb::new(cfg.clone());
        for i in 0..6u64 {
            db.run_txn(i as usize, |ctx| ctx.write(i, 0, &(0xE0 | i).to_le_bytes()))
                .unwrap();
        }
        let mut t = db.begin(0);
        db.write(&mut t, 40, 0, b"orphan-me").unwrap();
        let victim = t.home();
        let old_seq = *t.tickets.get(&victim).expect("fragment ticket");
        db.inner
            .quarantine_stream(victim, &AppenderError::ThreadDeath("induced".into()));
        let report = db.rejoin_stream(victim).unwrap();
        assert!(
            report.orphaned_tickets >= 1,
            "the volatile fragment must be orphaned"
        );
        assert!(db.appender(victim).orphaned(old_seq));
        // commit re-appends the orphan and succeeds
        db.commit(t).unwrap().wait().unwrap();
        let snap = db.obs().snapshot();
        assert!(snap.counter("failover.rerouted_fragments") >= Some(1));
        let image = db.crash_image().unwrap();
        let (mut recovered, _) = WalDb::recover(image, cfg.wal).unwrap();
        let tr = recovered.begin();
        assert_eq!(recovered.read(tr, 40, 0, 9).unwrap(), b"orphan-me");
    }

    #[test]
    fn replace_stream_archives_platter_and_keeps_acked_commits() {
        let cfg = small_cfg();
        let db = ExecDb::new(cfg.clone());
        for i in 0..12u64 {
            db.run_txn(i as usize, |ctx| ctx.write(i, 0, &(0x10 | i).to_le_bytes()))
                .unwrap();
        }
        db.inject_stream_fault(0, FaultPlan::new().fail_from_write(0))
            .unwrap();
        for i in 0..24u64 {
            db.run_txn(i as usize, |ctx| {
                ctx.write(24 + i, 0, &(0x20 | i).to_le_bytes())
            })
            .unwrap();
        }
        let t0 = Instant::now();
        while !db.is_stream_dead(0) && t0.elapsed() < Duration::from_secs(5) {
            db.run_txn(0, |ctx| ctx.write(1, 0, b"y")).unwrap();
        }
        // the device never recovers: swap in a blank one, archive the old
        let report = db.replace_stream(0).unwrap();
        assert!(report.replaced_device);
        assert_eq!(report.live_streams, 3);
        assert!(!db.is_stream_dead(0));
        for i in 0..12u64 {
            db.run_txn(i as usize, |ctx| {
                ctx.write(50 + i, 0, &(0x30 | i).to_le_bytes())
            })
            .unwrap();
        }
        // the crash image carries the archived platter alongside the
        // three live ones; recovery merges all four
        let image = db.crash_image().unwrap();
        assert_eq!(image.logs.len(), 4, "archived platter missing from image");
        let (mut recovered, _) = WalDb::recover(image, cfg.wal).unwrap();
        let t = recovered.begin();
        for i in 0..12u64 {
            assert_eq!(
                recovered.read(t, i, 0, 8).unwrap(),
                (0x10 | i).to_le_bytes()
            );
        }
        for i in 0..24u64 {
            assert_eq!(
                recovered.read(t, 24 + i, 0, 8).unwrap(),
                (0x20 | i).to_le_bytes()
            );
        }
        for i in 0..12u64 {
            assert_eq!(
                recovered.read(t, 50 + i, 0, 8).unwrap(),
                (0x30 | i).to_le_bytes()
            );
        }
    }

    #[test]
    fn park_and_unpark_resize_the_serving_fleet() {
        let cfg = small_cfg(); // 3 streams, min_live 1
        let db = ExecDb::new(cfg);
        for i in 0..6u64 {
            db.run_txn(i as usize, |ctx| ctx.write(i, 0, b"warm"))
                .unwrap();
        }
        assert_eq!(db.park_stream(2).unwrap(), 2);
        assert!(db.is_stream_dead(2), "parked streams leave routing");
        assert_eq!(db.parked_streams(), 1);
        assert!(!db.is_degraded());
        // parked is not quarantined: commits keep flowing, the parked
        // appender still answers forces for its issued tickets
        for i in 0..8u64 {
            db.run_txn(i as usize, |ctx| ctx.write(10 + i, 0, b"park"))
                .unwrap();
        }
        // a parked stream cannot be parked again or rejoined
        assert!(db.park_stream(2).is_err());
        assert!(matches!(
            db.rejoin_stream(2),
            Err(ExecError::Rejoin { stream: 2, .. })
        ));
        // the floor holds: with min_live 1, parking down to one stream is
        // allowed, parking the last is refused
        assert_eq!(db.park_stream(1).unwrap(), 1);
        assert!(db.park_stream(0).is_err());
        assert_eq!(db.unpark_stream(1).unwrap(), 2);
        assert_eq!(db.unpark_stream(2).unwrap(), 3);
        assert_eq!(db.parked_streams(), 0);
        assert!(db.unpark_stream(2).is_err(), "double unpark must fail");
        for i in 0..8u64 {
            db.run_txn(i as usize, |ctx| ctx.write(30 + i, 0, b"back"))
                .unwrap();
        }
        let snap = db.obs().snapshot();
        assert!(snap.counter("fleet.parks") >= Some(2));
        assert!(snap.counter("fleet.unparks") >= Some(2));
        assert_eq!(snap.gauge("fleet.parked_streams"), Some(0));
    }

    #[test]
    fn membership_manager_auto_rejoins_a_recovered_device() {
        // End-to-end tentpole path: device dies mid-run, the fault later
        // clears (operator fixes the platter), and the supervisor's
        // rejoin probe readmits the stream with no explicit call.
        let mut cfg = small_cfg();
        cfg.health_interval_us = 500;
        cfg.rejoin_probe_ms = 20;
        let db = ExecDb::new(cfg.clone());
        for i in 0..6u64 {
            db.run_txn(i as usize, |ctx| ctx.write(i, 0, &(0x40 | i).to_le_bytes()))
                .unwrap();
        }
        // a handle we keep: fail every write from now on, until revived
        let handle = FaultInjector::handle(FaultPlan::new().fail_from_write(0));
        db.inject_stream_fault_handle(0, handle.clone()).unwrap();
        for i in 0..24u64 {
            db.run_txn(i as usize, |ctx| {
                ctx.write(24 + i, 0, &(0x50 | i).to_le_bytes())
            })
            .unwrap();
        }
        let t0 = Instant::now();
        while !db.is_stream_dead(0) && t0.elapsed() < Duration::from_secs(5) {
            db.run_txn(0, |ctx| ctx.write(1, 0, b"y")).unwrap();
        }
        assert!(db.is_stream_dead(0));
        // while broken, probes keep failing and the stream stays out
        std::thread::sleep(Duration::from_millis(80));
        assert!(db.is_stream_dead(0));
        assert!(db.obs().snapshot().counter("failover.rejoin_probes_failed") >= Some(1));
        // the device comes back: clear the fault in place
        handle.lock().revive();
        let t0 = Instant::now();
        while db.is_stream_dead(0) && t0.elapsed() < Duration::from_secs(5) {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(
            !db.is_stream_dead(0),
            "supervisor never rejoined the stream"
        );
        assert_eq!(db.live_streams(), 3);
        for i in 0..12u64 {
            db.run_txn(i as usize, |ctx| {
                ctx.write(50 + i, 0, &(0x60 | i).to_le_bytes())
            })
            .unwrap();
        }
        let image = db.crash_image().unwrap();
        let (mut recovered, _) = WalDb::recover(image, cfg.wal).unwrap();
        let t = recovered.begin();
        for i in 0..6u64 {
            assert_eq!(
                recovered.read(t, i, 0, 8).unwrap(),
                (0x40 | i).to_le_bytes()
            );
        }
        for i in 0..24u64 {
            assert_eq!(
                recovered.read(t, 24 + i, 0, 8).unwrap(),
                (0x50 | i).to_le_bytes()
            );
        }
        for i in 0..12u64 {
            assert_eq!(
                recovered.read(t, 50 + i, 0, 8).unwrap(),
                (0x60 | i).to_le_bytes()
            );
        }
    }

    #[test]
    fn run_txn_does_not_retry_indeterminate_commit_timeout() {
        // A timed-out commit wait leaves the request owned by the
        // group-commit daemon, which commits it once the device stall
        // clears — retrying would apply the transaction twice. run_txn
        // must return the Timeout without re-executing the body.
        let mut cfg = small_cfg();
        cfg.wal.log_streams = 1;
        cfg.commit_timeout_ms = 40;
        let db = ExecDb::new(cfg.clone());
        // stall the first log write (the commit force) past the waiter's
        // deadline, but let it complete; the device stays healthy after
        db.inject_stream_fault(0, FaultPlan::new().stick_write(0, 300))
            .unwrap();
        let bodies = AtomicU64::new(0);
        let err = db
            .run_txn(0, |ctx| {
                bodies.fetch_add(1, Ordering::Relaxed);
                ctx.write(1, 0, b"once")
            })
            .unwrap_err();
        match err {
            ExecError::Timeout { what, .. } => assert_eq!(what, "group commit"),
            other => panic!("expected Timeout, got {other:?}"),
        }
        assert_eq!(
            bodies.load(Ordering::Relaxed),
            1,
            "an indeterminate commit timeout must not re-execute the body"
        );
        // the daemon still owned the request: once the stall cleared the
        // original commit became durable anyway — exactly the outcome a
        // retry would have doubled
        let image = db.crash_image().unwrap();
        let (mut recovered, _) = WalDb::recover(image, cfg.wal).unwrap();
        let t = recovered.begin();
        assert_eq!(recovered.read(t, 1, 0, 4).unwrap(), b"once");
        // the daemon bumps `committed` after the gate releases; give the
        // bookkeeping a moment to land
        let t0 = Instant::now();
        while db.stats().committed != 1 && t0.elapsed() < Duration::from_secs(5) {
            std::thread::yield_now();
        }
        assert_eq!(db.stats().committed, 1);
    }

    #[test]
    fn commit_wait_times_out_with_typed_error_against_stuck_appender() {
        // satellite: the commit-gate timeout path. One stream whose
        // device stalls 2 s per I/O; commit deadline 50 ms.
        let mut cfg = small_cfg();
        cfg.wal.log_streams = 1;
        cfg.commit_timeout_ms = 50;
        cfg.append_wait_ms = 400;
        let db = ExecDb::new(cfg);
        let mut t = db.begin(0);
        db.write(&mut t, 1, 0, b"stuck").unwrap();
        // stall the next log write for 2 s, then fail the device outright
        db.inject_stream_fault(0, FaultPlan::new().stick_write(0, 2_000).fail_from_write(1))
            .unwrap();
        let t0 = Instant::now();
        let err = db.commit(t).unwrap().wait().unwrap_err();
        let waited = t0.elapsed();
        match err {
            ExecError::Timeout { what, waited_ms } => {
                assert_eq!(what, "group commit");
                assert!(waited_ms >= 50);
            }
            other => panic!("expected Timeout, got {other:?}"),
        }
        assert!(
            waited < Duration::from_millis(1_500),
            "wait returned in {waited:?}, after the stall rather than the deadline"
        );
    }

    #[test]
    fn snapshot_reads_see_committed_writes_and_zeroes_elsewhere() {
        let db = ExecDb::new(small_cfg());
        db.run_txn(0, |ctx| ctx.write(3, 10, b"published")).unwrap();
        let bytes = db
            .run_ro_txn(0, |snap| snap.read(3, 10, 9))
            .expect("snapshot read");
        assert_eq!(&bytes, b"published");
        // a page no committed txn ever wrote reads as zeroes
        let zeroes = db.run_ro_txn(0, |snap| snap.read(7, 0, 16)).unwrap();
        assert_eq!(zeroes, vec![0u8; 16]);
        // bounds still enforced
        assert!(db.run_ro_txn(0, |snap| snap.read(999, 0, 1)).is_err());
        let snap = db.obs().snapshot();
        assert_eq!(snap.counter("mvcc.ro_txns"), Some(2));
        assert!(snap.counter("mvcc.snapshots_opened") >= Some(3));
        assert_eq!(snap.gauge("mvcc.snapshots_open"), Some(0));
    }

    #[test]
    fn snapshot_does_not_see_uncommitted_writes_and_never_blocks_on_x_locks() {
        let db = ExecDb::new(small_cfg());
        db.run_txn(0, |ctx| ctx.write(5, 0, b"old")).unwrap();
        // leave a transaction holding the X lock with dirty bytes applied
        let mut t = db.begin(1);
        db.write(&mut t, 5, 0, b"new").unwrap();
        // the snapshot read returns immediately with the committed image
        let t0 = Instant::now();
        let bytes = db.run_ro_txn(2, |snap| snap.read(5, 0, 3)).unwrap();
        assert_eq!(&bytes, b"old", "snapshot leaked an uncommitted write");
        assert!(
            t0.elapsed() < LOCK_WAIT_TIMEOUT / 2,
            "snapshot read appears to have waited on the lock table"
        );
        db.abort(t).unwrap();
        // the aborted write never becomes visible
        let bytes = db.run_ro_txn(2, |snap| snap.read(5, 0, 3)).unwrap();
        assert_eq!(&bytes, b"old");
    }

    #[test]
    fn snapshot_pins_its_view_while_later_commits_publish() {
        let db = ExecDb::new(small_cfg());
        db.run_txn(0, |ctx| ctx.write(1, 0, &[1])).unwrap();
        db.run_ro_txn(0, |snap| {
            assert_eq!(snap.read(1, 0, 1)?[0], 1);
            // commit twice more while this snapshot is open
            db.run_txn(0, |ctx| ctx.write(1, 0, &[2])).unwrap();
            db.run_txn(0, |ctx| ctx.write(1, 0, &[3])).unwrap();
            // still the pinned view
            assert_eq!(snap.read(1, 0, 1)?[0], 1);
            Ok(())
        })
        .unwrap();
        // a fresh snapshot sees the newest commit
        let now = db.run_ro_txn(0, |snap| snap.read(1, 0, 1)).unwrap();
        assert_eq!(now[0], 3);
        // quiesced: GC leaves exactly one live version for the page
        let reclaimed = db.mvcc_gc();
        assert!(reclaimed >= 2, "old pinned versions not reclaimed");
        assert_eq!(db.mvcc().pool().chain_len(PageId(1)), 1);
    }

    fn policy_cfg(logging: LoggingPolicy) -> ExecConfig {
        let mut cfg = small_cfg();
        cfg.wal.logging = logging;
        cfg
    }

    #[test]
    fn command_logged_txns_survive_crash_recovery() {
        let cfg = policy_cfg(LoggingPolicy::Command);
        let db = ExecDb::new(cfg.clone());
        db.run_txn(0, |ctx| {
            ctx.write(3, 0, b"cmd")?;
            ctx.add_u64(4, 0, 7)
        })
        .unwrap();
        db.run_txn(1, |ctx| ctx.add_u64(4, 0, 5)).unwrap();
        // committed effects are visible live, through the pinned pages
        let mut t = db.begin(0);
        assert_eq!(db.read(&mut t, 4, 0, 8).unwrap(), 12u64.to_le_bytes());
        db.commit(t).unwrap().wait().unwrap();
        let snap = db.obs().snapshot();
        assert!(snap.counter("wal.logical_records") >= Some(2));
        assert!(snap.counter("wal.bytes_saved") > Some(0));
        // and re-execution from the command records alone reproduces them
        let image = db.crash_image().unwrap();
        let (mut recovered, report) = WalDb::recover(image, cfg.wal).unwrap();
        assert!(report.logical_commits >= 2);
        assert!(report.reexecuted_ops >= 3);
        // every redo item was an op re-execution: no fragments were logged
        assert_eq!(report.redone_updates, report.reexecuted_ops);
        let t2 = recovered.begin();
        assert_eq!(recovered.read(t2, 3, 0, 3).unwrap(), b"cmd");
        assert_eq!(recovered.read(t2, 4, 0, 8).unwrap(), 12u64.to_le_bytes());
    }

    #[test]
    fn adaptive_policy_decides_per_txn() {
        let cfg = policy_cfg(LoggingPolicy::Adaptive { threshold_pct: 100 });
        let db = ExecDb::new(cfg.clone());
        // small write: the command record undercuts its fragment
        db.run_txn(0, |ctx| ctx.add_u64(1, 0, 9)).unwrap();
        // read-heavy: the read set (8 bytes/page on the command record)
        // outweighs the one small fragment, so this txn spills to physical
        db.run_txn(1, |ctx| {
            for page in 10..30u64 {
                ctx.read(page, 0, 4)?;
            }
            ctx.write(2, 0, b"phys")
        })
        .unwrap();
        let snap = db.obs().snapshot();
        assert!(snap.counter("wal.logical_records") >= Some(1));
        assert!(snap.counter("wal.deferred_spills") >= Some(1));
        let image = db.crash_image().unwrap();
        let (mut recovered, report) = WalDb::recover(image, cfg.wal).unwrap();
        assert!(report.logical_commits >= 1);
        assert!(report.redone_updates >= 1, "spilled txn logged fragments");
        let t = recovered.begin();
        assert_eq!(recovered.read(t, 1, 0, 8).unwrap(), 9u64.to_le_bytes());
        assert_eq!(recovered.read(t, 2, 0, 4).unwrap(), b"phys");
    }

    #[test]
    fn deferred_abort_reverts_in_memory_and_logs_nothing() {
        let cfg = policy_cfg(LoggingPolicy::Command);
        let db = ExecDb::new(cfg.clone());
        db.run_txn(0, |ctx| ctx.write(6, 0, b"base")).unwrap();
        let mut t = db.begin(0);
        db.write(&mut t, 6, 0, b"gone").unwrap();
        db.add_u64(&mut t, 7, 0, 3).unwrap();
        db.abort(t).unwrap();
        let mut t = db.begin(0);
        assert_eq!(db.read(&mut t, 6, 0, 4).unwrap(), b"base");
        assert_eq!(db.read(&mut t, 7, 0, 8).unwrap(), 0u64.to_le_bytes());
        db.commit(t).unwrap().wait().unwrap();
        let image = db.crash_image().unwrap();
        let (mut recovered, report) = WalDb::recover(image, cfg.wal).unwrap();
        // the aborted txn hit the log zero times: no fragments, no CLRs,
        // and exactly the one committed command record to replay
        assert_eq!(report.redone_updates, report.reexecuted_ops);
        assert_eq!(report.undone_updates, 0);
        assert_eq!(report.logical_commits, 1);
        let t2 = recovered.begin();
        assert_eq!(recovered.read(t2, 6, 0, 4).unwrap(), b"base");
        assert_eq!(recovered.read(t2, 7, 0, 8).unwrap(), 0u64.to_le_bytes());
    }

    #[test]
    fn pin_budget_overflow_spills_and_stays_correct() {
        // per-shard budget = 16/4 - 1 = 3 distinct pinned pages; a txn
        // touching 32 pages must spill to physical logging mid-flight
        let cfg = policy_cfg(LoggingPolicy::Command);
        let db = ExecDb::new(cfg.clone());
        db.run_txn(0, |ctx| {
            for page in 0..32u64 {
                ctx.write(page, 0, &page.to_le_bytes())?;
            }
            Ok(())
        })
        .unwrap();
        assert!(db.obs().snapshot().counter("wal.deferred_spills") >= Some(1));
        let image = db.crash_image().unwrap();
        let (mut recovered, _) = WalDb::recover(image, cfg.wal).unwrap();
        let t = recovered.begin();
        for page in 0..32u64 {
            assert_eq!(recovered.read(t, page, 0, 8).unwrap(), page.to_le_bytes());
        }
    }

    #[test]
    fn mixed_policy_workload_recovers_under_concurrency() {
        let cfg = policy_cfg(LoggingPolicy::Adaptive { threshold_pct: 100 });
        let db = Arc::new(ExecDb::new(cfg.clone()));
        crossbeam::thread::scope(|s| {
            for w in 0..4usize {
                let db = Arc::clone(&db);
                s.spawn(move |_| {
                    for i in 0..20u64 {
                        // hot counter page per worker + a private write
                        db.run_txn(w, |ctx| {
                            ctx.add_u64(w as u64, 0, 1)?;
                            ctx.write(8 + w as u64 * 8 + (i % 8), 0, &i.to_le_bytes())
                        })
                        .unwrap();
                    }
                });
            }
        })
        .unwrap();
        let image = db.crash_image().unwrap();
        let (mut recovered, report) = WalDb::recover(image, cfg.wal).unwrap();
        assert!(report.logical_commits > 0, "adaptive never command-logged");
        let t = recovered.begin();
        for w in 0..4u64 {
            assert_eq!(recovered.read(t, w, 0, 8).unwrap(), 20u64.to_le_bytes());
        }
    }
}
