//! The versioned buffer pool: per-page chains of committed page images.
//!
//! Each data page id owns a **version chain** — a vector of
//! `(commit_lsn, Arc<Page>)` entries kept in ascending commit-LSN order.
//! The single publisher (the group-commit daemon, via
//! [`crate::Mvcc::commit`]) appends one entry per page a commit wrote;
//! readers resolve "the newest version at or below my snapshot LSN"
//! with a binary search and clone the [`Arc`], so a page image is never
//! copied on the read path and never freed while any snapshot can still
//! reach it.
//!
//! Chains are bounded by the **GC watermark** (minimum active snapshot
//! LSN, see [`crate::SnapshotRegistry`]): every entry older than the
//! newest entry at or below the watermark is unreachable — any open or
//! future snapshot resolves past it — and is pruned, either inline when
//! a new version of the same page is installed (bounds hot pages under
//! sustained writes) or by a full [`VersionPool::gc`] sweep (reclaims
//! cold pages the write load no longer touches).
//!
//! A page with **no chain** is one no committed transaction has written
//! in this engine's lifetime; readers must treat it as all-zero rather
//! than consult the data disk, because the steal-policy pool may have
//! flushed *uncommitted* images there.

use rmdb_obs::{Counter, Gauge, Histogram, Registry};
use rmdb_storage::{Page, PageId};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

type Chain = Vec<(u64, Arc<Page>)>;

/// Versioned page store for a fixed-size data file.
#[derive(Debug)]
pub struct VersionPool {
    /// One chain per data page id. The per-page latch is held only for
    /// the in-memory push/search/drain — never across I/O — and is
    /// disjoint from the transaction lock table and the commit gate.
    chains: Vec<RwLock<Chain>>,
    installed: Counter,
    pruned: Counter,
    /// Live version entries across all chains; mirrored into the
    /// `mvcc.versions_live` gauge. Conservation: installed == pruned +
    /// live, always.
    live: AtomicU64,
    live_gauge: Gauge,
    pages_versioned: Gauge,
    chain_len: Histogram,
}

impl VersionPool {
    /// A pool covering page ids `0..data_pages`.
    pub fn new(data_pages: usize, obs: &Registry) -> VersionPool {
        VersionPool {
            chains: (0..data_pages).map(|_| RwLock::new(Vec::new())).collect(),
            installed: obs.counter("mvcc.versions_installed"),
            pruned: obs.counter("mvcc.versions_pruned"),
            live: AtomicU64::new(0),
            live_gauge: obs.gauge("mvcc.versions_live"),
            pages_versioned: obs.gauge("mvcc.pages_versioned"),
            chain_len: obs.histogram("mvcc.chain_len"),
        }
    }

    /// Number of page ids this pool covers.
    pub fn pages(&self) -> usize {
        self.chains.len()
    }

    /// Install `pages` as the versions committed at `commit_lsn`, then
    /// inline-prune each touched chain against `watermark`. The single
    /// publisher must call this with strictly ascending `commit_lsn`s
    /// *before* publishing the LSN; page ids out of range are the
    /// caller's bug and panic.
    pub fn install(&self, commit_lsn: u64, pages: &[Arc<Page>], watermark: u64) {
        for page in pages {
            let idx = page.id.0 as usize;
            let mut chain = write_ok(&self.chains[idx]);
            debug_assert!(
                chain.last().is_none_or(|&(lsn, _)| lsn < commit_lsn),
                "version install out of LSN order on page {:?}",
                page.id
            );
            chain.push((commit_lsn, Arc::clone(page)));
            self.installed.inc();
            self.live.fetch_add(1, Ordering::Relaxed);
            let cut = prune_cut(&chain, watermark);
            if cut > 0 {
                chain.drain(..cut);
                self.note_pruned(cut as u64);
            }
            self.chain_len.record(chain.len() as u64);
        }
        self.live_gauge.set(self.live.load(Ordering::Relaxed));
    }

    /// The newest version of `page` at or below snapshot LSN `snap`, or
    /// `None` when no committed version that old exists (the page reads
    /// as all-zero in that snapshot). Out-of-range ids are `None` too so
    /// callers can bounds-check once.
    pub fn read_at(&self, page: PageId, snap: u64) -> Option<Arc<Page>> {
        let chain = read_ok(self.chains.get(page.0 as usize)?);
        let idx = chain.partition_point(|&(lsn, _)| lsn <= snap);
        idx.checked_sub(1).map(|i| Arc::clone(&chain[i].1))
    }

    /// Full sweep: prune every chain against `watermark`, refresh the
    /// `mvcc.pages_versioned` gauge, and return how many versions were
    /// reclaimed. Cheap when there is nothing to do — each chain is
    /// inspected under its read latch first and only write-locked when
    /// it actually has dead versions.
    pub fn gc(&self, watermark: u64) -> u64 {
        let mut reclaimed: u64 = 0;
        let mut versioned: u64 = 0;
        for slot in &self.chains {
            if prune_cut(&read_ok(slot), watermark) > 0 {
                let mut chain = write_ok(slot);
                // recompute under the write latch: an install may have
                // raced in between the two lock acquisitions
                let cut = prune_cut(&chain, watermark);
                chain.drain(..cut);
                reclaimed += cut as u64;
                if !chain.is_empty() {
                    versioned += 1;
                }
            } else if !read_ok(slot).is_empty() {
                versioned += 1;
            }
        }
        if reclaimed > 0 {
            self.note_pruned(reclaimed);
            self.live_gauge.set(self.live.load(Ordering::Relaxed));
        }
        self.pages_versioned.set(versioned);
        reclaimed
    }

    /// Live version entries across all chains.
    pub fn live_versions(&self) -> u64 {
        self.live.load(Ordering::Relaxed)
    }

    /// Current chain length for one page (test/diagnostic aid).
    pub fn chain_len(&self, page: PageId) -> usize {
        self.chains
            .get(page.0 as usize)
            .map_or(0, |slot| read_ok(slot).len())
    }

    fn note_pruned(&self, n: u64) {
        self.pruned.add(n);
        self.live.fetch_sub(n, Ordering::Relaxed);
    }
}

/// How many leading entries of `chain` are dead under `watermark`: all
/// but the newest entry at or below the watermark (which every open and
/// future snapshot still resolves to) and everything newer.
fn prune_cut(chain: &Chain, watermark: u64) -> usize {
    chain
        .partition_point(|&(lsn, _)| lsn <= watermark)
        .saturating_sub(1)
}

/// Poison-tolerant latches: every store leaves the chain consistent, so
/// a panicking holder cannot corrupt it.
fn read_ok<T>(l: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(|e| e.into_inner())
}

fn write_ok<T>(l: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(id: u64, tag: u8) -> Arc<Page> {
        let mut p = Page::new(PageId(id));
        p.write_at(0, &[tag]);
        Arc::new(p)
    }

    #[test]
    fn read_resolves_newest_version_at_or_below_snapshot() {
        let obs = Registry::new();
        let pool = VersionPool::new(4, &obs);
        pool.install(3, &[page(1, 3)], 0);
        pool.install(7, &[page(1, 7)], 0);
        assert!(pool.read_at(PageId(1), 2).is_none(), "before first commit");
        assert_eq!(pool.read_at(PageId(1), 3).unwrap().payload()[0], 3);
        assert_eq!(pool.read_at(PageId(1), 5).unwrap().payload()[0], 3);
        assert_eq!(pool.read_at(PageId(1), 7).unwrap().payload()[0], 7);
        assert_eq!(pool.read_at(PageId(1), 99).unwrap().payload()[0], 7);
        assert!(pool.read_at(PageId(2), 99).is_none(), "never-written page");
        assert!(pool.read_at(PageId(9), 99).is_none(), "out of range");
    }

    #[test]
    fn gc_keeps_newest_at_or_below_watermark() {
        let obs = Registry::new();
        let pool = VersionPool::new(2, &obs);
        for lsn in [2u64, 4, 6, 8] {
            pool.install(lsn, &[page(0, lsn as u8)], 0);
        }
        assert_eq!(pool.chain_len(PageId(0)), 4);
        // a snapshot pinned at 5 must still read the lsn-4 version
        assert_eq!(pool.gc(5), 1, "only the lsn-2 version is dead");
        assert_eq!(pool.read_at(PageId(0), 5).unwrap().payload()[0], 4);
        assert_eq!(pool.read_at(PageId(0), 9).unwrap().payload()[0], 8);
        // watermark past everything: all but the newest version dies
        assert_eq!(pool.gc(20), 2);
        assert_eq!(pool.chain_len(PageId(0)), 1);
        assert_eq!(pool.read_at(PageId(0), 20).unwrap().payload()[0], 8);
        assert_eq!(pool.gc(20), 0, "idempotent once drained");
    }

    #[test]
    fn inline_prune_bounds_hot_chains() {
        let obs = Registry::new();
        let pool = VersionPool::new(1, &obs);
        for lsn in 1..=100u64 {
            // watermark trails by 1, as when a single snapshot is always
            // open just behind the publisher
            pool.install(lsn, &[page(0, 0)], lsn.saturating_sub(1));
            assert!(pool.chain_len(PageId(0)) <= 2, "chain unbounded at {lsn}");
        }
    }

    #[test]
    fn conservation_installed_equals_pruned_plus_live() {
        let obs = Registry::new();
        let pool = VersionPool::new(8, &obs);
        for lsn in 1..=50u64 {
            pool.install(lsn, &[page(lsn % 8, 0), page((lsn + 3) % 8, 0)], 0);
            if lsn % 10 == 0 {
                pool.gc(lsn);
            }
        }
        pool.gc(50);
        let snap = obs.snapshot();
        let installed = snap.counter("mvcc.versions_installed").unwrap_or(0);
        let pruned = snap.counter("mvcc.versions_pruned").unwrap_or(0);
        assert_eq!(installed, 100);
        assert_eq!(installed, pruned + pool.live_versions());
        assert_eq!(snap.gauge("mvcc.versions_live"), Some(pool.live_versions()));
        // quiesced with watermark at the tip: exactly one live version
        // per versioned page remains
        assert_eq!(pool.live_versions(), 8);
        assert_eq!(snap.gauge("mvcc.pages_versioned"), Some(8));
    }
}
