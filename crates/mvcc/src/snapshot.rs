//! The snapshot registry: who is reading as-of which commit LSN.
//!
//! A **commit LSN** is a position in the total order of published
//! commits (assigned by the single publisher, the group-commit daemon).
//! The registry tracks two things:
//!
//! * `published` — the highest commit LSN whose versions are fully
//!   installed in the version pool. Because the publisher installs a
//!   commit's page versions *before* advancing `published`, any reader
//!   that captures `snap = published` is guaranteed to find, for every
//!   page, the newest version at or below `snap` — a transaction-
//!   consistent prefix of the commit history.
//! * the **active set** — one entry per open [`Snapshot`], keyed by its
//!   snapshot LSN. The minimum key is the **GC watermark**: versions
//!   older than the newest version at or below it can never be read
//!   again (every open snapshot sits at or above the watermark, and
//!   every future snapshot opens at `published`, which is higher still).
//!
//! The watermark is monotone: snapshots always open at the current
//! `published`, so the minimum of the active set never moves backwards,
//! and with the set empty the watermark is `published` itself. Both the
//! `published` read and the active-set insert in [`SnapshotRegistry::
//! begin`] happen under the same mutex that [`SnapshotRegistry::
//! watermark`] takes, so a concurrent GC sweep can never compute a
//! watermark above a snapshot that is mid-registration.

use rmdb_obs::{Counter, Gauge, Histogram, Registry};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Shared snapshot bookkeeping. Cheap handles: wrap in an [`Arc`] (the
/// [`crate::Mvcc`] facade does) so [`Snapshot`] guards can deregister
/// themselves on drop from any thread.
#[derive(Debug)]
pub struct SnapshotRegistry {
    /// Highest fully-installed commit LSN (see module docs).
    published: AtomicU64,
    /// Open snapshots: snapshot LSN → number of snapshots at that LSN.
    active: Mutex<BTreeMap<u64, u64>>,
    opened: Counter,
    open_gauge: Gauge,
    published_gauge: Gauge,
    /// Commit LSNs the snapshot ended behind `published` (staleness at
    /// close) — the bench's "snapshot age".
    age_lsn: Histogram,
    /// Wall-clock snapshot lifetime, µs.
    dwell_us: Histogram,
}

impl SnapshotRegistry {
    /// A fresh registry publishing its metrics into `obs`.
    pub fn new(obs: &Registry) -> Arc<SnapshotRegistry> {
        Arc::new(SnapshotRegistry {
            published: AtomicU64::new(0),
            active: Mutex::new(BTreeMap::new()),
            opened: obs.counter("mvcc.snapshots_opened"),
            open_gauge: obs.gauge("mvcc.snapshots_open"),
            published_gauge: obs.gauge("mvcc.published_lsn"),
            age_lsn: obs.histogram("mvcc.snapshot_age"),
            dwell_us: obs.histogram("mvcc.snapshot_us"),
        })
    }

    /// The highest published commit LSN.
    pub fn published(&self) -> u64 {
        self.published.load(Ordering::Acquire)
    }

    /// Advance `published` to `commit_lsn`. The caller (the single
    /// publisher) must have installed every version of that commit
    /// first; LSNs must be published in ascending order.
    pub fn publish(&self, commit_lsn: u64) {
        debug_assert!(
            commit_lsn > self.published.load(Ordering::Relaxed),
            "commit LSNs must be published in ascending order"
        );
        self.published.store(commit_lsn, Ordering::Release);
        self.published_gauge.set(commit_lsn);
    }

    /// Open a snapshot at the current `published` LSN. The returned
    /// guard pins the GC watermark at or below that LSN until dropped.
    pub fn begin(self: &Arc<Self>) -> Snapshot {
        let lsn = {
            let mut active = lock_ok(&self.active);
            // read `published` under the active-set mutex so a GC sweep
            // serialised against this mutex can never see a watermark
            // above a snapshot that is still registering
            let lsn = self.published.load(Ordering::Acquire);
            *active.entry(lsn).or_insert(0) += 1;
            self.open_gauge.set(Self::open_count_locked(&active));
            lsn
        };
        self.opened.inc();
        Snapshot {
            registry: Arc::clone(self),
            lsn,
            opened: Instant::now(),
        }
    }

    /// The GC watermark: the minimum open snapshot LSN, or `published`
    /// when no snapshot is open. Versions older than the newest version
    /// at or below the watermark are dead.
    pub fn watermark(&self) -> u64 {
        let active = lock_ok(&self.active);
        active
            .keys()
            .next()
            .copied()
            .unwrap_or_else(|| self.published.load(Ordering::Acquire))
    }

    /// Open snapshots right now.
    pub fn open_count(&self) -> u64 {
        Self::open_count_locked(&lock_ok(&self.active))
    }

    fn open_count_locked(active: &BTreeMap<u64, u64>) -> u64 {
        active.values().sum()
    }

    fn close(&self, lsn: u64, opened: Instant) {
        {
            let mut active = lock_ok(&self.active);
            if let Some(n) = active.get_mut(&lsn) {
                *n -= 1;
                if *n == 0 {
                    active.remove(&lsn);
                }
            }
            self.open_gauge.set(Self::open_count_locked(&active));
        }
        let published = self.published.load(Ordering::Acquire);
        self.age_lsn.record(published.saturating_sub(lsn));
        self.dwell_us
            .record(opened.elapsed().as_micros().min(u64::MAX as u128) as u64);
    }
}

/// An open snapshot: a pinned snapshot LSN. Dropping it deregisters the
/// snapshot, letting the GC watermark advance past it.
#[derive(Debug)]
pub struct Snapshot {
    registry: Arc<SnapshotRegistry>,
    lsn: u64,
    opened: Instant,
}

impl Snapshot {
    /// The snapshot LSN: this reader sees exactly the commits at or
    /// below it.
    pub fn lsn(&self) -> u64 {
        self.lsn
    }
}

impl Drop for Snapshot {
    fn drop(&mut self) {
        self.registry.close(self.lsn, self.opened);
    }
}

/// Poison-tolerant lock: the registry's map is consistent at every
/// store, so a panicking holder cannot leave it half-updated.
pub(crate) fn lock_ok<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshots_pin_the_watermark() {
        let obs = Registry::new();
        let reg = SnapshotRegistry::new(&obs);
        reg.publish(5);
        assert_eq!(reg.watermark(), 5, "no snapshots: watermark = published");
        let early = reg.begin();
        assert_eq!(early.lsn(), 5);
        reg.publish(9);
        let late = reg.begin();
        assert_eq!(late.lsn(), 9);
        assert_eq!(
            reg.watermark(),
            5,
            "oldest open snapshot pins the watermark"
        );
        drop(early);
        assert_eq!(reg.watermark(), 9);
        drop(late);
        assert_eq!(reg.watermark(), 9, "empty again: watermark = published");
        assert_eq!(reg.open_count(), 0);
    }

    #[test]
    fn watermark_is_monotone_under_churn() {
        let obs = Registry::new();
        let reg = SnapshotRegistry::new(&obs);
        let mut high = 0u64;
        let mut held: Vec<Snapshot> = Vec::new();
        for i in 1..200u64 {
            reg.publish(i);
            held.push(reg.begin());
            if i % 3 == 0 {
                held.remove(0);
            }
            let w = reg.watermark();
            assert!(w >= high, "watermark moved backwards: {w} < {high}");
            high = w;
        }
    }

    #[test]
    fn close_records_age_and_open_gauge_balances() {
        let obs = Registry::new();
        let reg = SnapshotRegistry::new(&obs);
        reg.publish(10);
        let s = reg.begin();
        reg.publish(17);
        drop(s);
        let snap = obs.snapshot();
        assert_eq!(snap.gauge("mvcc.snapshots_open"), Some(0));
        assert_eq!(snap.counter("mvcc.snapshots_opened"), Some(1));
        let age = snap.histogram("mvcc.snapshot_age").expect("age histogram");
        // closed 7 commit LSNs behind; the estimate is bucket-bounded
        assert_eq!(age.count, 1);
        assert!(age.max >= 7);
    }
}
