//! # rmdb-mvcc — versioned buffer pool with lock-free snapshot reads
//!
//! The paper's differential-file architecture already contains the key
//! observation this crate generalizes: the base file `B` is a
//! stale-but-consistent snapshot that read-only transactions can consume
//! *without coordinating with writers*. MVCC turns that one implicit
//! snapshot into a continuum: every published commit produces a new
//! consistent as-of point, and each read-only transaction picks one at
//! begin and reads it without ever touching the page-level lock table or
//! waiting on the group-commit gate.
//!
//! Three pieces:
//!
//! * [`VersionPool`] — per page id, a small chain of `(commit_lsn,
//!   Arc<Page>)` entries in ascending order. Readers binary-search for
//!   the newest version at or below their snapshot LSN.
//! * [`SnapshotRegistry`] — tracks the highest *published* commit LSN
//!   and the set of open snapshots; their minimum is the **GC
//!   watermark** that bounds every chain.
//! * [`Mvcc`] — the facade the execution layer holds. The group-commit
//!   daemon (the single publisher) calls [`Mvcc::commit`] with the page
//!   images of each durable commit; read-only transactions call
//!   [`Mvcc::begin_snapshot`] + [`Mvcc::read_at`]; a background sweeper
//!   calls [`Mvcc::gc`].
//!
//! ## The snapshot-consistency argument
//!
//! 1. Commits are published by **one** thread (the group-commit daemon),
//!    which serializes on [`Mvcc::commit`]: assign the next commit LSN,
//!    install every page version, *then* advance `published`. So when a
//!    reader captures `snap = published`, every commit ≤ `snap` is fully
//!    installed — no torn commits inside a snapshot.
//! 2. Strict 2PL on the write side holds X locks until the daemon has
//!    published the commit, so two commits touching the same page are
//!    totally ordered — chains are ascending by construction.
//! 3. The GC watermark is the minimum open snapshot LSN (else
//!    `published`), and pruning keeps the newest version at or below the
//!    watermark. Every open snapshot sits at or above the watermark, so
//!    the version it would resolve to survives.
//!
//! "Lock-free" here is a statement about the *transaction-level*
//! machinery: snapshot reads take no page locks, join no lock-table
//! queues, and never wait for a log force. The per-page version chain
//! uses a short read-latch held only for an in-memory binary search —
//! never across I/O and never dependent on writer progress.

mod pool;
mod snapshot;

pub use pool::VersionPool;
pub use snapshot::{Snapshot, SnapshotRegistry};

use rmdb_obs::{EventKind, Registry};
use rmdb_storage::{Page, PageId};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The MVCC facade: version pool + snapshot registry + commit-LSN
/// allocator, with one publish lock making commit publication atomic.
#[derive(Debug)]
pub struct Mvcc {
    pool: VersionPool,
    registry: Arc<SnapshotRegistry>,
    /// Last commit LSN handed out; the publish lock covers its advance.
    last_commit: AtomicU64,
    /// Serializes [`Mvcc::commit`]: LSN assignment, installs, and the
    /// publish store happen as one atomic step with respect to other
    /// committers. In practice the group-commit daemon is the only
    /// caller, so this lock is uncontended insurance.
    publish_lock: Mutex<()>,
    obs: Registry,
}

impl Mvcc {
    /// An empty MVCC store covering page ids `0..data_pages`.
    pub fn new(data_pages: usize, obs: &Registry) -> Mvcc {
        Mvcc {
            pool: VersionPool::new(data_pages, obs),
            registry: SnapshotRegistry::new(obs),
            last_commit: AtomicU64::new(0),
            publish_lock: Mutex::new(()),
            obs: obs.clone(),
        }
    }

    /// Publish one durable commit: assign the next commit LSN, install
    /// `images` as that commit's page versions, advance `published`, and
    /// return the assigned LSN. Call this only once the commit's log
    /// records are durable (the group-commit daemon calls it right after
    /// the force, before releasing the transaction's locks).
    ///
    /// An empty `images` slice still consumes an LSN and publishes it —
    /// harmless, and it keeps the caller simple.
    pub fn commit(&self, images: &[Arc<Page>]) -> u64 {
        let guard = self.publish_lock.lock().unwrap_or_else(|e| e.into_inner());
        let lsn = self.last_commit.load(Ordering::Relaxed) + 1;
        self.pool.install(lsn, images, self.registry.watermark());
        self.last_commit.store(lsn, Ordering::Relaxed);
        self.registry.publish(lsn);
        drop(guard);
        lsn
    }

    /// Open a snapshot at the current published LSN. The guard pins the
    /// GC watermark until dropped.
    pub fn begin_snapshot(&self) -> Snapshot {
        self.registry.begin()
    }

    /// The newest committed version of `page` visible to `snap`, or
    /// `None` when the page has no version that old (it reads as
    /// all-zero — see the [`VersionPool`] docs for why the data disk
    /// must *not* be consulted instead).
    pub fn read_at(&self, page: PageId, snap: &Snapshot) -> Option<Arc<Page>> {
        self.pool.read_at(page, snap.lsn())
    }

    /// Sweep every chain against the current GC watermark; returns the
    /// number of versions reclaimed and emits a
    /// [`EventKind::VersionsPruned`] event when that is non-zero.
    pub fn gc(&self) -> u64 {
        let watermark = self.registry.watermark();
        let reclaimed = self.pool.gc(watermark);
        if reclaimed > 0 {
            self.obs.emit(EventKind::VersionsPruned, 0, 0, 0, reclaimed);
        }
        reclaimed
    }

    /// The snapshot registry (for watermark/published introspection).
    pub fn registry(&self) -> &Arc<SnapshotRegistry> {
        &self.registry
    }

    /// The version pool (for chain introspection in tests and tools).
    pub fn pool(&self) -> &VersionPool {
        &self.pool
    }

    /// Highest published commit LSN.
    pub fn published(&self) -> u64 {
        self.registry.published()
    }

    /// Current GC watermark.
    pub fn watermark(&self) -> u64 {
        self.registry.watermark()
    }

    /// Live version entries across all chains.
    pub fn live_versions(&self) -> u64 {
        self.pool.live_versions()
    }

    /// Open snapshots right now.
    pub fn open_snapshots(&self) -> u64 {
        self.registry.open_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(id: u64, tag: u8) -> Arc<Page> {
        let mut p = Page::new(PageId(id));
        p.write_at(0, &[tag]);
        Arc::new(p)
    }

    #[test]
    fn snapshot_sees_prefix_of_commits_and_never_moves() {
        let obs = Registry::new();
        let mvcc = Mvcc::new(8, &obs);
        let l1 = mvcc.commit(&[page(0, 1), page(1, 1)]);
        assert_eq!(l1, 1);
        let snap = mvcc.begin_snapshot();
        let l2 = mvcc.commit(&[page(0, 2)]);
        assert_eq!(l2, 2);
        // the open snapshot still reads the pre-commit-2 world
        assert_eq!(mvcc.read_at(PageId(0), &snap).unwrap().payload()[0], 1);
        assert_eq!(mvcc.read_at(PageId(1), &snap).unwrap().payload()[0], 1);
        assert!(mvcc.read_at(PageId(2), &snap).is_none(), "never committed");
        // a fresh snapshot sees commit 2
        let snap2 = mvcc.begin_snapshot();
        assert_eq!(mvcc.read_at(PageId(0), &snap2).unwrap().payload()[0], 2);
    }

    #[test]
    fn gc_respects_open_snapshots_then_reclaims() {
        let obs = Registry::new();
        let mvcc = Mvcc::new(4, &obs);
        mvcc.commit(&[page(0, 1)]);
        let pinned = mvcc.begin_snapshot();
        mvcc.commit(&[page(0, 2)]);
        mvcc.commit(&[page(0, 3)]);
        assert_eq!(mvcc.gc(), 0, "pinned snapshot keeps every version alive");
        assert_eq!(mvcc.read_at(PageId(0), &pinned).unwrap().payload()[0], 1);
        drop(pinned);
        assert_eq!(
            mvcc.gc(),
            2,
            "watermark jumps to published; old versions die"
        );
        assert_eq!(mvcc.live_versions(), 1);
        let snap = obs.snapshot();
        assert_eq!(
            snap.counter("mvcc.versions_installed"),
            Some(snap.counter("mvcc.versions_pruned").unwrap_or(0) + mvcc.live_versions()),
            "conservation: installed == pruned + live"
        );
    }

    #[test]
    fn concurrent_readers_see_consistent_two_page_invariant() {
        // writers keep moving value between two pages so the sum is
        // invariant per commit; readers must never observe a torn pair
        let obs = Registry::new();
        let mvcc = Arc::new(Mvcc::new(2, &obs));
        let total: u8 = 100;
        let seed = |a: u8| vec![page(0, a), page(1, total - a)];
        mvcc.commit(&seed(50));
        let stop = Arc::new(AtomicU64::new(0));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let mvcc = Arc::clone(&mvcc);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut checked = 0u64;
                    while stop.load(Ordering::Acquire) == 0 {
                        let snap = mvcc.begin_snapshot();
                        let a = mvcc.read_at(PageId(0), &snap).unwrap().payload()[0];
                        let b = mvcc.read_at(PageId(1), &snap).unwrap().payload()[0];
                        assert_eq!(a as u16 + b as u16, total as u16, "torn snapshot");
                        checked += 1;
                    }
                    checked
                })
            })
            .collect();
        for i in 0..2_000u64 {
            let a = (i % 99) as u8 + 1;
            mvcc.commit(&seed(a));
            if i % 64 == 0 {
                mvcc.gc();
            }
        }
        stop.store(1, Ordering::Release);
        let checked: u64 = readers.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(checked > 0, "readers never got a snapshot in");
        mvcc.gc();
        assert_eq!(mvcc.live_versions(), 2, "quiesced: one version per page");
    }
}
