//! In-memory stable storage with crash-snapshot semantics.
//!
//! A [`MemDisk`] is an array of frames. A frame write is durable and atomic
//! — exactly the assumption every recovery mechanism in the paper makes
//! about a single-page disk write. Crashes are modelled *outside* the disk:
//! volatile state (buffer pools, in-memory page tables, partially assembled
//! log pages) lives in the recovery managers, so "crash at instant t" is
//! simply "take [`MemDisk::snapshot`] at t, drop the manager, run recovery
//! against the snapshot".
//!
//! For torn-page experiments, [`MemDisk::write_partial`] deposits only a
//! prefix of a frame, as a crash in the middle of a sector transfer would;
//! [`crate::page::Page::from_frame`]'s checksum then flags the frame.

use crate::error::StorageError;
use crate::fault::{FaultHandle, WriteApply};
use crate::page::{Page, FRAME_SIZE};
use std::sync::atomic::{AtomicU64, Ordering};

/// An in-memory array of durable frames.
///
/// ```
/// use rmdb_storage::{MemDisk, Page, PageId};
///
/// let mut disk = MemDisk::new(8);
/// let mut page = Page::new(PageId(3));
/// page.write_at(0, b"durable");
/// disk.write_page(3, &page).unwrap();
///
/// let crash = disk.snapshot();          // 💥 the crash-injection primitive
/// assert_eq!(crash.read_page(3).unwrap().read_at(0, 7), b"durable");
/// ```
/// The I/O counters are atomics (not `Cell`) so a `MemDisk` is `Sync`:
/// parallel restart workers read pages from one shared data disk through
/// `&MemDisk` without any coordination beyond the counters themselves.
pub struct MemDisk {
    frames: Vec<Option<Box<[u8; FRAME_SIZE]>>>,
    reads: AtomicU64,
    writes: AtomicU64,
    forces: AtomicU64,
    /// Shared fault injector; cloning the disk shares it, snapshotting
    /// sheds it (a recovered image is a clean device).
    faults: Option<FaultHandle>,
}

impl Clone for MemDisk {
    /// Deep-copies the frames and gives the clone its **own** counters,
    /// seeded from point-in-time `Relaxed` loads of the original's.
    ///
    /// Coherence caveat: the three counters are independent atomics, so a
    /// clone taken *while other threads are mid-I/O on the original* may
    /// observe them from slightly different instants (e.g. a read counted
    /// but not its paired write yet). There is no way to read them as one
    /// consistent tuple without adding a lock to every I/O, and no caller
    /// needs one: clones are taken from quiesced disks, and the counters
    /// are monotonic accounting, not invariants. What *is* guaranteed —
    /// and regression-tested — is that the clone's counters are fully
    /// independent afterwards: I/O on either side never moves the other's.
    fn clone(&self) -> Self {
        MemDisk {
            frames: self.frames.clone(),
            reads: AtomicU64::new(self.reads.load(Ordering::Relaxed)),
            writes: AtomicU64::new(self.writes.load(Ordering::Relaxed)),
            forces: AtomicU64::new(self.forces.load(Ordering::Relaxed)),
            faults: self.faults.clone(),
        }
    }
}

impl MemDisk {
    /// A disk with `capacity` frames, all unallocated.
    pub fn new(capacity: u64) -> Self {
        MemDisk {
            frames: vec![None; capacity as usize],
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            forces: AtomicU64::new(0),
            faults: None,
        }
    }

    /// Attach a fault injector; every subsequent read/write consults it.
    /// The handle is shared: attach the same one to every disk of a store
    /// so the plan's operation indices span the store's whole I/O stream.
    pub fn attach_faults(&mut self, handle: FaultHandle) {
        self.faults = Some(handle);
    }

    /// Detach the fault injector, returning the disk to clean operation.
    pub fn detach_faults(&mut self) -> Option<FaultHandle> {
        self.faults.take()
    }

    /// Capacity in frames.
    pub fn capacity(&self) -> u64 {
        self.frames.len() as u64
    }

    /// Number of frame reads served (for I/O accounting in tests/benches).
    pub fn reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    /// Number of frame writes performed.
    pub fn writes(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }

    /// Number of [`MemDisk::force`] calls.
    pub fn forces(&self) -> u64 {
        self.forces.load(Ordering::Relaxed)
    }

    /// Force: in-memory writes are durable the moment they return, so
    /// this only counts the call (the modeled rotational service time for
    /// this backend lives in the exec appenders' `force_delay_us`).
    pub fn force(&mut self) -> Result<(), StorageError> {
        self.forces.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn check(&self, addr: u64) -> Result<usize, StorageError> {
        if addr >= self.capacity() {
            Err(StorageError::OutOfRange {
                addr,
                capacity: self.capacity(),
            })
        } else {
            Ok(addr as usize)
        }
    }

    /// Read the raw frame at `addr`.
    pub fn read_frame(&self, addr: u64) -> Result<Box<[u8; FRAME_SIZE]>, StorageError> {
        let i = self.check(addr)?;
        let flip = match &self.faults {
            Some(h) => {
                // the injector lock is released before any scheduled stall
                // so a stuck device never wedges disks sharing the injector
                let d = h.lock().decide_read(addr);
                if d.stall_ms > 0 {
                    std::thread::sleep(std::time::Duration::from_millis(d.stall_ms));
                }
                d.outcome?
            }
            None => None,
        };
        self.reads.fetch_add(1, Ordering::Relaxed);
        let mut frame = self.frames[i]
            .clone()
            .ok_or(StorageError::Unallocated { addr })?;
        if let Some((byte, bit)) = flip {
            frame[byte] ^= 1 << bit;
        }
        Ok(frame)
    }

    /// Whether `addr` has ever been written.
    pub fn is_allocated(&self, addr: u64) -> bool {
        (addr as usize) < self.frames.len() && self.frames[addr as usize].is_some()
    }

    /// Durably and atomically write the raw frame at `addr` — unless an
    /// attached fault plan tears, drops, or fails this write.
    pub fn write_frame(&mut self, addr: u64, frame: &[u8; FRAME_SIZE]) -> Result<(), StorageError> {
        let i = self.check(addr)?;
        let apply = match &self.faults {
            Some(h) => {
                let d = h.lock().decide_write(addr);
                if d.stall_ms > 0 {
                    std::thread::sleep(std::time::Duration::from_millis(d.stall_ms));
                }
                d.outcome?
            }
            None => WriteApply::Full,
        };
        self.writes.fetch_add(1, Ordering::Relaxed);
        match apply {
            WriteApply::Full => self.frames[i] = Some(Box::new(*frame)),
            WriteApply::Prefix(cut) => self.merge_prefix(i, frame, cut),
            WriteApply::Skip => {}
        }
        Ok(())
    }

    /// Fault injection: write only the first `bytes` bytes of `frame`,
    /// leaving the tail as it was (zeros if unallocated) — a torn write.
    ///
    /// Merge semantics: the stored frame afterwards is
    /// `frame[..bytes] ++ old[bytes..]`, where `old` is the previous
    /// contents or all zeros if the frame was unallocated. `bytes` beyond
    /// the frame size is a typed [`StorageError::BadLength`], not a panic.
    pub fn write_partial(
        &mut self,
        addr: u64,
        frame: &[u8; FRAME_SIZE],
        bytes: usize,
    ) -> Result<(), StorageError> {
        if bytes > FRAME_SIZE {
            return Err(StorageError::BadLength {
                len: bytes,
                max: FRAME_SIZE,
            });
        }
        let i = self.check(addr)?;
        // explicit partial writes still advance the op counters and respect
        // crash/transient scheduling; a scheduled tear shortens the prefix
        let apply = match &self.faults {
            Some(h) => {
                let d = h.lock().decide_write(addr);
                if d.stall_ms > 0 {
                    std::thread::sleep(std::time::Duration::from_millis(d.stall_ms));
                }
                d.outcome?
            }
            None => WriteApply::Full,
        };
        self.writes.fetch_add(1, Ordering::Relaxed);
        match apply {
            WriteApply::Full => self.merge_prefix(i, frame, bytes),
            WriteApply::Prefix(cut) => self.merge_prefix(i, frame, cut.min(bytes)),
            WriteApply::Skip => {}
        }
        Ok(())
    }

    fn merge_prefix(&mut self, i: usize, frame: &[u8; FRAME_SIZE], bytes: usize) {
        let mut merged = self.frames[i]
            .take()
            .unwrap_or_else(|| Box::new([0u8; FRAME_SIZE]));
        merged[..bytes].copy_from_slice(&frame[..bytes]);
        self.frames[i] = Some(merged);
    }

    /// Convenience: read and decode a [`Page`], verifying its checksum.
    pub fn read_page(&self, addr: u64) -> Result<Page, StorageError> {
        let frame = self.read_frame(addr)?;
        Page::from_frame(&frame, addr)
    }

    /// Convenience: encode and write a [`Page`].
    pub fn write_page(&mut self, addr: u64, page: &Page) -> Result<(), StorageError> {
        self.write_frame(addr, &page.to_frame())
    }

    /// Capture the exact durable state — the crash-injection primitive.
    ///
    /// The snapshot is an independent disk; mutating either side does not
    /// affect the other. I/O counters reset on the snapshot so recovery
    /// cost can be measured in isolation. Any attached fault injector is
    /// *not* carried over: a snapshot is the durable platter state, and
    /// recovery runs against a clean device — which also makes post-crash
    /// images byte-for-byte reproducible for a given plan.
    pub fn snapshot(&self) -> MemDisk {
        MemDisk {
            frames: self.frames.clone(),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            forces: AtomicU64::new(0),
            faults: None,
        }
    }
}

impl crate::device::BlockDevice for MemDisk {
    fn capacity(&self) -> u64 {
        MemDisk::capacity(self)
    }
    fn is_allocated(&self, addr: u64) -> bool {
        MemDisk::is_allocated(self, addr)
    }
    fn read_frame(&self, addr: u64) -> Result<Box<[u8; FRAME_SIZE]>, StorageError> {
        MemDisk::read_frame(self, addr)
    }
    fn write_frame(&mut self, addr: u64, frame: &[u8; FRAME_SIZE]) -> Result<(), StorageError> {
        MemDisk::write_frame(self, addr, frame)
    }
    fn write_partial(
        &mut self,
        addr: u64,
        frame: &[u8; FRAME_SIZE],
        bytes: usize,
    ) -> Result<(), StorageError> {
        MemDisk::write_partial(self, addr, frame, bytes)
    }
    fn force(&mut self) -> Result<(), StorageError> {
        MemDisk::force(self)
    }
    fn snapshot(&self) -> crate::device::Disk {
        crate::device::Disk::Mem(MemDisk::snapshot(self))
    }
    fn attach_faults(&mut self, handle: FaultHandle) {
        MemDisk::attach_faults(self, handle)
    }
    fn detach_faults(&mut self) -> Option<FaultHandle> {
        MemDisk::detach_faults(self)
    }
    fn reads(&self) -> u64 {
        MemDisk::reads(self)
    }
    fn writes(&self) -> u64 {
        MemDisk::writes(self)
    }
    fn forces(&self) -> u64 {
        MemDisk::forces(self)
    }
    fn kind(&self) -> &'static str {
        "mem"
    }
}

impl std::fmt::Debug for MemDisk {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let allocated = self.frames.iter().filter(|f| f.is_some()).count();
        f.debug_struct("MemDisk")
            .field("capacity", &self.frames.len())
            .field("allocated", &allocated)
            .field("reads", &self.reads.load(Ordering::Relaxed))
            .field("writes", &self.writes.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::{Lsn, PageId};

    #[test]
    fn write_then_read() {
        let mut d = MemDisk::new(16);
        let mut p = Page::new(PageId(3));
        p.write_at(0, b"hello");
        p.lsn = Lsn(1);
        d.write_page(7, &p).unwrap();
        assert_eq!(d.read_page(7).unwrap(), p);
        assert_eq!(d.writes(), 1);
        assert_eq!(d.reads(), 1);
    }

    #[test]
    fn unallocated_read_fails() {
        let d = MemDisk::new(4);
        assert_eq!(
            d.read_frame(2).unwrap_err(),
            StorageError::Unallocated { addr: 2 }
        );
        assert!(!d.is_allocated(2));
    }

    #[test]
    fn out_of_range_rejected() {
        let mut d = MemDisk::new(4);
        assert!(matches!(
            d.read_frame(4),
            Err(StorageError::OutOfRange { .. })
        ));
        let frame = [0u8; FRAME_SIZE];
        assert!(matches!(
            d.write_frame(9, &frame),
            Err(StorageError::OutOfRange { .. })
        ));
    }

    #[test]
    fn snapshot_is_independent() {
        let mut d = MemDisk::new(4);
        let p = Page::new(PageId(1));
        d.write_page(0, &p).unwrap();
        let snap = d.snapshot();
        // overwrite after the crash point
        let mut p2 = Page::new(PageId(1));
        p2.write_at(0, b"post-crash");
        d.write_page(0, &p2).unwrap();
        assert_eq!(snap.read_page(0).unwrap(), p);
        assert_eq!(snap.reads(), 1);
    }

    #[test]
    fn partial_write_is_detected_by_checksum() {
        let mut d = MemDisk::new(4);
        let mut old = Page::new(PageId(2));
        old.write_at(0, &[7u8; 100]);
        old.write_at(2000, &[7u8; 100]);
        d.write_page(1, &old).unwrap();
        let mut new = old.clone();
        new.write_at(0, &[9u8; 100]);
        new.write_at(2000, &[9u8; 100]);
        new.lsn = Lsn(5);
        // only the first 1000 bytes of the new image land: the changed
        // bytes at offset 2000 keep their old contents → torn frame
        d.write_partial(1, &new.to_frame(), 1000).unwrap();
        assert!(matches!(
            d.read_page(1),
            Err(StorageError::Corrupt { addr: 1 })
        ));
    }

    #[test]
    fn partial_write_of_whole_frame_is_fine() {
        let mut d = MemDisk::new(4);
        let p = Page::new(PageId(2));
        d.write_partial(0, &p.to_frame(), FRAME_SIZE).unwrap();
        assert_eq!(d.read_page(0).unwrap(), p);
    }

    #[test]
    fn oversized_partial_write_is_typed_error() {
        let mut d = MemDisk::new(4);
        let frame = [0u8; FRAME_SIZE];
        assert_eq!(
            d.write_partial(0, &frame, FRAME_SIZE + 1),
            Err(StorageError::BadLength {
                len: FRAME_SIZE + 1,
                max: FRAME_SIZE,
            })
        );
        // the failed call must not have touched the frame or the counters
        assert!(!d.is_allocated(0));
        assert_eq!(d.writes(), 0);
    }

    proptest::proptest! {
        /// write_partial merges: result is new[..bytes] ++ old[bytes..],
        /// with old = zeros when the frame was unallocated.
        #[test]
        fn partial_write_merges_prefix_over_old_tail(
            bytes in 0usize..=FRAME_SIZE,
            seed_old in proptest::prelude::any::<u64>(),
            seed_new in proptest::prelude::any::<u64>(),
            allocated in proptest::prelude::any::<bool>(),
        ) {
            fn fill(seed: u64) -> [u8; FRAME_SIZE] {
                let mut f = [0u8; FRAME_SIZE];
                let mut s = seed;
                for chunk in f.chunks_mut(8) {
                    s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    let b = s.to_le_bytes();
                    chunk.copy_from_slice(&b[..chunk.len()]);
                }
                f
            }
            let old = fill(seed_old);
            let new = fill(seed_new);
            let mut d = MemDisk::new(2);
            if allocated {
                d.write_frame(0, &old).unwrap();
            }
            d.write_partial(0, &new, bytes).unwrap();
            let got = d.read_frame(0).unwrap();
            proptest::prop_assert_eq!(&got[..bytes], &new[..bytes]);
            if allocated {
                proptest::prop_assert_eq!(&got[bytes..], &old[bytes..]);
            } else {
                proptest::prop_assert!(got[bytes..].iter().all(|&b| b == 0));
            }
        }
    }

    #[test]
    fn cloned_disk_counters_are_independent() {
        let mut d = MemDisk::new(4);
        let p = Page::new(PageId(1));
        d.write_page(0, &p).unwrap();
        d.read_page(0).unwrap();
        d.force().unwrap();

        let mut c = d.clone();
        // the clone starts from the original's point-in-time counts …
        assert_eq!((c.reads(), c.writes(), c.forces()), (1, 1, 1));
        // … and I/O on either side never moves the other's counters
        c.write_page(1, &p).unwrap();
        c.read_page(1).unwrap();
        c.force().unwrap();
        assert_eq!((d.reads(), d.writes(), d.forces()), (1, 1, 1));
        d.read_page(0).unwrap();
        assert_eq!((c.reads(), c.writes(), c.forces()), (2, 2, 2));
    }

    #[test]
    fn wrong_page_check_via_id() {
        let mut d = MemDisk::new(4);
        let p = Page::new(PageId(10));
        d.write_page(0, &p).unwrap();
        let got = d.read_page(0).unwrap();
        assert_eq!(got.id, PageId(10));
    }
}
