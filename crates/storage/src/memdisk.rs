//! In-memory stable storage with crash-snapshot semantics.
//!
//! A [`MemDisk`] is an array of frames. A frame write is durable and atomic
//! — exactly the assumption every recovery mechanism in the paper makes
//! about a single-page disk write. Crashes are modelled *outside* the disk:
//! volatile state (buffer pools, in-memory page tables, partially assembled
//! log pages) lives in the recovery managers, so "crash at instant t" is
//! simply "take [`MemDisk::snapshot`] at t, drop the manager, run recovery
//! against the snapshot".
//!
//! For torn-page experiments, [`MemDisk::write_partial`] deposits only a
//! prefix of a frame, as a crash in the middle of a sector transfer would;
//! [`crate::page::Page::from_frame`]'s checksum then flags the frame.

use crate::error::StorageError;
use crate::page::{Page, FRAME_SIZE};
use std::cell::Cell;

/// An in-memory array of durable frames.
///
/// ```
/// use rmdb_storage::{MemDisk, Page, PageId};
///
/// let mut disk = MemDisk::new(8);
/// let mut page = Page::new(PageId(3));
/// page.write_at(0, b"durable");
/// disk.write_page(3, &page).unwrap();
///
/// let crash = disk.snapshot();          // 💥 the crash-injection primitive
/// assert_eq!(crash.read_page(3).unwrap().read_at(0, 7), b"durable");
/// ```
#[derive(Clone)]
pub struct MemDisk {
    frames: Vec<Option<Box<[u8; FRAME_SIZE]>>>,
    reads: Cell<u64>,
    writes: Cell<u64>,
}

impl MemDisk {
    /// A disk with `capacity` frames, all unallocated.
    pub fn new(capacity: u64) -> Self {
        MemDisk {
            frames: vec![None; capacity as usize],
            reads: Cell::new(0),
            writes: Cell::new(0),
        }
    }

    /// Capacity in frames.
    pub fn capacity(&self) -> u64 {
        self.frames.len() as u64
    }

    /// Number of frame reads served (for I/O accounting in tests/benches).
    pub fn reads(&self) -> u64 {
        self.reads.get()
    }

    /// Number of frame writes performed.
    pub fn writes(&self) -> u64 {
        self.writes.get()
    }

    fn check(&self, addr: u64) -> Result<usize, StorageError> {
        if addr >= self.capacity() {
            Err(StorageError::OutOfRange {
                addr,
                capacity: self.capacity(),
            })
        } else {
            Ok(addr as usize)
        }
    }

    /// Read the raw frame at `addr`.
    pub fn read_frame(&self, addr: u64) -> Result<Box<[u8; FRAME_SIZE]>, StorageError> {
        let i = self.check(addr)?;
        self.reads.set(self.reads.get() + 1);
        self.frames[i]
            .clone()
            .ok_or(StorageError::Unallocated { addr })
    }

    /// Whether `addr` has ever been written.
    pub fn is_allocated(&self, addr: u64) -> bool {
        (addr as usize) < self.frames.len() && self.frames[addr as usize].is_some()
    }

    /// Durably and atomically write the raw frame at `addr`.
    pub fn write_frame(&mut self, addr: u64, frame: &[u8; FRAME_SIZE]) -> Result<(), StorageError> {
        let i = self.check(addr)?;
        self.writes.set(self.writes.get() + 1);
        self.frames[i] = Some(Box::new(*frame));
        Ok(())
    }

    /// Fault injection: write only the first `bytes` bytes of `frame`,
    /// leaving the tail as it was (zeros if unallocated) — a torn write.
    pub fn write_partial(
        &mut self,
        addr: u64,
        frame: &[u8; FRAME_SIZE],
        bytes: usize,
    ) -> Result<(), StorageError> {
        assert!(bytes <= FRAME_SIZE);
        let i = self.check(addr)?;
        self.writes.set(self.writes.get() + 1);
        let mut merged = self.frames[i]
            .take()
            .unwrap_or_else(|| Box::new([0u8; FRAME_SIZE]));
        merged[..bytes].copy_from_slice(&frame[..bytes]);
        self.frames[i] = Some(merged);
        Ok(())
    }

    /// Convenience: read and decode a [`Page`], verifying its checksum.
    pub fn read_page(&self, addr: u64) -> Result<Page, StorageError> {
        let frame = self.read_frame(addr)?;
        Page::from_frame(&frame, addr)
    }

    /// Convenience: encode and write a [`Page`].
    pub fn write_page(&mut self, addr: u64, page: &Page) -> Result<(), StorageError> {
        self.write_frame(addr, &page.to_frame())
    }

    /// Capture the exact durable state — the crash-injection primitive.
    ///
    /// The snapshot is an independent disk; mutating either side does not
    /// affect the other. I/O counters reset on the snapshot so recovery
    /// cost can be measured in isolation.
    pub fn snapshot(&self) -> MemDisk {
        MemDisk {
            frames: self.frames.clone(),
            reads: Cell::new(0),
            writes: Cell::new(0),
        }
    }
}

impl std::fmt::Debug for MemDisk {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let allocated = self.frames.iter().filter(|f| f.is_some()).count();
        f.debug_struct("MemDisk")
            .field("capacity", &self.frames.len())
            .field("allocated", &allocated)
            .field("reads", &self.reads.get())
            .field("writes", &self.writes.get())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::{Lsn, PageId};

    #[test]
    fn write_then_read() {
        let mut d = MemDisk::new(16);
        let mut p = Page::new(PageId(3));
        p.write_at(0, b"hello");
        p.lsn = Lsn(1);
        d.write_page(7, &p).unwrap();
        assert_eq!(d.read_page(7).unwrap(), p);
        assert_eq!(d.writes(), 1);
        assert_eq!(d.reads(), 1);
    }

    #[test]
    fn unallocated_read_fails() {
        let d = MemDisk::new(4);
        assert_eq!(
            d.read_frame(2).unwrap_err(),
            StorageError::Unallocated { addr: 2 }
        );
        assert!(!d.is_allocated(2));
    }

    #[test]
    fn out_of_range_rejected() {
        let mut d = MemDisk::new(4);
        assert!(matches!(
            d.read_frame(4),
            Err(StorageError::OutOfRange { .. })
        ));
        let frame = [0u8; FRAME_SIZE];
        assert!(matches!(
            d.write_frame(9, &frame),
            Err(StorageError::OutOfRange { .. })
        ));
    }

    #[test]
    fn snapshot_is_independent() {
        let mut d = MemDisk::new(4);
        let p = Page::new(PageId(1));
        d.write_page(0, &p).unwrap();
        let snap = d.snapshot();
        // overwrite after the crash point
        let mut p2 = Page::new(PageId(1));
        p2.write_at(0, b"post-crash");
        d.write_page(0, &p2).unwrap();
        assert_eq!(snap.read_page(0).unwrap(), p);
        assert_eq!(snap.reads(), 1);
    }

    #[test]
    fn partial_write_is_detected_by_checksum() {
        let mut d = MemDisk::new(4);
        let mut old = Page::new(PageId(2));
        old.write_at(0, &[7u8; 100]);
        old.write_at(2000, &[7u8; 100]);
        d.write_page(1, &old).unwrap();
        let mut new = old.clone();
        new.write_at(0, &[9u8; 100]);
        new.write_at(2000, &[9u8; 100]);
        new.lsn = Lsn(5);
        // only the first 1000 bytes of the new image land: the changed
        // bytes at offset 2000 keep their old contents → torn frame
        d.write_partial(1, &new.to_frame(), 1000).unwrap();
        assert!(matches!(
            d.read_page(1),
            Err(StorageError::Corrupt { addr: 1 })
        ));
    }

    #[test]
    fn partial_write_of_whole_frame_is_fine() {
        let mut d = MemDisk::new(4);
        let p = Page::new(PageId(2));
        d.write_partial(0, &p.to_frame(), FRAME_SIZE).unwrap();
        assert_eq!(d.read_page(0).unwrap(), p);
    }

    #[test]
    fn wrong_page_check_via_id() {
        let mut d = MemDisk::new(4);
        let p = Page::new(PageId(10));
        d.write_page(0, &p).unwrap();
        let got = d.read_page(0).unwrap();
        assert_eq!(got.id, PageId(10));
    }
}
