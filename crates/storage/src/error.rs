//! Error type shared by the storage substrate and the recovery crates.

use crate::page::PageId;
use std::fmt;

/// Errors surfaced by the storage substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A read targeted a frame that was never written.
    Unallocated {
        /// The offending frame address.
        addr: u64,
    },
    /// An address was outside the disk.
    OutOfRange {
        /// The offending frame address.
        addr: u64,
        /// Disk capacity in frames.
        capacity: u64,
    },
    /// A frame's checksum did not match its contents (torn or corrupt
    /// write).
    Corrupt {
        /// The offending frame address.
        addr: u64,
    },
    /// A frame held a different page than expected.
    WrongPage {
        /// Page the caller asked for.
        expected: PageId,
        /// Page found in the frame.
        found: PageId,
    },
    /// The buffer pool could not evict (all frames pinned).
    PoolExhausted,
    /// A recovery-protocol invariant was violated; recovery cannot proceed.
    Protocol(&'static str),
    /// A transient device fault (injected): the operation may succeed if
    /// retried.
    Io {
        /// The offending frame address.
        addr: u64,
    },
    /// The device is offline (the fault plan crashed this disk); no further
    /// operation will succeed until recovery runs on a snapshot.
    Offline,
    /// A partial write exceeded the frame size.
    BadLength {
        /// Requested byte count.
        len: usize,
        /// Maximum accepted (the frame size).
        max: usize,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Unallocated { addr } => write!(f, "frame {addr} never written"),
            StorageError::OutOfRange { addr, capacity } => {
                write!(f, "frame {addr} out of range (capacity {capacity})")
            }
            StorageError::Corrupt { addr } => write!(f, "frame {addr} failed checksum"),
            StorageError::WrongPage { expected, found } => {
                write!(f, "expected page {expected:?}, found {found:?}")
            }
            StorageError::PoolExhausted => write!(f, "buffer pool exhausted (all pages pinned)"),
            StorageError::Protocol(msg) => write!(f, "recovery protocol violation: {msg}"),
            StorageError::Io { addr } => write!(f, "transient i/o fault at frame {addr}"),
            StorageError::Offline => write!(f, "device offline (crashed)"),
            StorageError::BadLength { len, max } => {
                write!(f, "partial write of {len} bytes exceeds frame size {max}")
            }
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = StorageError::OutOfRange {
            addr: 9,
            capacity: 4,
        };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('4'));
        let c = StorageError::Corrupt { addr: 3 };
        assert!(c.to_string().contains("checksum"));
    }
}
