//! The pluggable block-device layer: one trait, three backends.
//!
//! Every recovery mechanism in this workspace sits on the same primitive —
//! a device of fixed-size frames where a single-frame write is atomic and a
//! crash preserves exactly the durable state. [`BlockDevice`] names that
//! primitive; [`Disk`] is the concrete, enum-dispatched device every engine
//! holds, so the whole stack (log streams, buffer-pool flush paths, the
//! exec pipeline, parallel restart) is backend-generic without a generic
//! parameter rippling through every struct.
//!
//! Backends:
//!
//! * [`MemDisk`](crate::MemDisk) — the original in-memory array of frames.
//!   Writes are instant; `force` is accounting only. The simulator backend
//!   every existing test ran on, and still the default.
//! * [`FileDisk`](crate::FileDisk) — a real file: `pwrite`-per-frame,
//!   `fdatasync` on [`BlockDevice::force`], crash snapshot via file copy.
//!   This is the backend that turns "modeled durability" into actual
//!   syscalls with actual latencies.
//! * [`NvmeDisk`](crate::NvmeDisk) — an NVMe-class timing model over
//!   in-memory frames: queue-depth-aware service times in the 10–100 µs
//!   band with submission/completion accounting, optionally realtime
//!   (each I/O sleeps its modeled service time) for benchmarks.
//!
//! Fault injection ([`crate::FaultPlan`]) attaches uniformly: the injector
//! decides torn/lost/transient outcomes *before* the backend performs the
//! operation, so a fault plan written against `MemDisk` replays bit-for-bit
//! against a file or the NVMe model.

use crate::error::StorageError;
use crate::fault::FaultHandle;
use crate::filedisk::FileDisk;
use crate::memdisk::MemDisk;
use crate::nvmedisk::{NvmeConfig, NvmeDisk, NvmeModel};
use crate::page::{Page, FRAME_SIZE};
use std::path::PathBuf;
use std::sync::Arc;

/// The storage primitive the recovery architectures are built on.
///
/// Reads take `&self` (parallel restart workers share one data disk across
/// threads); mutations take `&mut self` and are serialised by the owning
/// engine's locking, exactly as with the original `MemDisk`.
pub trait BlockDevice: Send + Sync + std::fmt::Debug {
    /// Capacity in frames.
    fn capacity(&self) -> u64;

    /// Whether `addr` has ever been written.
    fn is_allocated(&self, addr: u64) -> bool;

    /// Read the raw frame at `addr`.
    fn read_frame(&self, addr: u64) -> Result<Box<[u8; FRAME_SIZE]>, StorageError>;

    /// Durably and atomically write the raw frame at `addr` — unless an
    /// attached fault plan tears, drops, or fails this write.
    fn write_frame(&mut self, addr: u64, frame: &[u8; FRAME_SIZE]) -> Result<(), StorageError>;

    /// Write only the first `bytes` bytes of `frame` (a torn write); the
    /// stored frame afterwards is `frame[..bytes] ++ old[bytes..]`.
    fn write_partial(
        &mut self,
        addr: u64,
        frame: &[u8; FRAME_SIZE],
        bytes: usize,
    ) -> Result<(), StorageError>;

    /// Make every completed write durable (fsync on a file backend; a
    /// counted no-op on the in-memory backends, whose writes are durable
    /// the moment they return).
    fn force(&mut self) -> Result<(), StorageError>;

    /// Capture the exact durable state — the crash-injection primitive.
    /// The snapshot is an independent device of the same backend with
    /// counters reset and no fault injector attached.
    fn snapshot(&self) -> Disk;

    /// Attach a fault injector; every subsequent read/write consults it.
    fn attach_faults(&mut self, handle: FaultHandle);

    /// Detach the fault injector, returning the device to clean operation.
    fn detach_faults(&mut self) -> Option<FaultHandle>;

    /// Frame reads served.
    fn reads(&self) -> u64;

    /// Frame writes performed.
    fn writes(&self) -> u64;

    /// Forces issued.
    fn forces(&self) -> u64;

    /// Backend name for reports and bench labels.
    fn kind(&self) -> &'static str;

    /// Read and decode a [`Page`], verifying its checksum.
    fn read_page(&self, addr: u64) -> Result<Page, StorageError> {
        let frame = self.read_frame(addr)?;
        Page::from_frame(&frame, addr)
    }

    /// Encode and write a [`Page`].
    fn write_page(&mut self, addr: u64, page: &Page) -> Result<(), StorageError> {
        self.write_frame(addr, &page.to_frame())
    }
}

/// Which backend to provision when an engine creates its devices.
///
/// Lives in engine configs (`WalConfig`, `ShadowConfig`, …) so a single
/// field switches a whole engine — data disk, doublewrite slots, every log
/// platter — onto a different device class.
#[derive(Clone, Debug, Default)]
pub enum BackendKind {
    /// In-memory frames (the original simulator device).
    #[default]
    Mem,
    /// A real file with pwrite/fdatasync durability. `dir` overrides the
    /// directory the backing files are created in (default: the OS temp
    /// dir). Files are deleted when the [`FileDisk`] drops — including on
    /// panic unwind, so a failing test leaves no litter.
    File {
        /// Directory for backing files (`None` = `std::env::temp_dir()`).
        dir: Option<PathBuf>,
    },
    /// The NVMe-class timing model. Each [`BackendKind::provision`] call
    /// gets its own controller unless `device` pins a shared one — share
    /// it across a fleet's platters and their I/O queues on one another,
    /// which is what makes queue-depth effects visible in the scaling
    /// bench.
    Nvme {
        /// Service-time model parameters.
        cfg: NvmeConfig,
        /// Shared controller; `None` provisions a private one per disk.
        device: Option<Arc<NvmeModel>>,
    },
}

impl BackendKind {
    /// A file backend in the OS temp dir.
    pub fn file() -> Self {
        BackendKind::File { dir: None }
    }

    /// An NVMe backend with a private controller per provisioned disk.
    pub fn nvme(cfg: NvmeConfig) -> Self {
        BackendKind::Nvme { cfg, device: None }
    }

    /// An NVMe backend whose provisioned disks all share one controller
    /// (one submission/completion queue pair, one queue-depth signal).
    pub fn nvme_shared(cfg: NvmeConfig) -> Self {
        let device = Some(Arc::new(NvmeModel::new(cfg)));
        BackendKind::Nvme { cfg, device }
    }

    /// Short name for reports and bench labels.
    pub fn name(&self) -> &'static str {
        match self {
            BackendKind::Mem => "mem",
            BackendKind::File { .. } => "file",
            BackendKind::Nvme { .. } => "nvme",
        }
    }

    /// Provision a fresh, empty device of `frames` frames on this backend.
    pub fn provision(&self, frames: u64) -> Result<Disk, StorageError> {
        Ok(match self {
            BackendKind::Mem => Disk::Mem(MemDisk::new(frames)),
            BackendKind::File { dir } => Disk::File(FileDisk::create(dir.clone(), frames)?),
            BackendKind::Nvme { cfg, device } => {
                let model = device
                    .clone()
                    .unwrap_or_else(|| Arc::new(NvmeModel::new(*cfg)));
                Disk::Nvme(NvmeDisk::on_model(frames, model))
            }
        })
    }
}

/// The concrete device every engine holds: enum dispatch over the three
/// backends. Mirrors the [`BlockDevice`] API as inherent methods so call
/// sites need no trait import.
#[derive(Debug)]
pub enum Disk {
    /// In-memory frames.
    Mem(MemDisk),
    /// Real file, pwrite/fdatasync.
    File(FileDisk),
    /// NVMe-class timing model.
    Nvme(NvmeDisk),
}

impl From<MemDisk> for Disk {
    fn from(d: MemDisk) -> Self {
        Disk::Mem(d)
    }
}

impl From<FileDisk> for Disk {
    fn from(d: FileDisk) -> Self {
        Disk::File(d)
    }
}

impl From<NvmeDisk> for Disk {
    fn from(d: NvmeDisk) -> Self {
        Disk::Nvme(d)
    }
}

macro_rules! each {
    ($self:expr, $d:ident => $body:expr) => {
        match $self {
            Disk::Mem($d) => $body,
            Disk::File($d) => $body,
            Disk::Nvme($d) => $body,
        }
    };
}

impl Disk {
    /// Capacity in frames.
    pub fn capacity(&self) -> u64 {
        each!(self, d => d.capacity())
    }

    /// Whether `addr` has ever been written.
    pub fn is_allocated(&self, addr: u64) -> bool {
        each!(self, d => d.is_allocated(addr))
    }

    /// Read the raw frame at `addr`.
    pub fn read_frame(&self, addr: u64) -> Result<Box<[u8; FRAME_SIZE]>, StorageError> {
        each!(self, d => d.read_frame(addr))
    }

    /// Write the raw frame at `addr` (subject to any attached fault plan).
    pub fn write_frame(&mut self, addr: u64, frame: &[u8; FRAME_SIZE]) -> Result<(), StorageError> {
        each!(self, d => d.write_frame(addr, frame))
    }

    /// Torn write: only the first `bytes` bytes of `frame` land.
    pub fn write_partial(
        &mut self,
        addr: u64,
        frame: &[u8; FRAME_SIZE],
        bytes: usize,
    ) -> Result<(), StorageError> {
        each!(self, d => d.write_partial(addr, frame, bytes))
    }

    /// Make every completed write durable.
    pub fn force(&mut self) -> Result<(), StorageError> {
        each!(self, d => BlockDevice::force(d))
    }

    /// Capture the durable state as an independent device (crash image).
    pub fn snapshot(&self) -> Disk {
        each!(self, d => BlockDevice::snapshot(d))
    }

    /// Attach a fault injector.
    pub fn attach_faults(&mut self, handle: FaultHandle) {
        each!(self, d => d.attach_faults(handle))
    }

    /// Detach the fault injector, if any.
    pub fn detach_faults(&mut self) -> Option<FaultHandle> {
        each!(self, d => d.detach_faults())
    }

    /// Frame reads served.
    pub fn reads(&self) -> u64 {
        each!(self, d => d.reads())
    }

    /// Frame writes performed.
    pub fn writes(&self) -> u64 {
        each!(self, d => d.writes())
    }

    /// Forces issued.
    pub fn forces(&self) -> u64 {
        each!(self, d => BlockDevice::forces(d))
    }

    /// Backend name (`"mem"`, `"file"`, `"nvme"`).
    pub fn kind(&self) -> &'static str {
        each!(self, d => BlockDevice::kind(d))
    }

    /// Read and decode a [`Page`], verifying its checksum.
    pub fn read_page(&self, addr: u64) -> Result<Page, StorageError> {
        let frame = self.read_frame(addr)?;
        Page::from_frame(&frame, addr)
    }

    /// Encode and write a [`Page`].
    pub fn write_page(&mut self, addr: u64, page: &Page) -> Result<(), StorageError> {
        self.write_frame(addr, &page.to_frame())
    }
}

impl BlockDevice for Disk {
    fn capacity(&self) -> u64 {
        Disk::capacity(self)
    }
    fn is_allocated(&self, addr: u64) -> bool {
        Disk::is_allocated(self, addr)
    }
    fn read_frame(&self, addr: u64) -> Result<Box<[u8; FRAME_SIZE]>, StorageError> {
        Disk::read_frame(self, addr)
    }
    fn write_frame(&mut self, addr: u64, frame: &[u8; FRAME_SIZE]) -> Result<(), StorageError> {
        Disk::write_frame(self, addr, frame)
    }
    fn write_partial(
        &mut self,
        addr: u64,
        frame: &[u8; FRAME_SIZE],
        bytes: usize,
    ) -> Result<(), StorageError> {
        Disk::write_partial(self, addr, frame, bytes)
    }
    fn force(&mut self) -> Result<(), StorageError> {
        Disk::force(self)
    }
    fn snapshot(&self) -> Disk {
        Disk::snapshot(self)
    }
    fn attach_faults(&mut self, handle: FaultHandle) {
        Disk::attach_faults(self, handle)
    }
    fn detach_faults(&mut self) -> Option<FaultHandle> {
        Disk::detach_faults(self)
    }
    fn reads(&self) -> u64 {
        Disk::reads(self)
    }
    fn writes(&self) -> u64 {
        Disk::writes(self)
    }
    fn forces(&self) -> u64 {
        Disk::forces(self)
    }
    fn kind(&self) -> &'static str {
        Disk::kind(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PageId;

    #[test]
    fn provision_matches_kind() {
        for (bk, name) in [
            (BackendKind::Mem, "mem"),
            (BackendKind::file(), "file"),
            (BackendKind::nvme(NvmeConfig::default()), "nvme"),
        ] {
            let d = bk.provision(8).unwrap();
            assert_eq!(d.kind(), name);
            assert_eq!(bk.name(), name);
            assert_eq!(d.capacity(), 8);
        }
    }

    #[test]
    fn enum_dispatch_round_trips_each_backend() {
        for bk in [
            BackendKind::Mem,
            BackendKind::file(),
            BackendKind::nvme(NvmeConfig::default()),
        ] {
            let mut d = bk.provision(4).unwrap();
            let mut p = Page::new(PageId(2));
            p.write_at(0, b"via-enum");
            d.write_page(1, &p).unwrap();
            d.force().unwrap();
            assert_eq!(d.read_page(1).unwrap(), p, "{}", d.kind());
            assert_eq!(d.writes(), 1);
            assert_eq!(d.forces(), 1);
        }
    }

    #[test]
    fn shared_nvme_controller_spans_disks() {
        let bk = BackendKind::nvme_shared(NvmeConfig::default());
        let mut a = bk.provision(4).unwrap();
        let mut b = bk.provision(4).unwrap();
        let p = Page::new(PageId(0));
        a.write_page(0, &p).unwrap();
        b.write_page(0, &p).unwrap();
        let (Disk::Nvme(a), Disk::Nvme(b)) = (&a, &b) else {
            panic!("nvme provision produced a non-nvme disk");
        };
        // both disks submitted through the one controller
        assert_eq!(a.model().submissions(), 2);
        assert!(Arc::ptr_eq(a.model(), b.model()));
    }
}
