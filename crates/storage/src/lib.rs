//! Storage substrate for the functional recovery mechanisms.
//!
//! The paper's recovery architectures (parallel logging, shadow paging,
//! differential files) all sit on the same primitive: a disk that stores
//! fixed-size pages, where a single-page write is atomic and everything not
//! yet written to disk is lost in a crash. This crate provides that
//! substrate in memory:
//!
//! * [`page::Page`] — a 4 KB page with id, LSN and checksum header;
//! * [`memdisk::MemDisk`] — an addressable array of frames whose writes are
//!   durable, with [`memdisk::MemDisk::snapshot`] capturing the exact
//!   durable state at an arbitrary instant (the crash-injection primitive
//!   used throughout the recovery tests) and partial-write fault injection
//!   for torn-page scenarios;
//! * [`fault::FaultPlan`] / [`fault::FaultInjector`] — a deterministic,
//!   seeded schedule of torn/lost/transient write faults, read bit flips,
//!   and crash-after-k-writes, attachable to any [`memdisk::MemDisk`];
//! * [`buffer::BufferPool`] — a pin-counted page cache with LRU/clock
//!   eviction that reports evicted dirty pages to the caller so each
//!   recovery manager can enforce its own write-ahead rule.
//!
//! Volatile state lives in the recovery managers (buffer pools, in-memory
//! tables); a crash is modelled by discarding the manager and rebuilding
//! one from a disk snapshot via that architecture's `recover` entry point.

pub mod buffer;
pub mod device;
pub mod error;
pub mod fault;
pub mod filedisk;
pub mod memdisk;
pub mod nvmedisk;
pub mod page;

pub use buffer::{BufferPool, EvictPolicy, Evicted, PoolShard, ShardStats, ShardedPool};
pub use device::{BackendKind, BlockDevice, Disk};
pub use error::StorageError;
pub use fault::{
    read_page_retry, write_page_verified, FaultHandle, FaultInjector, FaultPlan, ReadFault,
    WriteFault,
};
pub use filedisk::FileDisk;
pub use memdisk::MemDisk;
pub use nvmedisk::{NvmeConfig, NvmeDisk, NvmeModel};
pub use page::{Lsn, Page, PageId, FRAME_SIZE, PAYLOAD_SIZE};
