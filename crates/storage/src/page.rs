//! The 4 KB page: id, LSN, checksum header and payload.
//!
//! On-frame layout (little-endian):
//!
//! ```text
//! 0..8    page id
//! 8..16   LSN (page sequence number; used by WAL redo idempotence and by
//!         the version-selection shadow architecture as its "timestamp")
//! 16..24  FNV-1a checksum over the rest of the frame
//! 24..4096 payload (4072 bytes)
//! ```

use crate::error::StorageError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Size of a disk frame in bytes (the paper's 4 KB page).
pub const FRAME_SIZE: usize = 4096;
/// Header bytes preceding the payload.
pub const HEADER_SIZE: usize = 24;
/// Usable payload bytes per page.
pub const PAYLOAD_SIZE: usize = FRAME_SIZE - HEADER_SIZE;

/// Logical page identifier.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct PageId(pub u64);

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Page sequence number: monotonically increasing per page, stamped by the
/// recovery manager on every update.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Lsn(pub u64);

impl Lsn {
    /// The LSN preceding all real LSNs.
    pub const ZERO: Lsn = Lsn(0);

    /// The next LSN.
    pub fn next(self) -> Lsn {
        Lsn(self.0 + 1)
    }
}

/// 64-bit FNV-1a, used as the frame checksum.
///
/// Not cryptographic — it only needs to catch torn writes (a frame half old
/// and half new) with overwhelming probability, which it does.
pub fn fnv1a_64(data: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// An in-memory page: header fields plus payload.
#[derive(Clone, PartialEq, Eq)]
pub struct Page {
    /// Which logical page this is.
    pub id: PageId,
    /// Sequence number of the last update applied.
    pub lsn: Lsn,
    payload: Box<[u8; PAYLOAD_SIZE]>,
}

impl fmt::Debug for Page {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Page")
            .field("id", &self.id)
            .field("lsn", &self.lsn)
            .field("payload", &format!("[{} bytes]", PAYLOAD_SIZE))
            .finish()
    }
}

impl Page {
    /// A fresh all-zero page.
    pub fn new(id: PageId) -> Self {
        Page {
            id,
            lsn: Lsn::ZERO,
            payload: Box::new([0u8; PAYLOAD_SIZE]),
        }
    }

    /// Read-only payload.
    pub fn payload(&self) -> &[u8; PAYLOAD_SIZE] {
        &self.payload
    }

    /// Mutable payload. The caller is responsible for bumping the LSN via
    /// its recovery manager; the page itself never self-stamps.
    pub fn payload_mut(&mut self) -> &mut [u8; PAYLOAD_SIZE] {
        &mut self.payload
    }

    /// Overwrite a byte range of the payload.
    ///
    /// # Panics
    /// If the range exceeds the payload.
    pub fn write_at(&mut self, offset: usize, bytes: &[u8]) {
        self.payload[offset..offset + bytes.len()].copy_from_slice(bytes);
    }

    /// Read a byte range of the payload.
    pub fn read_at(&self, offset: usize, len: usize) -> &[u8] {
        &self.payload[offset..offset + len]
    }

    /// Serialize to a raw frame, computing the checksum.
    pub fn to_frame(&self) -> Box<[u8; FRAME_SIZE]> {
        let mut frame = Box::new([0u8; FRAME_SIZE]);
        frame[0..8].copy_from_slice(&self.id.0.to_le_bytes());
        frame[8..16].copy_from_slice(&self.lsn.0.to_le_bytes());
        // checksum over id+lsn+payload (bytes 0..16 and 24..)
        frame[24..].copy_from_slice(&self.payload[..]);
        let sum = checksum_of(&frame);
        frame[16..24].copy_from_slice(&sum.to_le_bytes());
        frame
    }

    /// Deserialize from a raw frame, verifying the checksum.
    ///
    /// A torn or corrupt frame yields [`StorageError::Corrupt`]; `addr` is
    /// only used for the error message.
    pub fn from_frame(frame: &[u8; FRAME_SIZE], addr: u64) -> Result<Page, StorageError> {
        let stored = u64::from_le_bytes(frame[16..24].try_into().unwrap());
        if checksum_of(frame) != stored {
            return Err(StorageError::Corrupt { addr });
        }
        let id = PageId(u64::from_le_bytes(frame[0..8].try_into().unwrap()));
        let lsn = Lsn(u64::from_le_bytes(frame[8..16].try_into().unwrap()));
        let mut payload = Box::new([0u8; PAYLOAD_SIZE]);
        payload.copy_from_slice(&frame[24..]);
        Ok(Page { id, lsn, payload })
    }
}

/// Checksum of a frame with the checksum field treated as zero.
///
/// The payload is folded in eight bytes at a time: one XOR + multiply per
/// 64-bit word instead of per byte. A torn or flipped frame still always
/// differs — multiplication by an odd prime is injective mod 2^64, so a
/// difference introduced in any word survives every later step. This runs
/// on every page read and write, so log scans and restart pay it for the
/// whole log; the word-wise fold keeps it off the critical path.
fn checksum_of(frame: &[u8; FRAME_SIZE]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = fnv1a_64(&frame[0..16]);
    let mut chunks = frame[24..].chunks_exact(8);
    for chunk in &mut chunks {
        h ^= u64::from_le_bytes(chunk.try_into().unwrap());
        h = h.wrapping_mul(PRIME);
    }
    for &b in chunks.remainder() {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn frame_round_trip() {
        let mut p = Page::new(PageId(42));
        p.lsn = Lsn(7);
        p.write_at(100, b"recovery architectures");
        let frame = p.to_frame();
        let q = Page::from_frame(&frame, 0).unwrap();
        assert_eq!(q, p);
        assert_eq!(q.read_at(100, 22), b"recovery architectures");
    }

    #[test]
    fn corrupt_frame_detected() {
        let p = Page::new(PageId(1));
        let mut frame = p.to_frame();
        frame[2000] ^= 0xff;
        assert_eq!(
            Page::from_frame(&frame, 9),
            Err(StorageError::Corrupt { addr: 9 })
        );
    }

    #[test]
    fn torn_write_detected() {
        let mut old = Page::new(PageId(5));
        old.write_at(0, &[0xAA; 64]);
        old.write_at(3000, &[0xAA; 64]);
        old.lsn = Lsn(1);
        let mut new = old.clone();
        new.write_at(0, &[0xBB; 64]);
        new.write_at(3000, &[0xBB; 64]);
        new.lsn = Lsn(2);
        let old_frame = old.to_frame();
        let new_frame = new.to_frame();
        // first half new, second half old — a torn write
        let mut torn = [0u8; FRAME_SIZE];
        torn[..2048].copy_from_slice(&new_frame[..2048]);
        torn[2048..].copy_from_slice(&old_frame[2048..]);
        assert!(Page::from_frame(&torn, 0).is_err());
    }

    #[test]
    fn header_does_not_alias_payload() {
        let mut p = Page::new(PageId(3));
        p.lsn = Lsn(9);
        p.write_at(0, b"\x00\x00\x00\x00");
        let frame = p.to_frame();
        let q = Page::from_frame(&frame, 0).unwrap();
        assert_eq!(q.id, PageId(3));
        assert_eq!(q.lsn, Lsn(9));
    }

    #[test]
    fn lsn_next_increments() {
        assert_eq!(Lsn::ZERO.next(), Lsn(1));
        assert_eq!(Lsn(41).next(), Lsn(42));
    }

    #[test]
    #[should_panic]
    fn write_past_payload_panics() {
        let mut p = Page::new(PageId(0));
        p.write_at(PAYLOAD_SIZE - 1, &[1, 2]);
    }

    #[test]
    fn fnv_known_vector() {
        // FNV-1a of empty input is the offset basis.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        // differs on any byte change
        assert_ne!(fnv1a_64(b"a"), fnv1a_64(b"b"));
    }

    proptest! {
        #[test]
        fn round_trip_arbitrary(
            id in any::<u64>(),
            lsn in any::<u64>(),
            offset in 0usize..PAYLOAD_SIZE - 64,
            data in proptest::collection::vec(any::<u8>(), 1..64),
        ) {
            let mut p = Page::new(PageId(id));
            p.lsn = Lsn(lsn);
            p.write_at(offset, &data);
            let q = Page::from_frame(&p.to_frame(), 0).unwrap();
            prop_assert_eq!(&q, &p);
        }

        #[test]
        fn single_bitflip_always_detected(
            byte in 0usize..FRAME_SIZE,
            bit in 0u8..8,
        ) {
            let mut p = Page::new(PageId(77));
            p.write_at(0, b"payload");
            let mut frame = p.to_frame();
            frame[byte] ^= 1 << bit;
            prop_assert!(Page::from_frame(&frame, 0).is_err());
        }
    }
}
