//! NVMe-class block device: a queue-depth-aware service-time model over
//! in-memory frames, with submission/completion accounting.
//!
//! The paper's devices are 1985 rotational disks (~28 ms per force); the
//! scaling questions the exec pipeline raises — does group commit still
//! pay at 64 workers? where does the sharded pool saturate? — only have
//! answers relative to a device class. [`NvmeDisk`] models the class that
//! actually ships today: service times in the 10–100 µs band that *grow
//! with queue depth*, so a fleet hammering one controller sees exactly the
//! convoy behaviour a real SSD shows under deep queues.
//!
//! The model is deliberately simple and fully deterministic under a fixed
//! seed **for a sequential caller**: the latency of submission `i` is
//!
//! ```text
//! t(i) = clamp(base_us + per_qd_us·(qd_at_submit − 1) + jitter(seed, i),
//!              base_us, max_us)
//! ```
//!
//! where `jitter` is a splitmix64 hash of the submission index — no wall
//! clock, no global RNG. Under concurrency the queue depth term reflects
//! genuine interleaving (that's the point); the bounds still hold for
//! every sample, which is what the property tests pin down.
//!
//! Each I/O is accounted as submit → (optional realtime sleep of the
//! modeled service time) → transfer → complete. [`NvmeModel::drain`]
//! waits for the queues to empty; at drain, completions always equal
//! submissions — the conservation law the proptest suite checks.
//!
//! Several [`NvmeDisk`]s can share one [`NvmeModel`] (one controller):
//! provision them through
//! [`BackendKind::nvme_shared`](crate::BackendKind::nvme_shared) and the
//! platters of a whole appender fleet queue on one another.

use crate::device::Disk;
use crate::error::StorageError;
use crate::fault::FaultHandle;
use crate::memdisk::MemDisk;
use crate::page::FRAME_SIZE;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Service-time model parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NvmeConfig {
    /// Minimum service time, µs (queue depth 1, no jitter).
    pub base_us: u64,
    /// Added service time per outstanding command already queued, µs.
    pub per_qd_us: u64,
    /// Service-time ceiling, µs — every sample is clamped here.
    pub max_us: u64,
    /// Seed for the per-submission jitter hash.
    pub seed: u64,
    /// When set, each I/O *sleeps* its modeled service time, turning the
    /// model into real backpressure for benchmarks. When clear the model
    /// only accounts, so tests stay fast.
    pub realtime: bool,
}

impl Default for NvmeConfig {
    fn default() -> Self {
        NvmeConfig {
            base_us: 12,
            per_qd_us: 4,
            max_us: 100,
            seed: 0x9E37_79B9_7F4A_7C15,
            realtime: false,
        }
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The controller: submission/completion queues plus latency accounting.
/// Shared (`Arc`) by every namespace ([`NvmeDisk`]) provisioned on it.
#[derive(Debug)]
pub struct NvmeModel {
    cfg: NvmeConfig,
    submitted: AtomicU64,
    completed: AtomicU64,
    inflight: AtomicU64,
    lat_sum_us: AtomicU64,
    lat_min_us: AtomicU64,
    lat_max_us: AtomicU64,
}

impl NvmeModel {
    /// A fresh controller with empty queues.
    pub fn new(cfg: NvmeConfig) -> Self {
        NvmeModel {
            cfg,
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            inflight: AtomicU64::new(0),
            lat_sum_us: AtomicU64::new(0),
            lat_min_us: AtomicU64::new(u64::MAX),
            lat_max_us: AtomicU64::new(0),
        }
    }

    /// The parameters this controller models.
    pub fn config(&self) -> NvmeConfig {
        self.cfg
    }

    /// Submit one command: returns its modeled service time in µs and
    /// records the latency sample. The caller performs the transfer and
    /// then calls [`NvmeModel::complete`].
    pub fn submit(&self) -> u64 {
        let idx = self.submitted.fetch_add(1, Ordering::Relaxed);
        let qd = self.inflight.fetch_add(1, Ordering::Relaxed) + 1;
        let span = self.cfg.max_us.saturating_sub(self.cfg.base_us);
        let jitter = if span == 0 {
            0
        } else {
            // jitter up to a quarter of the band keeps qd the dominant term
            splitmix64(self.cfg.seed ^ idx) % (span / 4 + 1)
        };
        let t = (self.cfg.base_us + self.cfg.per_qd_us.saturating_mul(qd - 1) + jitter)
            .clamp(self.cfg.base_us, self.cfg.max_us);
        self.lat_sum_us.fetch_add(t, Ordering::Relaxed);
        self.lat_min_us.fetch_min(t, Ordering::Relaxed);
        self.lat_max_us.fetch_max(t, Ordering::Relaxed);
        t
    }

    /// Complete the oldest outstanding command.
    pub fn complete(&self) {
        self.inflight.fetch_sub(1, Ordering::Relaxed);
        self.completed.fetch_add(1, Ordering::Relaxed);
    }

    /// Commands submitted since construction.
    pub fn submissions(&self) -> u64 {
        self.submitted.load(Ordering::Relaxed)
    }

    /// Commands completed since construction.
    pub fn completions(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// Commands currently outstanding.
    pub fn queue_depth(&self) -> u64 {
        self.inflight.load(Ordering::Relaxed)
    }

    /// `(min, max)` latency observed, µs; `(0, 0)` before any submission.
    pub fn latency_bounds(&self) -> (u64, u64) {
        let min = self.lat_min_us.load(Ordering::Relaxed);
        if min == u64::MAX {
            (0, 0)
        } else {
            (min, self.lat_max_us.load(Ordering::Relaxed))
        }
    }

    /// Mean modeled latency, µs (0 before any submission).
    pub fn mean_latency_us(&self) -> u64 {
        self.lat_sum_us
            .load(Ordering::Relaxed)
            .checked_div(self.submissions())
            .unwrap_or(0)
    }

    /// Wait (bounded spin) for the queues to empty, then return
    /// `(submissions, completions)` — equal at drain by construction,
    /// since every in-process submit completes once its transfer returns.
    pub fn drain(&self) -> (u64, u64) {
        let mut spins = 0u32;
        while self.inflight.load(Ordering::Acquire) != 0 {
            std::thread::yield_now();
            spins += 1;
            if spins > 1_000_000 {
                break; // a wedged thread owns the command; report as-is
            }
        }
        (self.submissions(), self.completions())
    }
}

/// One namespace on an [`NvmeModel`] controller: in-memory frames whose
/// every I/O pays the controller's modeled service time.
#[derive(Debug)]
pub struct NvmeDisk {
    inner: MemDisk,
    model: Arc<NvmeModel>,
    forces: AtomicU64,
}

impl NvmeDisk {
    /// A fresh namespace of `frames` frames on a private controller.
    pub fn new(frames: u64, cfg: NvmeConfig) -> Self {
        NvmeDisk::on_model(frames, Arc::new(NvmeModel::new(cfg)))
    }

    /// A fresh namespace on an existing (possibly shared) controller.
    pub fn on_model(frames: u64, model: Arc<NvmeModel>) -> Self {
        NvmeDisk {
            inner: MemDisk::new(frames),
            model,
            forces: AtomicU64::new(0),
        }
    }

    /// The controller this namespace submits to.
    pub fn model(&self) -> &Arc<NvmeModel> {
        &self.model
    }

    fn pay(&self) -> ServiceGuard {
        let t = self.model.submit();
        if self.model.cfg.realtime && t > 0 {
            std::thread::sleep(std::time::Duration::from_micros(t));
        }
        ServiceGuard {
            model: Arc::clone(&self.model),
        }
    }

    /// Capacity in frames.
    pub fn capacity(&self) -> u64 {
        self.inner.capacity()
    }

    /// Whether `addr` has ever been written.
    pub fn is_allocated(&self, addr: u64) -> bool {
        self.inner.is_allocated(addr)
    }

    /// Frame reads served.
    pub fn reads(&self) -> u64 {
        self.inner.reads()
    }

    /// Frame writes performed.
    pub fn writes(&self) -> u64 {
        self.inner.writes()
    }

    /// Flush commands issued.
    pub fn forces(&self) -> u64 {
        self.forces.load(Ordering::Relaxed)
    }

    /// Attach a fault injector (decides outcomes before the transfer,
    /// exactly as on the other backends).
    pub fn attach_faults(&mut self, handle: FaultHandle) {
        self.inner.attach_faults(handle);
    }

    /// Detach the fault injector.
    pub fn detach_faults(&mut self) -> Option<FaultHandle> {
        self.inner.detach_faults()
    }

    /// Read the frame at `addr`, paying the modeled service time.
    pub fn read_frame(&self, addr: u64) -> Result<Box<[u8; FRAME_SIZE]>, StorageError> {
        let _svc = self.pay();
        self.inner.read_frame(addr)
    }

    /// Write the frame at `addr`, paying the modeled service time.
    pub fn write_frame(&mut self, addr: u64, frame: &[u8; FRAME_SIZE]) -> Result<(), StorageError> {
        let _svc = self.pay();
        self.inner.write_frame(addr, frame)
    }

    /// Torn write: only the first `bytes` bytes land.
    pub fn write_partial(
        &mut self,
        addr: u64,
        frame: &[u8; FRAME_SIZE],
        bytes: usize,
    ) -> Result<(), StorageError> {
        let _svc = self.pay();
        self.inner.write_partial(addr, frame, bytes)
    }

    /// Flush: an NVMe flush command — one more queued command through the
    /// controller; the frames themselves are already durable on write.
    pub fn force(&mut self) -> Result<(), StorageError> {
        let _svc = self.pay();
        self.forces.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Crash snapshot: the durable frames on a fresh private controller
    /// (queues empty, counters reset, no injector) — recovery's device is
    /// clean and its I/O cost is measured in isolation.
    pub fn snapshot(&self) -> NvmeDisk {
        NvmeDisk {
            inner: self.inner.snapshot(),
            model: Arc::new(NvmeModel::new(self.model.cfg)),
            forces: AtomicU64::new(0),
        }
    }
}

/// Completes the submission when the transfer returns (any path).
struct ServiceGuard {
    model: Arc<NvmeModel>,
}

impl Drop for ServiceGuard {
    fn drop(&mut self) {
        self.model.complete();
    }
}

impl crate::device::BlockDevice for NvmeDisk {
    fn capacity(&self) -> u64 {
        NvmeDisk::capacity(self)
    }
    fn is_allocated(&self, addr: u64) -> bool {
        NvmeDisk::is_allocated(self, addr)
    }
    fn read_frame(&self, addr: u64) -> Result<Box<[u8; FRAME_SIZE]>, StorageError> {
        NvmeDisk::read_frame(self, addr)
    }
    fn write_frame(&mut self, addr: u64, frame: &[u8; FRAME_SIZE]) -> Result<(), StorageError> {
        NvmeDisk::write_frame(self, addr, frame)
    }
    fn write_partial(
        &mut self,
        addr: u64,
        frame: &[u8; FRAME_SIZE],
        bytes: usize,
    ) -> Result<(), StorageError> {
        NvmeDisk::write_partial(self, addr, frame, bytes)
    }
    fn force(&mut self) -> Result<(), StorageError> {
        NvmeDisk::force(self)
    }
    fn snapshot(&self) -> Disk {
        Disk::Nvme(NvmeDisk::snapshot(self))
    }
    fn attach_faults(&mut self, handle: FaultHandle) {
        NvmeDisk::attach_faults(self, handle)
    }
    fn detach_faults(&mut self) -> Option<FaultHandle> {
        NvmeDisk::detach_faults(self)
    }
    fn reads(&self) -> u64 {
        NvmeDisk::reads(self)
    }
    fn writes(&self) -> u64 {
        NvmeDisk::writes(self)
    }
    fn forces(&self) -> u64 {
        NvmeDisk::forces(self)
    }
    fn kind(&self) -> &'static str {
        "nvme"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::BlockDevice as _;
    use crate::page::{Page, PageId};

    #[test]
    fn accounting_balances_and_bounds_hold() {
        let cfg = NvmeConfig::default();
        let mut d = NvmeDisk::new(16, cfg);
        let p = Page::new(PageId(1));
        for i in 0..10 {
            d.write_page(i % 16, &p).unwrap();
        }
        for i in 0..10 {
            d.read_page(i % 16).unwrap();
        }
        d.force().unwrap();
        let (subs, comps) = d.model().drain();
        assert_eq!(subs, 21);
        assert_eq!(comps, 21);
        let (min, max) = d.model().latency_bounds();
        assert!(min >= cfg.base_us && max <= cfg.max_us, "{min}..{max}");
    }

    #[test]
    fn deterministic_latency_under_fixed_seed() {
        let run = || {
            let mut d = NvmeDisk::new(8, NvmeConfig::default());
            let p = Page::new(PageId(0));
            let mut lats = Vec::new();
            for i in 0..32u64 {
                d.write_page(i % 8, &p).unwrap();
                lats.push(d.model().mean_latency_us());
            }
            lats
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn queue_depth_raises_service_time() {
        // jitter spans at most (max-base)/4 = 50 µs, so the +100 µs
        // queue-depth term must dominate and strictly order the samples
        let cfg = NvmeConfig {
            base_us: 10,
            per_qd_us: 100,
            max_us: 210,
            seed: 1,
            realtime: false,
        };
        let model = NvmeModel::new(cfg);
        let t1 = model.submit(); // qd 1
        let t2 = model.submit(); // qd 2: +per_qd_us
        assert!((10..=60).contains(&t1), "t1={t1}");
        assert!((110..=210).contains(&t2), "t2={t2}");
        assert!(t2 > t1);
        model.complete();
        model.complete();
        assert_eq!(model.queue_depth(), 0);
    }

    #[test]
    fn snapshot_resets_controller_and_isolates_frames() {
        let mut d = NvmeDisk::new(4, NvmeConfig::default());
        let p = Page::new(PageId(1));
        d.write_page(0, &p).unwrap();
        let snap = d.snapshot();
        assert_eq!(snap.model().submissions(), 0);
        let mut p2 = Page::new(PageId(1));
        p2.write_at(0, b"later");
        d.write_page(0, &p2).unwrap();
        assert_eq!(snap.read_page(0).unwrap(), p);
    }
}
