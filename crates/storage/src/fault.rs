//! Deterministic, replayable fault injection for [`MemDisk`].
//!
//! A [`FaultPlan`] is a schedule keyed by the injector's *global* operation
//! counters: "on the k-th frame write, tear it at byte c", "on the j-th
//! frame read, flip a bit", "after the k-th write, crash the device". The
//! plan is pure data — same plan, same workload, same disk contents, every
//! run — which is what makes a failing crashpoint-sweep schedule
//! reproducible from nothing but a seed.
//!
//! One [`FaultInjector`] is shared (via [`FaultHandle`]) by every disk of a
//! store, so the counters advance across the store's whole I/O stream, not
//! per device. The injector is behind a mutex because the WAL engine is
//! `Send` (its shared front wraps the database in `Arc<Mutex<..>>`).
//!
//! Fault taxonomy:
//!
//! * **Torn write** — only a prefix of the frame lands; the tail keeps the
//!   old contents (the classic mid-sector-transfer crash).
//! * **Lost write** — the device reports success but nothing lands (a
//!   firmware lie; detectable only by read-back verification).
//! * **Transient I/O** — the operation fails with [`StorageError::Io`] for
//!   a bounded number of attempts against the same address, then succeeds.
//! * **Bit flip on read** — the returned copy has one bit flipped; the
//!   on-disk frame is untouched (a transfer error, caught by checksums).
//! * **Crash** — after the k-th write attempt the device goes
//!   [`StorageError::Offline`]; the recovery tests then snapshot and
//!   rebuild, exactly as for a clean crash.
//! * **Stuck I/O** — the operation hangs for a scheduled stall and then
//!   fails with [`StorageError::Io`]: a device that has stopped
//!   responding rather than one that errors promptly. The stall is
//!   served by the disk *after* releasing the injector lock, so a stuck
//!   device never wedges the other disks sharing the injector.
//! * **Permanent failure** — from the k-th write attempt on, every
//!   operation fails with [`StorageError::Io`] forever. Unlike a crash
//!   the device is not [`StorageError::Offline`]: its durable frames
//!   remain snapshot-able, which is exactly the state a failover layer
//!   must recover from (the dead log stream's durable prefix survives).
//!
//! Counters count *attempts*: a write that fails with a transient fault
//! still consumed its operation index. This keeps replay trivially
//! deterministic even when consumers retry.

use crate::error::StorageError;
use crate::page::{Page, FRAME_SIZE};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Scheduled fate of one frame write, keyed by global write index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WriteFault {
    /// Only the first `cut` bytes of the new frame land; the tail keeps the
    /// previous contents (zeros if the frame was unallocated).
    Torn {
        /// Bytes of the new image that make it to the platter.
        cut: usize,
    },
    /// The device reports success but the frame is unchanged.
    Lost,
    /// This write and the next `attempts - 1` writes to the same address
    /// fail with [`StorageError::Io`]; nothing lands on failing attempts.
    TransientIo {
        /// Total failing attempts (≥ 1).
        attempts: u32,
    },
    /// The write hangs for `millis` before failing with
    /// [`StorageError::Io`]; nothing lands. Models a device that has
    /// stopped responding (the failover supervisor's stall case).
    Stuck {
        /// Stall served before the failure, in milliseconds.
        millis: u64,
    },
}

/// Scheduled fate of one frame read, keyed by global read index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadFault {
    /// Flip bit `bit` of byte `byte` in the returned copy only.
    FlipBit {
        /// Byte offset within the frame (taken modulo the frame size).
        byte: usize,
        /// Bit index 0..8.
        bit: u8,
    },
    /// This read and the next `attempts - 1` reads of the same address fail
    /// with [`StorageError::Io`].
    TransientIo {
        /// Total failing attempts (≥ 1).
        attempts: u32,
    },
    /// The read hangs for `millis` before failing with
    /// [`StorageError::Io`].
    Stuck {
        /// Stall served before the failure, in milliseconds.
        millis: u64,
    },
}

/// A replayable schedule of device faults.
///
/// ```
/// use rmdb_storage::fault::FaultPlan;
///
/// let plan = FaultPlan::new()
///     .tear_write(3, 100)   // 4th write: only 100 bytes land
///     .lose_write(7)        // 8th write: silently dropped
///     .crash_after_write(12);
/// assert!(plan.crash_after.is_some());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Write faults by global write index (0-based).
    pub on_write: BTreeMap<u64, WriteFault>,
    /// Read faults by global read index (0-based).
    pub on_read: BTreeMap<u64, ReadFault>,
    /// Crash after this write attempt completes (its fault, if any, still
    /// applies). Every later operation returns [`StorageError::Offline`].
    pub crash_after: Option<u64>,
    /// Permanent device failure: every write attempt with a global index
    /// at or past this one fails with [`StorageError::Io`], and once
    /// tripped every read fails too — forever. The durable frames stay
    /// intact (and snapshot-able), unlike a crash.
    pub fail_from: Option<u64>,
    /// Device revival: every write attempt with a global index at or past
    /// this one succeeds unconditionally — the tripped [`FaultPlan::fail_from`]
    /// state is cleared, pending transients for writes are dropped, and any
    /// scheduled write fault at a cleared index (including [`WriteFault::Stuck`])
    /// is skipped. Models a device that comes back after repair or
    /// replacement. A scheduled crash still fires: [`FaultPlan::crash_after`]
    /// means the device is *gone*, not sick.
    pub clear_write_from: Option<u64>,
    /// Read-side revival, keyed by global read index: clears the tripped
    /// permanent failure and skips scheduled read faults from this index on.
    pub clear_read_from: Option<u64>,
}

impl FaultPlan {
    /// An empty plan: no faults, no crash.
    pub fn new() -> Self {
        Self::default()
    }

    /// Tear the `idx`-th write at byte `cut`.
    pub fn tear_write(mut self, idx: u64, cut: usize) -> Self {
        self.on_write.insert(idx, WriteFault::Torn { cut });
        self
    }

    /// Silently drop the `idx`-th write.
    pub fn lose_write(mut self, idx: u64) -> Self {
        self.on_write.insert(idx, WriteFault::Lost);
        self
    }

    /// Fail the `idx`-th write (and retries to its address) `attempts`
    /// times with a transient error.
    pub fn transient_write(mut self, idx: u64, attempts: u32) -> Self {
        self.on_write
            .insert(idx, WriteFault::TransientIo { attempts });
        self
    }

    /// Flip one bit in the copy returned by the `idx`-th read.
    pub fn flip_on_read(mut self, idx: u64, byte: usize, bit: u8) -> Self {
        self.on_read.insert(idx, ReadFault::FlipBit { byte, bit });
        self
    }

    /// Fail the `idx`-th read (and retries of its address) `attempts`
    /// times with a transient error.
    pub fn transient_read(mut self, idx: u64, attempts: u32) -> Self {
        self.on_read
            .insert(idx, ReadFault::TransientIo { attempts });
        self
    }

    /// Crash the device after the `idx`-th write attempt.
    pub fn crash_after_write(mut self, idx: u64) -> Self {
        self.crash_after = Some(idx);
        self
    }

    /// Hang the `idx`-th write for `millis`, then fail it.
    pub fn stick_write(mut self, idx: u64, millis: u64) -> Self {
        self.on_write.insert(idx, WriteFault::Stuck { millis });
        self
    }

    /// Hang the `idx`-th read for `millis`, then fail it.
    pub fn stick_read(mut self, idx: u64, millis: u64) -> Self {
        self.on_read.insert(idx, ReadFault::Stuck { millis });
        self
    }

    /// Permanently fail the device from the `idx`-th write attempt on.
    /// `fail_from_write(0)` kills the device immediately: every
    /// subsequent operation fails with [`StorageError::Io`], but the
    /// frames already durable remain readable through a snapshot.
    pub fn fail_from_write(mut self, idx: u64) -> Self {
        self.fail_from = Some(idx);
        self
    }

    /// Revive the device from the `idx`-th write attempt on: the tripped
    /// permanent failure clears and scheduled write faults at or past `idx`
    /// (including stuck I/O) are skipped. Compose with
    /// [`FaultPlan::fail_from_write`] to model an outage window:
    /// `fail_from_write(5).clear_from_write(20)` is a device that dies on
    /// the 6th write and serves again from the 21st.
    pub fn clear_from_write(mut self, idx: u64) -> Self {
        self.clear_write_from = Some(idx);
        self
    }

    /// Revive the read path from the `idx`-th read attempt on.
    pub fn clear_from_read(mut self, idx: u64) -> Self {
        self.clear_read_from = Some(idx);
        self
    }

    /// A seeded random plan over the first `horizon` writes and reads.
    ///
    /// Roughly one write in sixteen is faulted (torn, lost, or transiently
    /// failing) and one read in thirty-two is faulted (bit flip or
    /// transient). No crash is scheduled; compose with
    /// [`FaultPlan::crash_after_write`] for crashpoint sweeps. The same
    /// `(seed, horizon)` always yields the identical plan.
    pub fn seeded(seed: u64, horizon: u64) -> Self {
        let mut state = seed ^ 0x8f1b_bcdc_a7b7_9e5d;
        let mut next = move || splitmix64(&mut state);
        let mut plan = FaultPlan::new();
        for idx in 0..horizon {
            let roll = next();
            if roll % 16 == 0 {
                let fault = match roll >> 8 & 3 {
                    0 => WriteFault::Torn {
                        cut: (next() % (FRAME_SIZE as u64 - 1) + 1) as usize,
                    },
                    1 => WriteFault::Lost,
                    _ => WriteFault::TransientIo {
                        attempts: (next() % 2 + 1) as u32,
                    },
                };
                plan.on_write.insert(idx, fault);
            }
            let roll = next();
            if roll % 32 == 0 {
                let fault = if roll >> 8 & 1 == 0 {
                    ReadFault::FlipBit {
                        byte: (next() % FRAME_SIZE as u64) as usize,
                        bit: (next() % 8) as u8,
                    }
                } else {
                    ReadFault::TransientIo {
                        attempts: (next() % 2 + 1) as u32,
                    }
                };
                plan.on_read.insert(idx, fault);
            }
        }
        plan
    }
}

/// SplitMix64: the plan generator's own tiny RNG, so seeded plans do not
/// depend on any other crate's stream.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Shared, lockable injector — one per store, attached to all its disks.
pub type FaultHandle = Arc<Mutex<FaultInjector>>;

/// Executes a [`FaultPlan`] against a live operation stream.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    reads: u64,
    writes: u64,
    crashed: bool,
    failed: bool,
    /// Remaining transient failures per (is_write, addr).
    pending: HashMap<(bool, u64), u32>,
}

/// How a write should land, as decided by the injector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WriteApply {
    /// Write the full frame.
    Full,
    /// Write only the first `n` bytes over the old contents.
    Prefix(usize),
    /// Report success without touching the frame.
    Skip,
}

/// A write verdict plus any stall the disk must serve *after* releasing
/// the injector lock (so one stuck device never blocks the others
/// sharing the injector).
#[derive(Debug)]
pub(crate) struct WriteDecision {
    pub stall_ms: u64,
    pub outcome: Result<WriteApply, StorageError>,
}

/// A read verdict (optional bit flip) plus the post-unlock stall.
#[derive(Debug)]
pub(crate) struct ReadDecision {
    pub stall_ms: u64,
    pub outcome: Result<Option<(usize, u8)>, StorageError>,
}

impl FaultInjector {
    /// An injector executing `plan` from operation zero.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            plan,
            reads: 0,
            writes: 0,
            crashed: false,
            failed: false,
            pending: HashMap::new(),
        }
    }

    /// Wrap a plan in a shareable handle.
    pub fn handle(plan: FaultPlan) -> FaultHandle {
        Arc::new(Mutex::new(FaultInjector::new(plan)))
    }

    /// Whether the scheduled crash has fired.
    pub fn crashed(&self) -> bool {
        self.crashed
    }

    /// Whether the scheduled permanent failure has tripped.
    pub fn failed(&self) -> bool {
        self.failed
    }

    /// Write attempts seen so far.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Read attempts seen so far.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Crash the device immediately, as if [`FaultPlan::crash_after_write`]
    /// had just fired: every subsequent operation returns
    /// [`StorageError::Offline`] until [`FaultInjector::revive`]. This is
    /// the deterministic crash-*site* primitive: a protocol under test
    /// (e.g. the LSM compactor) can trip the crash at a named step —
    /// pre-manifest-publish, mid-level-write — instead of hunting for the
    /// equivalent global write index, while the durable frames stay
    /// exactly as the completed writes left them.
    pub fn crash_now(&mut self) {
        self.crashed = true;
    }

    /// Revive the device unconditionally, as if repaired in place: the
    /// remaining plan is discarded, the tripped permanent-failure and crash
    /// states clear, and pending transients are dropped. The operation
    /// counters keep their positions (they are monotone by design), so a
    /// replay of the same workload against the same plan stays
    /// deterministic up to the revive point.
    pub fn revive(&mut self) {
        self.plan = FaultPlan::new();
        self.failed = false;
        self.crashed = false;
        self.pending.clear();
    }

    pub(crate) fn decide_write(&mut self, addr: u64) -> WriteDecision {
        if self.crashed {
            return WriteDecision {
                stall_ms: 0,
                outcome: Err(StorageError::Offline),
            };
        }
        let idx = self.writes;
        self.writes += 1;
        let crash_now = self.plan.crash_after == Some(idx);
        if self.plan.clear_write_from.is_some_and(|k| idx >= k) {
            // device revival: un-trip the permanent failure, drop pending
            // write transients, skip whatever fault was scheduled here.
            // A scheduled crash still fires below — crashed means gone.
            self.failed = false;
            self.pending.retain(|&(is_write, _), _| !is_write);
            if crash_now {
                self.crashed = true;
            }
            return WriteDecision {
                stall_ms: 0,
                outcome: Ok(WriteApply::Full),
            };
        }
        let mut stall_ms = 0;
        let outcome = if self.failed || self.plan.fail_from.is_some_and(|k| idx >= k) {
            // permanent failure: fail this and everything after it
            self.failed = true;
            Err(StorageError::Io { addr })
        } else if let Some(remaining) = self.pending.get_mut(&(true, addr)) {
            *remaining -= 1;
            if *remaining == 0 {
                self.pending.remove(&(true, addr));
            }
            Err(StorageError::Io { addr })
        } else {
            match self.plan.on_write.get(&idx) {
                None => Ok(WriteApply::Full),
                Some(WriteFault::Torn { cut }) => Ok(WriteApply::Prefix((*cut).min(FRAME_SIZE))),
                Some(WriteFault::Lost) => Ok(WriteApply::Skip),
                Some(WriteFault::TransientIo { attempts }) => {
                    if *attempts > 1 {
                        self.pending.insert((true, addr), attempts - 1);
                    }
                    Err(StorageError::Io { addr })
                }
                Some(WriteFault::Stuck { millis }) => {
                    stall_ms = *millis;
                    Err(StorageError::Io { addr })
                }
            }
        };
        if crash_now {
            self.crashed = true;
        }
        WriteDecision { stall_ms, outcome }
    }

    pub(crate) fn decide_read(&mut self, addr: u64) -> ReadDecision {
        if self.crashed {
            return ReadDecision {
                stall_ms: 0,
                outcome: Err(StorageError::Offline),
            };
        }
        let idx = self.reads;
        self.reads += 1;
        if self.plan.clear_read_from.is_some_and(|k| idx >= k) {
            self.failed = false;
            self.pending.retain(|&(is_write, _), _| is_write);
            return ReadDecision {
                stall_ms: 0,
                outcome: Ok(None),
            };
        }
        if self.failed {
            return ReadDecision {
                stall_ms: 0,
                outcome: Err(StorageError::Io { addr }),
            };
        }
        if let Some(remaining) = self.pending.get_mut(&(false, addr)) {
            *remaining -= 1;
            if *remaining == 0 {
                self.pending.remove(&(false, addr));
            }
            return ReadDecision {
                stall_ms: 0,
                outcome: Err(StorageError::Io { addr }),
            };
        }
        let mut stall_ms = 0;
        let outcome = match self.plan.on_read.get(&idx) {
            None => Ok(None),
            Some(ReadFault::FlipBit { byte, bit }) => Ok(Some((byte % FRAME_SIZE, bit % 8))),
            Some(ReadFault::TransientIo { attempts }) => {
                if *attempts > 1 {
                    self.pending.insert((false, addr), attempts - 1);
                }
                Err(StorageError::Io { addr })
            }
            Some(ReadFault::Stuck { millis }) => {
                stall_ms = *millis;
                Err(StorageError::Io { addr })
            }
        };
        ReadDecision { stall_ms, outcome }
    }
}

/// Bounded deterministic retry for reads through transient faults.
///
/// Retries [`StorageError::Io`] and [`StorageError::Corrupt`] up to
/// `attempts` times total — a bit flip during transfer manifests as a
/// checksum failure even though the platter is fine, so one clean re-read
/// resolves it. Persistent corruption (a genuinely torn frame) still
/// surfaces as the last [`StorageError::Corrupt`] once attempts are
/// exhausted; other errors return immediately.
pub fn read_page_retry<D: crate::device::BlockDevice + ?Sized>(
    disk: &D,
    addr: u64,
    attempts: u32,
) -> Result<Page, StorageError> {
    let mut last = StorageError::Io { addr };
    for _ in 0..attempts.max(1) {
        match disk.read_page(addr) {
            Err(e @ (StorageError::Io { .. } | StorageError::Corrupt { .. })) => last = e,
            other => return other,
        }
    }
    Err(last)
}

/// Write-and-verify: write the page, read it back, retry on mismatch.
///
/// This is the defense against *lost* and *torn* writes on commit-critical
/// frames (master records, commit lists, directory entries): a silently
/// dropped write would otherwise let commit report durability it does not
/// have. Up to `attempts` write+verify rounds; returns the last error if
/// the frame never verifies.
pub fn write_page_verified<D: crate::device::BlockDevice + ?Sized>(
    disk: &mut D,
    addr: u64,
    page: &Page,
    attempts: u32,
) -> Result<(), StorageError> {
    let mut last = StorageError::Io { addr };
    for _ in 0..attempts.max(1) {
        if let Err(e) = disk.write_page(addr, page) {
            last = e;
            if last == StorageError::Offline {
                return Err(last);
            }
            continue;
        }
        match disk.read_page(addr) {
            Ok(got) if got == *page => return Ok(()),
            Ok(_) => last = StorageError::Corrupt { addr },
            Err(e) => {
                last = e;
                if last == StorageError::Offline {
                    return Err(last);
                }
            }
        }
    }
    Err(last)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memdisk::MemDisk;
    use crate::page::PageId;

    fn page(tag: u8) -> Page {
        let mut p = Page::new(PageId(tag as u64));
        p.write_at(0, &[tag; 64]);
        p
    }

    #[test]
    fn torn_write_corrupts_lost_write_vanishes() {
        let handle = FaultInjector::handle(FaultPlan::new().tear_write(1, 40).lose_write(2));
        let mut d = MemDisk::new(4);
        d.attach_faults(handle);
        d.write_page(0, &page(1)).unwrap(); // write 0: clean
        d.write_page(1, &page(2)).unwrap(); // write 1: torn at byte 40
        d.write_page(2, &page(3)).unwrap(); // write 2: lost
        assert_eq!(d.read_page(0).unwrap(), page(1));
        assert!(matches!(d.read_page(1), Err(StorageError::Corrupt { .. })));
        assert!(matches!(
            d.read_page(2),
            Err(StorageError::Unallocated { .. })
        ));
    }

    #[test]
    fn transient_write_fails_then_succeeds() {
        let handle = FaultInjector::handle(FaultPlan::new().transient_write(0, 2));
        let mut d = MemDisk::new(4);
        d.attach_faults(handle);
        assert!(matches!(
            d.write_page(0, &page(9)),
            Err(StorageError::Io { addr: 0 })
        ));
        assert!(matches!(
            d.write_page(0, &page(9)),
            Err(StorageError::Io { addr: 0 })
        ));
        d.write_page(0, &page(9)).unwrap();
        assert_eq!(d.read_page(0).unwrap(), page(9));
    }

    #[test]
    fn bit_flip_is_read_only() {
        let handle = FaultInjector::handle(FaultPlan::new().flip_on_read(0, 30, 3));
        let mut d = MemDisk::new(4);
        d.write_page(0, &page(5)).unwrap();
        d.attach_faults(handle);
        assert!(matches!(d.read_page(0), Err(StorageError::Corrupt { .. })));
        // second read sees the pristine on-disk frame
        assert_eq!(d.read_page(0).unwrap(), page(5));
    }

    #[test]
    fn crash_takes_device_offline() {
        let handle = FaultInjector::handle(FaultPlan::new().crash_after_write(1));
        let mut d = MemDisk::new(4);
        d.attach_faults(handle.clone());
        d.write_page(0, &page(1)).unwrap();
        d.write_page(1, &page(2)).unwrap(); // crash fires after this one
        assert!(handle.lock().crashed());
        assert_eq!(d.write_page(2, &page(3)), Err(StorageError::Offline));
        assert_eq!(d.read_page(0).unwrap_err(), StorageError::Offline);
        // the snapshot sheds the injector: recovery reads clean frames
        let snap = d.snapshot();
        assert_eq!(snap.read_page(1).unwrap(), page(2));
    }

    #[test]
    fn retry_helpers_ride_through_transients() {
        let handle =
            FaultInjector::handle(FaultPlan::new().transient_read(1, 1).transient_write(2, 1));
        let mut d = MemDisk::new(4);
        d.attach_faults(handle);
        d.write_page(0, &page(1)).unwrap(); // write 0
        assert_eq!(read_page_retry(&d, 0, 3).unwrap(), page(1)); // reads 0..2
        write_page_verified(&mut d, 1, &page(2), 3).unwrap(); // rides the write fault
        assert_eq!(d.read_page(1).unwrap(), page(2));
    }

    #[test]
    fn verified_write_defeats_lost_write() {
        let handle = FaultInjector::handle(FaultPlan::new().lose_write(0));
        let mut d = MemDisk::new(4);
        d.attach_faults(handle);
        write_page_verified(&mut d, 0, &page(7), 3).unwrap();
        assert_eq!(d.read_page(0).unwrap(), page(7));
    }

    #[test]
    fn permanent_failure_kills_device_but_not_snapshot() {
        let handle = FaultInjector::handle(FaultPlan::new().fail_from_write(1));
        let mut d = MemDisk::new(4);
        d.attach_faults(handle.clone());
        d.write_page(0, &page(1)).unwrap(); // write 0: clean
        assert_eq!(d.write_page(1, &page(2)), Err(StorageError::Io { addr: 1 }));
        // every later write fails too, and once tripped reads fail as well
        assert_eq!(d.write_page(2, &page(3)), Err(StorageError::Io { addr: 2 }));
        assert_eq!(d.read_page(0), Err(StorageError::Io { addr: 0 }));
        assert!(handle.lock().failed());
        assert!(!handle.lock().crashed(), "failed device is not Offline");
        // the durable platter survives: a snapshot sheds the injector and
        // serves everything that landed before the failure
        let snap = d.snapshot();
        assert_eq!(snap.read_page(0).unwrap(), page(1));
        assert!(!snap.is_allocated(1), "failed write must not have landed");
    }

    #[test]
    fn fail_from_zero_kills_device_immediately() {
        let handle = FaultInjector::handle(FaultPlan::new().fail_from_write(0));
        let mut d = MemDisk::new(4);
        d.write_page(0, &page(1)).unwrap();
        d.attach_faults(handle);
        assert!(matches!(
            d.write_page(1, &page(2)),
            Err(StorageError::Io { .. })
        ));
        assert!(matches!(d.read_page(0), Err(StorageError::Io { .. })));
        assert_eq!(d.snapshot().read_page(0).unwrap(), page(1));
    }

    #[test]
    fn stuck_write_stalls_then_fails() {
        let handle = FaultInjector::handle(FaultPlan::new().stick_write(0, 20));
        let mut d = MemDisk::new(4);
        d.attach_faults(handle.clone());
        let t0 = std::time::Instant::now();
        assert!(matches!(
            d.write_page(0, &page(1)),
            Err(StorageError::Io { .. })
        ));
        assert!(t0.elapsed() >= std::time::Duration::from_millis(20));
        assert!(!d.is_allocated(0), "stuck write deposits nothing");
        // a stuck op is transient, not permanent: the retry lands
        d.write_page(0, &page(1)).unwrap();
        assert!(!handle.lock().failed());
    }

    #[test]
    fn stuck_read_stalls_then_fails() {
        let handle = FaultInjector::handle(FaultPlan::new().stick_read(0, 20));
        let mut d = MemDisk::new(4);
        d.write_page(0, &page(4)).unwrap();
        d.attach_faults(handle);
        let t0 = std::time::Instant::now();
        assert!(matches!(d.read_page(0), Err(StorageError::Io { .. })));
        assert!(t0.elapsed() >= std::time::Duration::from_millis(20));
        assert_eq!(d.read_page(0).unwrap(), page(4));
    }

    #[test]
    fn clear_from_write_revives_failed_device() {
        // outage window: dead from write 1, back from write 3
        let handle = FaultInjector::handle(FaultPlan::new().fail_from_write(1).clear_from_write(3));
        let mut d = MemDisk::new(4);
        d.attach_faults(handle.clone());
        d.write_page(0, &page(1)).unwrap(); // write 0: clean
        assert!(d.write_page(1, &page(2)).is_err()); // write 1: trips
        assert!(d.write_page(1, &page(2)).is_err()); // write 2: still dead
        assert!(handle.lock().failed());
        d.write_page(1, &page(2)).unwrap(); // write 3: revived
        assert!(!handle.lock().failed(), "clear must un-trip the failure");
        d.write_page(2, &page(3)).unwrap(); // stays revived past fail_from
        assert_eq!(d.read_page(0).unwrap(), page(1));
        assert_eq!(d.read_page(1).unwrap(), page(2));
        assert_eq!(d.read_page(2).unwrap(), page(3));
    }

    #[test]
    fn clear_from_read_revives_read_path() {
        let handle = FaultInjector::handle(FaultPlan::new().fail_from_write(0).clear_from_read(2));
        let mut d = MemDisk::new(4);
        d.write_page(0, &page(6)).unwrap();
        d.attach_faults(handle);
        assert!(d.write_page(1, &page(7)).is_err()); // trips the failure
        assert!(d.read_page(0).is_err()); // read 0: failed
        assert!(d.read_page(0).is_err()); // read 1: failed
        assert_eq!(d.read_page(0).unwrap(), page(6)); // read 2: revived
        assert_eq!(d.read_page(0).unwrap(), page(6));
    }

    #[test]
    fn clear_unsticks_scheduled_faults() {
        // a Stuck fault scheduled inside the cleared range must be skipped
        // entirely: no stall, no error
        let handle =
            FaultInjector::handle(FaultPlan::new().stick_write(1, 5_000).clear_from_write(1));
        let mut d = MemDisk::new(4);
        d.attach_faults(handle);
        d.write_page(0, &page(1)).unwrap();
        let t0 = std::time::Instant::now();
        d.write_page(1, &page(2)).unwrap();
        assert!(
            t0.elapsed() < std::time::Duration::from_millis(1_000),
            "cleared stuck fault must not stall"
        );
        assert_eq!(d.read_page(1).unwrap(), page(2));
    }

    #[test]
    fn clear_drops_pending_write_transients() {
        // the transient at write 0 schedules 2 more failing attempts; the
        // clear at write 1 must drop them
        let handle =
            FaultInjector::handle(FaultPlan::new().transient_write(0, 3).clear_from_write(1));
        let mut d = MemDisk::new(4);
        d.attach_faults(handle);
        assert!(d.write_page(0, &page(9)).is_err()); // write 0: transient
        d.write_page(0, &page(9)).unwrap(); // write 1: cleared
        assert_eq!(d.read_page(0).unwrap(), page(9));
    }

    #[test]
    fn crash_fires_even_inside_cleared_range() {
        let handle =
            FaultInjector::handle(FaultPlan::new().crash_after_write(1).clear_from_write(0));
        let mut d = MemDisk::new(4);
        d.attach_faults(handle.clone());
        d.write_page(0, &page(1)).unwrap();
        d.write_page(1, &page(2)).unwrap(); // crash fires after this one
        assert!(handle.lock().crashed(), "clear must not cancel a crash");
        assert_eq!(d.write_page(2, &page(3)), Err(StorageError::Offline));
    }

    #[test]
    fn revive_restores_a_dead_device_in_place() {
        let handle = FaultInjector::handle(FaultPlan::new().fail_from_write(0));
        let mut d = MemDisk::new(4);
        d.write_page(0, &page(1)).unwrap();
        d.attach_faults(handle.clone());
        assert!(d.write_page(1, &page(2)).is_err());
        assert!(d.read_page(0).is_err());
        handle.lock().revive();
        d.write_page(1, &page(2)).unwrap();
        assert_eq!(d.read_page(0).unwrap(), page(1));
        assert_eq!(d.read_page(1).unwrap(), page(2));
        assert!(!handle.lock().failed());
    }

    #[test]
    fn seeded_plans_are_reproducible() {
        let a = FaultPlan::seeded(42, 500);
        let b = FaultPlan::seeded(42, 500);
        assert_eq!(a, b);
        assert!(!a.on_write.is_empty(), "500-op horizon should fault writes");
        assert!(!a.on_read.is_empty(), "500-op horizon should fault reads");
        let c = FaultPlan::seeded(43, 500);
        assert_ne!(a, c, "different seeds should differ");
    }
}
