//! A block device backed by a real file: pwrite per frame, fdatasync on
//! force, crash snapshot via file copy.
//!
//! This is the backend that grounds the workspace's durability story in
//! actual syscalls. A frame write is one positioned `pwrite` of the 4 KB
//! frame (the same single-sector atomicity assumption every recovery
//! mechanism here makes); [`FileDisk::force`] is `fdatasync`, so a log
//! force on this backend pays what the hardware actually charges.
//!
//! Crash semantics match `MemDisk`: [`FileDisk::snapshot`] copies the
//! backing file into a fresh temp file and returns an independent
//! `FileDisk` over the copy. Recovery then runs against that real file, so
//! the fault sweep exercises the file backend on *both* sides of the
//! crash. Allocation tracking (which frames were ever written — `MemDisk`
//! errors `Unallocated` on virgin frames, and log-scan frontiers rely on
//! it) is kept as an in-process bitmap and carried into snapshots; on the
//! platter a virgin frame is sparse zeros either way.
//!
//! The backing file is deleted when the `FileDisk` drops — including
//! during a panic unwind, so a failing test cleans its temp dir up.

use crate::error::StorageError;
use crate::fault::{FaultHandle, WriteApply};
use crate::memdisk::MemDisk;
use crate::page::FRAME_SIZE;
use std::fs::{File, OpenOptions};
use std::os::unix::fs::FileExt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide suffix so concurrent tests never collide on a path.
static NEXT_FILE_ID: AtomicU64 = AtomicU64::new(0);

/// A durable array of frames inside one backing file.
pub struct FileDisk {
    file: File,
    path: PathBuf,
    capacity: u64,
    /// Frames ever written (torn writes count; skipped writes don't) —
    /// the same allocation semantics as `MemDisk`.
    allocated: Vec<bool>,
    reads: AtomicU64,
    writes: AtomicU64,
    forces: AtomicU64,
    faults: Option<FaultHandle>,
}

impl FileDisk {
    /// Create a fresh disk of `capacity` frames backed by a new sparse
    /// file under `dir` (default: the OS temp dir).
    pub fn create(dir: Option<PathBuf>, capacity: u64) -> Result<Self, StorageError> {
        let dir = dir.unwrap_or_else(std::env::temp_dir);
        let path = dir.join(format!(
            "rmdb-{}-{}.disk",
            std::process::id(),
            NEXT_FILE_ID.fetch_add(1, Ordering::Relaxed)
        ));
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(&path)
            .map_err(|_| StorageError::Io { addr: 0 })?;
        file.set_len(capacity * FRAME_SIZE as u64)
            .map_err(|_| StorageError::Io { addr: 0 })?;
        Ok(FileDisk {
            file,
            path,
            capacity,
            allocated: vec![false; capacity as usize],
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            forces: AtomicU64::new(0),
            faults: None,
        })
    }

    /// Path of the backing file (deleted when this disk drops).
    pub fn path(&self) -> &std::path::Path {
        &self.path
    }

    fn check(&self, addr: u64) -> Result<usize, StorageError> {
        if addr >= self.capacity {
            Err(StorageError::OutOfRange {
                addr,
                capacity: self.capacity,
            })
        } else {
            Ok(addr as usize)
        }
    }

    /// Capacity in frames.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Whether `addr` has ever been written.
    pub fn is_allocated(&self, addr: u64) -> bool {
        (addr as usize) < self.allocated.len() && self.allocated[addr as usize]
    }

    /// Frame reads served.
    pub fn reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    /// Frame writes performed.
    pub fn writes(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }

    /// fdatasync calls issued.
    pub fn forces(&self) -> u64 {
        self.forces.load(Ordering::Relaxed)
    }

    /// Attach a fault injector; every subsequent read/write consults it.
    pub fn attach_faults(&mut self, handle: FaultHandle) {
        self.faults = Some(handle);
    }

    /// Detach the fault injector.
    pub fn detach_faults(&mut self) -> Option<FaultHandle> {
        self.faults.take()
    }

    /// Read the raw frame at `addr` with one positioned read.
    pub fn read_frame(&self, addr: u64) -> Result<Box<[u8; FRAME_SIZE]>, StorageError> {
        let i = self.check(addr)?;
        let flip = match &self.faults {
            Some(h) => {
                // injector lock released before any scheduled stall, same
                // as MemDisk: a stuck device never wedges its siblings
                let d = h.lock().decide_read(addr);
                if d.stall_ms > 0 {
                    std::thread::sleep(std::time::Duration::from_millis(d.stall_ms));
                }
                d.outcome?
            }
            None => None,
        };
        self.reads.fetch_add(1, Ordering::Relaxed);
        if !self.allocated[i] {
            return Err(StorageError::Unallocated { addr });
        }
        let mut frame = Box::new([0u8; FRAME_SIZE]);
        self.file
            .read_exact_at(&mut frame[..], addr * FRAME_SIZE as u64)
            .map_err(|_| StorageError::Io { addr })?;
        if let Some((byte, bit)) = flip {
            frame[byte] ^= 1 << bit;
        }
        Ok(frame)
    }

    /// pwrite the raw frame at `addr` — unless an attached fault plan
    /// tears, drops, or fails this write. A torn write really does land
    /// only a prefix of the frame in the file.
    pub fn write_frame(&mut self, addr: u64, frame: &[u8; FRAME_SIZE]) -> Result<(), StorageError> {
        self.apply_write(addr, frame, FRAME_SIZE)
    }

    /// Torn-write primitive: only the first `bytes` bytes of `frame` land;
    /// the file's old tail (zeros if virgin) shows through.
    pub fn write_partial(
        &mut self,
        addr: u64,
        frame: &[u8; FRAME_SIZE],
        bytes: usize,
    ) -> Result<(), StorageError> {
        if bytes > FRAME_SIZE {
            return Err(StorageError::BadLength {
                len: bytes,
                max: FRAME_SIZE,
            });
        }
        self.apply_write(addr, frame, bytes)
    }

    fn apply_write(
        &mut self,
        addr: u64,
        frame: &[u8; FRAME_SIZE],
        bytes: usize,
    ) -> Result<(), StorageError> {
        let i = self.check(addr)?;
        let apply = match &self.faults {
            Some(h) => {
                let d = h.lock().decide_write(addr);
                if d.stall_ms > 0 {
                    std::thread::sleep(std::time::Duration::from_millis(d.stall_ms));
                }
                d.outcome?
            }
            None => WriteApply::Full,
        };
        self.writes.fetch_add(1, Ordering::Relaxed);
        let cut = match apply {
            WriteApply::Full => bytes,
            WriteApply::Prefix(cut) => cut.min(bytes),
            WriteApply::Skip => return Ok(()),
        };
        self.file
            .write_all_at(&frame[..cut], addr * FRAME_SIZE as u64)
            .map_err(|_| StorageError::Io { addr })?;
        self.allocated[i] = true;
        Ok(())
    }

    /// fdatasync the backing file: everything pwritten so far is on the
    /// platter when this returns.
    pub fn force(&mut self) -> Result<(), StorageError> {
        self.forces.fetch_add(1, Ordering::Relaxed);
        self.file
            .sync_data()
            .map_err(|_| StorageError::Io { addr: 0 })
    }

    /// Crash snapshot via file copy: an independent `FileDisk` over a
    /// fresh copy of the backing file, counters reset, no injector.
    pub fn snapshot(&self) -> Result<FileDisk, StorageError> {
        let dir = self
            .path
            .parent()
            .map(|p| p.to_path_buf())
            .unwrap_or_else(std::env::temp_dir);
        let mut copy = FileDisk::create(Some(dir), self.capacity)?;
        std::fs::copy(&self.path, &copy.path).map_err(|_| StorageError::Io { addr: 0 })?;
        // the copy reopens the same inode contents; refresh the handle so
        // positioned reads see them (copy replaced the file in place)
        copy.file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&copy.path)
            .map_err(|_| StorageError::Io { addr: 0 })?;
        copy.allocated = self.allocated.clone();
        Ok(copy)
    }
}

impl crate::device::BlockDevice for FileDisk {
    fn capacity(&self) -> u64 {
        FileDisk::capacity(self)
    }
    fn is_allocated(&self, addr: u64) -> bool {
        FileDisk::is_allocated(self, addr)
    }
    fn read_frame(&self, addr: u64) -> Result<Box<[u8; FRAME_SIZE]>, StorageError> {
        FileDisk::read_frame(self, addr)
    }
    fn write_frame(&mut self, addr: u64, frame: &[u8; FRAME_SIZE]) -> Result<(), StorageError> {
        FileDisk::write_frame(self, addr, frame)
    }
    fn write_partial(
        &mut self,
        addr: u64,
        frame: &[u8; FRAME_SIZE],
        bytes: usize,
    ) -> Result<(), StorageError> {
        FileDisk::write_partial(self, addr, frame, bytes)
    }
    fn force(&mut self) -> Result<(), StorageError> {
        FileDisk::force(self)
    }
    fn snapshot(&self) -> crate::device::Disk {
        // a failed copy means the test environment lost its temp dir —
        // not a device fault the recovery protocols could respond to
        crate::device::Disk::File(FileDisk::snapshot(self).expect("snapshot file copy"))
    }
    fn attach_faults(&mut self, handle: FaultHandle) {
        FileDisk::attach_faults(self, handle)
    }
    fn detach_faults(&mut self) -> Option<FaultHandle> {
        FileDisk::detach_faults(self)
    }
    fn reads(&self) -> u64 {
        FileDisk::reads(self)
    }
    fn writes(&self) -> u64 {
        FileDisk::writes(self)
    }
    fn forces(&self) -> u64 {
        FileDisk::forces(self)
    }
    fn kind(&self) -> &'static str {
        "file"
    }
}

impl Drop for FileDisk {
    fn drop(&mut self) {
        // best-effort temp cleanup; runs on panic unwind too
        let _ = std::fs::remove_file(&self.path);
    }
}

impl std::fmt::Debug for FileDisk {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FileDisk")
            .field("path", &self.path)
            .field("capacity", &self.capacity)
            .field("reads", &self.reads())
            .field("writes", &self.writes())
            .field("forces", &self.forces())
            .finish()
    }
}

/// Load the durable contents into a `MemDisk` (test oracles that compare
/// byte-identity across backends).
impl From<&FileDisk> for MemDisk {
    fn from(fd: &FileDisk) -> MemDisk {
        let mut m = MemDisk::new(fd.capacity);
        for addr in 0..fd.capacity {
            if fd.is_allocated(addr) {
                if let Ok(frame) = fd.read_frame(addr) {
                    m.write_frame(addr, &frame).expect("in-range copy");
                }
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::BlockDevice as _;
    use crate::page::{Page, PageId};

    #[test]
    fn write_read_roundtrip_and_cleanup() {
        let path;
        {
            let mut d = FileDisk::create(None, 8).unwrap();
            path = d.path().to_path_buf();
            assert!(path.exists());
            let mut p = Page::new(PageId(3));
            p.write_at(0, b"on-disk");
            d.write_page(5, &p).unwrap();
            d.force().unwrap();
            assert_eq!(d.read_page(5).unwrap(), p);
            assert_eq!((d.reads(), d.writes(), d.forces()), (1, 1, 1));
        }
        assert!(!path.exists(), "backing file must be removed on drop");
    }

    #[test]
    fn unallocated_and_out_of_range() {
        let d = FileDisk::create(None, 4).unwrap();
        assert_eq!(
            d.read_frame(1).unwrap_err(),
            StorageError::Unallocated { addr: 1 }
        );
        assert!(matches!(
            d.read_frame(4),
            Err(StorageError::OutOfRange { .. })
        ));
    }

    #[test]
    fn snapshot_is_an_independent_file() {
        let mut d = FileDisk::create(None, 4).unwrap();
        let p = Page::new(PageId(1));
        d.write_page(0, &p).unwrap();
        let snap = d.snapshot().unwrap();
        assert_ne!(snap.path(), d.path());
        let mut p2 = Page::new(PageId(1));
        p2.write_at(0, b"post-crash");
        d.write_page(0, &p2).unwrap();
        assert_eq!(snap.read_page(0).unwrap(), p);
    }

    #[test]
    fn partial_write_tears_the_frame_in_the_file() {
        let mut d = FileDisk::create(None, 4).unwrap();
        let mut old = Page::new(PageId(2));
        old.write_at(0, &[7u8; 100]);
        old.write_at(2000, &[7u8; 100]);
        d.write_page(1, &old).unwrap();
        let mut new = old.clone();
        new.write_at(0, &[9u8; 100]);
        new.write_at(2000, &[9u8; 100]);
        d.write_partial(1, &new.to_frame(), 1000).unwrap();
        assert!(matches!(
            d.read_page(1),
            Err(StorageError::Corrupt { addr: 1 })
        ));
    }
}
