//! A pin-counted buffer pool with pluggable eviction.
//!
//! The pool holds decoded [`Page`]s keyed by [`PageId`]. It deliberately
//! performs **no disk I/O itself**: on a miss the caller fetches the page
//! (through whatever indirection its recovery architecture uses — the
//! shadow pager's page table, the WAL manager's direct mapping) and inserts
//! it; on insertion into a full pool the evicted entry is handed back so
//! the caller can apply its write-ahead rule before writing a dirty page
//! out. This inversion keeps the pool reusable by every recovery scheme.

use crate::error::StorageError;
use crate::page::{Page, PageId};
use parking_lot::{Mutex, MutexGuard};
use std::collections::HashMap;

/// Which replacement policy the pool runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictPolicy {
    /// Least-recently-used (exact, via access ticks).
    Lru,
    /// Clock / second-chance.
    Clock,
}

/// A page pushed out of the pool.
#[derive(Debug)]
pub struct Evicted {
    /// The evicted page.
    pub page: Page,
    /// Whether it had unflushed modifications. The caller must write it
    /// (after honouring its write-ahead rule) or lose the updates.
    pub dirty: bool,
}

struct Slot {
    page: Page,
    dirty: bool,
    pins: u32,
    last_use: u64,
    referenced: bool,
}

/// A fixed-capacity cache of pages.
///
/// ```
/// use rmdb_storage::{BufferPool, EvictPolicy, Page, PageId};
///
/// let mut pool = BufferPool::new(2, EvictPolicy::Lru);
/// pool.insert(PageId(1), Page::new(PageId(1)), false).unwrap();
/// pool.insert(PageId(2), Page::new(PageId(2)), false).unwrap();
/// pool.get(PageId(1));                            // 1 is now most recent
/// let evicted = pool.insert(PageId(3), Page::new(PageId(3)), false)
///     .unwrap()
///     .expect("pool was full");
/// assert_eq!(evicted.page.id, PageId(2));         // LRU victim
/// ```
pub struct BufferPool {
    capacity: usize,
    policy: EvictPolicy,
    slots: HashMap<PageId, Slot>,
    /// Clock hand: iteration order for the clock policy (ids in insertion
    /// order; stable across lookups).
    order: Vec<PageId>,
    hand: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    lookups: u64,
    evictions: u64,
}

impl BufferPool {
    /// A pool holding at most `capacity` pages.
    pub fn new(capacity: usize, policy: EvictPolicy) -> Self {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        BufferPool {
            capacity,
            policy,
            slots: HashMap::with_capacity(capacity),
            order: Vec::with_capacity(capacity),
            hand: 0,
            tick: 0,
            hits: 0,
            misses: 0,
            lookups: 0,
            evictions: 0,
        }
    }

    /// Maximum number of resident pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of resident pages.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if no pages are resident.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Cache hits recorded by [`BufferPool::get`]/[`BufferPool::get_mut`].
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses recorded by [`BufferPool::get`]/[`BufferPool::get_mut`].
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Total lookups ([`BufferPool::get`] + [`BufferPool::get_mut`] calls).
    /// Counted independently of the hit/miss split, so
    /// `hits() + misses() == lookups()` is a checkable conservation law
    /// rather than a definition.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Pages evicted to make room (does not count explicit
    /// [`BufferPool::remove`] calls).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Whether `id` is resident (does not touch recency state).
    pub fn contains(&self, id: PageId) -> bool {
        self.slots.contains_key(&id)
    }

    fn touch(slot: &mut Slot, tick: u64) {
        slot.last_use = tick;
        slot.referenced = true;
    }

    /// Look up a resident page, updating recency. Records a hit or miss.
    pub fn get(&mut self, id: PageId) -> Option<&Page> {
        self.lookups += 1;
        self.tick += 1;
        let tick = self.tick;
        match self.slots.get_mut(&id) {
            Some(slot) => {
                Self::touch(slot, tick);
                self.hits += 1;
                Some(&slot.page)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Mutable lookup; marks the page dirty.
    pub fn get_mut(&mut self, id: PageId) -> Option<&mut Page> {
        self.lookups += 1;
        self.tick += 1;
        let tick = self.tick;
        match self.slots.get_mut(&id) {
            Some(slot) => {
                Self::touch(slot, tick);
                slot.dirty = true;
                self.hits += 1;
                Some(&mut slot.page)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert a page fetched from disk (or freshly allocated).
    ///
    /// If the pool is full, an unpinned victim is evicted and returned.
    /// Fails with [`StorageError::PoolExhausted`] when every resident page
    /// is pinned.
    ///
    /// # Panics
    /// If `id` is already resident (callers must check [`BufferPool::get`]
    /// first; double-insertion indicates a protocol bug).
    pub fn insert(
        &mut self,
        id: PageId,
        page: Page,
        dirty: bool,
    ) -> Result<Option<Evicted>, StorageError> {
        assert!(
            !self.slots.contains_key(&id),
            "page {id} inserted while already resident"
        );
        let evicted = if self.slots.len() >= self.capacity {
            Some(self.evict()?)
        } else {
            None
        };
        self.tick += 1;
        self.slots.insert(
            id,
            Slot {
                page,
                dirty,
                pins: 0,
                last_use: self.tick,
                referenced: true,
            },
        );
        self.order.push(id);
        Ok(evicted)
    }

    /// Pin a resident page so it cannot be evicted.
    ///
    /// # Panics
    /// If the page is not resident.
    pub fn pin(&mut self, id: PageId) {
        self.slots
            .get_mut(&id)
            .unwrap_or_else(|| panic!("pin of non-resident page {id}"))
            .pins += 1;
    }

    /// Drop one pin.
    ///
    /// # Panics
    /// If the page is not resident or not pinned.
    pub fn unpin(&mut self, id: PageId) {
        let slot = self
            .slots
            .get_mut(&id)
            .unwrap_or_else(|| panic!("unpin of non-resident page {id}"));
        assert!(slot.pins > 0, "unpin of unpinned page {id}");
        slot.pins -= 1;
    }

    /// Mark a resident page clean (caller just wrote it to disk).
    pub fn mark_clean(&mut self, id: PageId) {
        if let Some(slot) = self.slots.get_mut(&id) {
            slot.dirty = false;
        }
    }

    /// Remove a specific page (e.g. transaction abort discarding its dirty
    /// pages). Returns it if it was resident.
    pub fn remove(&mut self, id: PageId) -> Option<Evicted> {
        self.slots.remove(&id).map(|slot| {
            self.order.retain(|&o| o != id);
            Evicted {
                page: slot.page,
                dirty: slot.dirty,
            }
        })
    }

    /// Iterate over resident dirty page ids (for flush-all/checkpoint).
    pub fn dirty_ids(&self) -> Vec<PageId> {
        let mut ids: Vec<PageId> = self
            .slots
            .iter()
            .filter(|(_, s)| s.dirty)
            .map(|(&id, _)| id)
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Read-only access without recency update (used when flushing).
    pub fn peek(&self, id: PageId) -> Option<&Page> {
        self.slots.get(&id).map(|s| &s.page)
    }

    fn evict(&mut self) -> Result<Evicted, StorageError> {
        let victim = match self.policy {
            EvictPolicy::Lru => self.pick_lru(),
            EvictPolicy::Clock => self.pick_clock(),
        }
        .ok_or(StorageError::PoolExhausted)?;
        self.evictions += 1;
        let slot = self.slots.remove(&victim).expect("victim resident");
        self.order.retain(|&o| o != victim);
        if self.hand >= self.order.len() && !self.order.is_empty() {
            self.hand %= self.order.len();
        }
        Ok(Evicted {
            page: slot.page,
            dirty: slot.dirty,
        })
    }

    fn pick_lru(&self) -> Option<PageId> {
        self.slots
            .iter()
            .filter(|(_, s)| s.pins == 0)
            .min_by_key(|(_, s)| s.last_use)
            .map(|(&id, _)| id)
    }

    fn pick_clock(&mut self) -> Option<PageId> {
        if self.order.is_empty() {
            return None;
        }
        // Up to two sweeps: first pass clears reference bits, second evicts.
        let n = self.order.len();
        for _ in 0..2 * n {
            let id = self.order[self.hand % n];
            self.hand = (self.hand + 1) % n;
            let slot = self.slots.get_mut(&id).expect("order entry resident");
            if slot.pins > 0 {
                continue;
            }
            if slot.referenced {
                slot.referenced = false;
            } else {
                return Some(id);
            }
        }
        None
    }
}

/// One independently lockable slice of a [`ShardedPool`]: a
/// [`BufferPool`] over the shard's pages plus caller-defined metadata
/// that must stay consistent with the pool's contents (e.g. a WAL
/// engine's page → last-log-position map).
pub struct PoolShard<M> {
    /// The shard's page cache.
    pub pool: BufferPool,
    /// Caller metadata updated under the same lock as `pool`.
    pub meta: M,
}

/// A buffer pool split into independently locked shards so concurrent
/// transactions touching different pages never contend on one mutex.
///
/// Pages are assigned to shards by a Fibonacci hash of the page id —
/// deterministic, so a page always lives in exactly one shard and
/// per-shard eviction preserves every [`BufferPool`] invariant. The total
/// frame budget is divided evenly; each shard gets at least one frame.
///
/// ```
/// use rmdb_storage::{EvictPolicy, Page, PageId, ShardedPool};
///
/// let pool: ShardedPool = ShardedPool::new(4, 32, EvictPolicy::Lru);
/// let id = PageId(7);
/// {
///     let mut shard = pool.lock(id);
///     shard.pool.insert(id, Page::new(id), false).unwrap();
/// } // drop the guard: shard locks are not reentrant
/// assert!(pool.lock(id).pool.contains(id));
/// ```
pub struct ShardedPool<M = ()> {
    shards: Vec<Mutex<PoolShard<M>>>,
}

impl ShardedPool<()> {
    /// `n_shards` shards sharing `total_frames` frames.
    pub fn new(n_shards: usize, total_frames: usize, policy: EvictPolicy) -> Self {
        ShardedPool::with_meta(n_shards, total_frames, policy, || ())
    }
}

impl<M> ShardedPool<M> {
    /// Like [`ShardedPool::new`], initialising each shard's metadata with
    /// `mk_meta`.
    pub fn with_meta(
        n_shards: usize,
        total_frames: usize,
        policy: EvictPolicy,
        mk_meta: impl Fn() -> M,
    ) -> Self {
        assert!(n_shards > 0, "sharded pool needs at least one shard");
        let per_shard = (total_frames / n_shards).max(1);
        ShardedPool {
            shards: (0..n_shards)
                .map(|_| {
                    Mutex::new(PoolShard {
                        pool: BufferPool::new(per_shard, policy),
                        meta: mk_meta(),
                    })
                })
                .collect(),
        }
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning `id` (deterministic Fibonacci hash).
    pub fn shard_of(&self, id: PageId) -> usize {
        (id.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % self.shards.len()
    }

    /// Lock the shard owning `id`.
    pub fn lock(&self, id: PageId) -> MutexGuard<'_, PoolShard<M>> {
        self.shards[self.shard_of(id)].lock()
    }

    /// Lock shard `i` directly (flush-all style sweeps).
    pub fn lock_shard(&self, i: usize) -> MutexGuard<'_, PoolShard<M>> {
        self.shards[i].lock()
    }

    /// Total resident pages across shards (locks each in turn).
    pub fn resident(&self) -> usize {
        self.shards.iter().map(|s| s.lock().pool.len()).sum()
    }

    /// Aggregate (hits, misses) across shards.
    pub fn hit_miss(&self) -> (u64, u64) {
        self.shards.iter().fold((0, 0), |(h, m), s| {
            let g = s.lock();
            (h + g.pool.hits(), m + g.pool.misses())
        })
    }

    /// Per-shard cache counters, indexed by shard number (locks each
    /// shard in turn — counters from different shards are not mutually
    /// atomic, but each shard's own quadruple is consistent).
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .enumerate()
            .map(|(shard, s)| {
                let g = s.lock();
                ShardStats {
                    shard,
                    hits: g.pool.hits(),
                    misses: g.pool.misses(),
                    lookups: g.pool.lookups(),
                    evictions: g.pool.evictions(),
                }
            })
            .collect()
    }
}

/// One shard's cache counters, as returned by [`ShardedPool::shard_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Lookups that found the page resident.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Total lookups (independently counted; `hits + misses == lookups`).
    pub lookups: u64,
    /// Pages evicted to make room.
    pub evictions: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(n: u64) -> Page {
        Page::new(PageId(n))
    }

    #[test]
    fn hit_and_miss_accounting() {
        let mut pool = BufferPool::new(2, EvictPolicy::Lru);
        assert!(pool.get(PageId(1)).is_none());
        pool.insert(PageId(1), page(1), false).unwrap();
        assert!(pool.get(PageId(1)).is_some());
        assert_eq!(pool.hits(), 1);
        assert_eq!(pool.misses(), 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut pool = BufferPool::new(2, EvictPolicy::Lru);
        pool.insert(PageId(1), page(1), false).unwrap();
        pool.insert(PageId(2), page(2), false).unwrap();
        pool.get(PageId(1)); // 2 is now LRU
        let ev = pool.insert(PageId(3), page(3), false).unwrap().unwrap();
        assert_eq!(ev.page.id, PageId(2));
        assert!(pool.contains(PageId(1)));
        assert!(pool.contains(PageId(3)));
    }

    #[test]
    fn eviction_reports_dirtiness() {
        let mut pool = BufferPool::new(1, EvictPolicy::Lru);
        pool.insert(PageId(1), page(1), false).unwrap();
        pool.get_mut(PageId(1)).unwrap().write_at(0, b"x");
        let ev = pool.insert(PageId(2), page(2), false).unwrap().unwrap();
        assert!(ev.dirty, "modified page must evict dirty");
    }

    #[test]
    fn pinned_pages_survive_eviction() {
        let mut pool = BufferPool::new(2, EvictPolicy::Lru);
        pool.insert(PageId(1), page(1), false).unwrap();
        pool.insert(PageId(2), page(2), false).unwrap();
        pool.pin(PageId(1));
        pool.pin(PageId(2));
        assert!(matches!(
            pool.insert(PageId(3), page(3), false),
            Err(StorageError::PoolExhausted)
        ));
        pool.unpin(PageId(2));
        let ev = pool.insert(PageId(3), page(3), false).unwrap().unwrap();
        assert_eq!(ev.page.id, PageId(2));
    }

    #[test]
    fn clock_gives_second_chance() {
        let mut pool = BufferPool::new(3, EvictPolicy::Clock);
        for n in 1..=3 {
            pool.insert(PageId(n), page(n), false).unwrap();
        }
        // Touch 1 and 2 so their reference bits are set again; 3's bit is
        // also set from insertion, so the first sweep clears all and the
        // second evicts the first unreferenced in clock order: 1.
        // Instead, reference only 2 and 3 after clearing pass is simulated
        // by two inserts.
        pool.get(PageId(2));
        pool.get(PageId(3));
        let ev = pool.insert(PageId(4), page(4), false).unwrap().unwrap();
        // all bits were set; sweep clears 1,2,3 then evicts 1 (oldest in order)
        assert_eq!(ev.page.id, PageId(1));
        // after the eviction the hand sits past 2, and the sweep left 2 and
        // 3 unreferenced, so the next eviction in clock order takes 3
        let ev2 = pool.insert(PageId(5), page(5), false).unwrap().unwrap();
        assert_eq!(ev2.page.id, PageId(3));
    }

    #[test]
    fn remove_returns_dirty_state() {
        let mut pool = BufferPool::new(2, EvictPolicy::Lru);
        pool.insert(PageId(1), page(1), true).unwrap();
        let ev = pool.remove(PageId(1)).unwrap();
        assert!(ev.dirty);
        assert!(pool.remove(PageId(1)).is_none());
        assert!(pool.is_empty());
    }

    #[test]
    fn dirty_ids_sorted() {
        let mut pool = BufferPool::new(4, EvictPolicy::Lru);
        for n in [3, 1, 2] {
            pool.insert(PageId(n), page(n), n != 2).unwrap();
        }
        assert_eq!(pool.dirty_ids(), vec![PageId(1), PageId(3)]);
    }

    #[test]
    fn mark_clean_clears_dirty() {
        let mut pool = BufferPool::new(1, EvictPolicy::Lru);
        pool.insert(PageId(1), page(1), true).unwrap();
        pool.mark_clean(PageId(1));
        assert!(pool.dirty_ids().is_empty());
        let ev = pool.insert(PageId(2), page(2), false).unwrap().unwrap();
        assert!(!ev.dirty);
    }

    #[test]
    #[should_panic(expected = "already resident")]
    fn double_insert_panics() {
        let mut pool = BufferPool::new(2, EvictPolicy::Lru);
        pool.insert(PageId(1), page(1), false).unwrap();
        pool.insert(PageId(1), page(1), false).unwrap();
    }

    #[test]
    #[should_panic(expected = "unpin of unpinned")]
    fn unbalanced_unpin_panics() {
        let mut pool = BufferPool::new(2, EvictPolicy::Lru);
        pool.insert(PageId(1), page(1), false).unwrap();
        pool.unpin(PageId(1));
    }

    #[test]
    fn peek_does_not_affect_lru() {
        let mut pool = BufferPool::new(2, EvictPolicy::Lru);
        pool.insert(PageId(1), page(1), false).unwrap();
        pool.insert(PageId(2), page(2), false).unwrap();
        pool.peek(PageId(1)); // must NOT refresh 1
        let ev = pool.insert(PageId(3), page(3), false).unwrap().unwrap();
        assert_eq!(ev.page.id, PageId(1));
    }

    #[test]
    fn sharded_pool_routes_pages_deterministically() {
        let pool: ShardedPool = ShardedPool::new(4, 64, EvictPolicy::Lru);
        for n in 0..256u64 {
            let a = pool.shard_of(PageId(n));
            let b = pool.shard_of(PageId(n));
            assert_eq!(a, b);
            assert!(a < 4);
        }
        // the hash actually spreads pages over shards
        let mut seen = [false; 4];
        for n in 0..256u64 {
            seen[pool.shard_of(PageId(n))] = true;
        }
        assert!(seen.iter().all(|&s| s), "all shards populated: {seen:?}");
    }

    #[test]
    fn sharded_pool_isolates_evictions_per_shard() {
        // 2 shards × 1 frame each: inserting two pages of the same shard
        // evicts within that shard only
        let pool: ShardedPool = ShardedPool::new(2, 2, EvictPolicy::Lru);
        let (mut a, mut b) = (None, None);
        for n in 0..64u64 {
            match pool.shard_of(PageId(n)) {
                0 if a.is_none() => a = Some(n),
                1 if b.is_none() => b = Some(n),
                _ => {}
            }
        }
        let (a, b) = (a.unwrap(), b.unwrap());
        pool.lock(PageId(a))
            .pool
            .insert(PageId(a), page(a), false)
            .unwrap();
        pool.lock(PageId(b))
            .pool
            .insert(PageId(b), page(b), false)
            .unwrap();
        assert_eq!(pool.resident(), 2);
        // a second page in a's shard evicts a, not b
        let a2 = (a + 1..1024)
            .find(|&n| pool.shard_of(PageId(n)) == pool.shard_of(PageId(a)) && n != b)
            .unwrap();
        let ev = pool
            .lock(PageId(a2))
            .pool
            .insert(PageId(a2), page(a2), false)
            .unwrap()
            .expect("shard was full");
        assert_eq!(ev.page.id, PageId(a));
        assert!(pool.lock(PageId(b)).pool.contains(PageId(b)));
    }

    #[test]
    fn sharded_pool_meta_travels_with_shard() {
        let pool: ShardedPool<Vec<u64>> = ShardedPool::with_meta(2, 8, EvictPolicy::Lru, Vec::new);
        let id = PageId(9);
        pool.lock(id).meta.push(42);
        assert_eq!(pool.lock(id).meta, vec![42]);
        // aggregate helpers see every shard
        assert_eq!(pool.resident(), 0);
        assert_eq!(pool.hit_miss(), (0, 0));
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _: ShardedPool = ShardedPool::new(0, 8, EvictPolicy::Lru);
    }
}
