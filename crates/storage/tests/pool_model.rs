//! Model-based property test of the buffer pool: an arbitrary operation
//! script is run against both the pool and a trivially-correct reference
//! model; their observable behaviour must agree.

use proptest::prelude::*;
use rmdb_storage::{BufferPool, EvictPolicy, Page, PageId};
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Get(u64),
    GetMut(u64),
    Insert(u64),
    Pin(u64),
    Unpin(u64),
    Remove(u64),
    MarkClean(u64),
}

fn op_strategy(keys: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0..keys).prop_map(Op::Get),
        2 => (0..keys).prop_map(Op::GetMut),
        3 => (0..keys).prop_map(Op::Insert),
        1 => (0..keys).prop_map(Op::Pin),
        1 => (0..keys).prop_map(Op::Unpin),
        1 => (0..keys).prop_map(Op::Remove),
        1 => (0..keys).prop_map(Op::MarkClean),
    ]
}

/// Reference model: resident set with pins and dirtiness; no recency
/// (eviction choice is the pool's business — the model only checks
/// invariants about *what* may be evicted, not *which* page).
#[derive(Default)]
struct Model {
    resident: HashMap<u64, (bool /*dirty*/, u32 /*pins*/)>,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn pool_agrees_with_model(
        ops in proptest::collection::vec(op_strategy(12), 1..120),
        capacity in 2usize..6,
        policy_clock in any::<bool>(),
    ) {
        let policy = if policy_clock { EvictPolicy::Clock } else { EvictPolicy::Lru };
        let mut pool = BufferPool::new(capacity, policy);
        let mut model = Model::default();

        for op in ops {
            match op {
                Op::Get(k) => {
                    let got = pool.get(PageId(k)).is_some();
                    prop_assert_eq!(got, model.resident.contains_key(&k));
                }
                Op::GetMut(k) => {
                    let got = pool.get_mut(PageId(k)).is_some();
                    prop_assert_eq!(got, model.resident.contains_key(&k));
                    if let Some(entry) = model.resident.get_mut(&k) {
                        entry.0 = true; // get_mut dirties
                    }
                }
                Op::Insert(k) => {
                    if model.resident.contains_key(&k) {
                        continue; // double insert is a caller bug (panics)
                    }
                    match pool.insert(PageId(k), Page::new(PageId(k)), false) {
                        Ok(evicted) => {
                            if let Some(ev) = evicted {
                                let id = ev.page.id.0;
                                let (dirty, pins) = model
                                    .resident
                                    .remove(&id)
                                    .expect("evicted page was resident in model");
                                prop_assert_eq!(pins, 0, "pinned page evicted!");
                                prop_assert_eq!(ev.dirty, dirty, "dirtiness lost on eviction");
                            }
                            model.resident.insert(k, (false, 0));
                            prop_assert!(model.resident.len() <= capacity);
                        }
                        Err(_) => {
                            // pool exhausted: every resident page pinned
                            prop_assert!(
                                model.resident.len() >= capacity
                                    && model.resident.values().all(|&(_, p)| p > 0),
                                "PoolExhausted but an unpinned victim existed"
                            );
                        }
                    }
                }
                Op::Pin(k) => {
                    if let Some(entry) = model.resident.get_mut(&k) {
                        pool.pin(PageId(k));
                        entry.1 += 1;
                    }
                }
                Op::Unpin(k) => {
                    if let Some(entry) = model.resident.get_mut(&k) {
                        if entry.1 > 0 {
                            pool.unpin(PageId(k));
                            entry.1 -= 1;
                        }
                    }
                }
                Op::Remove(k) => {
                    let got = pool.remove(PageId(k));
                    match model.resident.remove(&k) {
                        Some((dirty, _)) => {
                            let ev = got.expect("model says resident");
                            prop_assert_eq!(ev.dirty, dirty);
                        }
                        None => prop_assert!(got.is_none()),
                    }
                }
                Op::MarkClean(k) => {
                    pool.mark_clean(PageId(k));
                    if let Some(entry) = model.resident.get_mut(&k) {
                        entry.0 = false;
                    }
                }
            }
            // global invariants after every step
            prop_assert_eq!(pool.len(), model.resident.len());
            let mut dirty_model: Vec<u64> = model
                .resident
                .iter()
                .filter(|(_, &(d, _))| d)
                .map(|(&k, _)| k)
                .collect();
            dirty_model.sort_unstable();
            let dirty_pool: Vec<u64> = pool.dirty_ids().into_iter().map(|p| p.0).collect();
            prop_assert_eq!(dirty_pool, dirty_model);
        }
    }
}
