//! A queued disk drive with deterministic service times.
//!
//! The simulator drives a [`Disk`] through two calls: [`Disk::submit`] hands
//! it a request (which starts service immediately if the drive is idle) and
//! [`Disk::complete`] retires the in-service request when its completion
//! event fires (starting the next queued request, if any). The caller owns
//! the event calendar; the disk just computes *when* each access finishes
//! and keeps utilization statistics.

use crate::geometry::Geometry;
use crate::model::{DiskMode, DiskParams};
use rmdb_sim::stats::{BusyTracker, Counter, Tally};
use rmdb_sim::SimTime;
use std::collections::VecDeque;

/// Whether an access reads or writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestKind {
    /// Transfer pages from the platter into the cache.
    Read,
    /// Transfer pages from the cache onto the platter.
    Write,
}

/// One disk access: a set of pages moved in a single request.
///
/// Conventional drives serve the pages one after another (the service time
/// honours head contiguity, so a sorted sequential batch is much cheaper
/// than scattered singles). Parallel-access drives require every page of a
/// request to live in one cylinder and serve them in a single access.
#[derive(Debug, Clone)]
pub struct DiskRequest {
    /// Identifier assigned by the disk at submission.
    pub id: u64,
    /// Read or write.
    pub kind: RequestKind,
    /// Linear page numbers on this disk.
    pub pages: Vec<u64>,
    /// Caller-side correlation tag (opaque to the disk).
    pub tag: u64,
}

/// Returned when a request enters service: the simulator should schedule a
/// completion event at `done_at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StartedService {
    /// Which request started.
    pub id: u64,
    /// Absolute completion time.
    pub done_at: SimTime,
}

/// Accumulated statistics for one drive.
#[derive(Debug, Clone, Default)]
pub struct DiskStats {
    /// Busy/idle tracking for utilization.
    pub busy: BusyTracker,
    /// Number of accesses (arm operations), the paper's "disk accesses".
    pub accesses: Counter,
    /// Pages transferred.
    pub pages: Counter,
    /// Per-access service times (ms).
    pub service: Tally,
    /// Read accesses.
    pub reads: Counter,
    /// Write accesses.
    pub writes: Counter,
}

/// A single disk drive with a FIFO request queue.
pub struct Disk {
    params: DiskParams,
    mode: DiskMode,
    arm: u32,
    /// Linear page number that could continue the last transfer without a
    /// seek or rotational delay (conventional contiguity optimization).
    contiguous_next: Option<u64>,
    queue: VecDeque<DiskRequest>,
    current: Option<DiskRequest>,
    next_id: u64,
    stats: DiskStats,
}

impl Disk {
    /// Create an idle disk with the arm parked at cylinder 0.
    pub fn new(params: DiskParams, mode: DiskMode) -> Self {
        Disk {
            params,
            mode,
            arm: 0,
            contiguous_next: None,
            queue: VecDeque::new(),
            current: None,
            next_id: 0,
            stats: DiskStats::default(),
        }
    }

    /// The drive's geometry.
    pub fn geometry(&self) -> &Geometry {
        &self.params.geometry
    }

    /// The drive's timing parameters.
    pub fn params(&self) -> &DiskParams {
        &self.params
    }

    /// Conventional or parallel-access.
    pub fn mode(&self) -> DiskMode {
        self.mode
    }

    /// Whether an access is in progress.
    pub fn is_busy(&self) -> bool {
        self.current.is_some()
    }

    /// Requests waiting (not counting the one in service).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &DiskStats {
        &self.stats
    }

    /// Utilization in `[0,1]` over `[0, end]`.
    pub fn utilization(&self, end: SimTime) -> f64 {
        self.stats.busy.utilization(end)
    }

    /// Submit a request. Returns its id and, if the drive was idle, the
    /// started service (schedule its completion event).
    ///
    /// # Panics
    /// If `pages` is empty, or if a parallel-access request spans cylinders.
    pub fn submit(
        &mut self,
        now: SimTime,
        kind: RequestKind,
        pages: Vec<u64>,
        tag: u64,
    ) -> (u64, Option<StartedService>) {
        assert!(!pages.is_empty(), "disk request with no pages");
        if self.mode == DiskMode::ParallelAccess {
            let cyl = self.params.geometry.cylinder_of(pages[0]);
            assert!(
                pages
                    .iter()
                    .all(|&p| self.params.geometry.cylinder_of(p) == cyl),
                "parallel-access request must stay within one cylinder"
            );
        }
        let id = self.next_id;
        self.next_id += 1;
        self.queue.push_back(DiskRequest {
            id,
            kind,
            pages,
            tag,
        });
        let started = if self.current.is_none() {
            Some(self.start_next(now).expect("queue is nonempty"))
        } else {
            None
        };
        (id, started)
    }

    /// Retire the in-service request at its completion time.
    ///
    /// Returns the finished request and, if another was queued, the newly
    /// started service.
    ///
    /// # Panics
    /// If no request is in service.
    pub fn complete(&mut self, now: SimTime) -> (DiskRequest, Option<StartedService>) {
        let done = self.current.take().expect("complete() with idle disk");
        self.stats.busy.end(now);
        let next = self.start_next(now);
        (done, next)
    }

    fn start_next(&mut self, now: SimTime) -> Option<StartedService> {
        let req = self.queue.pop_front()?;
        let service = self.service_time(&req.pages);
        self.stats.busy.begin(now);
        self.stats.accesses.bump();
        self.stats.pages.add(req.pages.len() as u64);
        self.stats.service.record_time(service);
        match req.kind {
            RequestKind::Read => self.stats.reads.bump(),
            RequestKind::Write => self.stats.writes.bump(),
        }
        let started = StartedService {
            id: req.id,
            done_at: now + service,
        };
        self.current = Some(req);
        Some(started)
    }

    /// Compute the service time for `pages` and update the arm state.
    fn service_time(&mut self, pages: &[u64]) -> SimTime {
        match self.mode {
            DiskMode::Conventional => {
                // Head contiguity never spans requests: by the time the
                // next request is issued the platter has rotated past the
                // following sector (drives of this era had no read-ahead
                // buffer), so the first page of every request pays
                // rotational latency. Pages *within* one request stream
                // back-to-back.
                self.contiguous_next = None;
                let mut total = SimTime::ZERO;
                for &p in pages {
                    total += self.one_page_time(p);
                }
                total
            }
            DiskMode::ParallelAccess => {
                let g = self.params.geometry;
                let cyl = g.cylinder_of(pages[0]);
                let dist = cyl.abs_diff(self.arm);
                let sectors = g.distinct_sectors(pages) as u64;
                self.arm = cyl;
                self.contiguous_next = None;
                self.params.seek(dist) + self.params.latency() + self.params.page_transfer * sectors
            }
        }
    }

    /// Conventional single-page access time given the current arm state.
    fn one_page_time(&mut self, page: u64) -> SimTime {
        let g = self.params.geometry;
        let pos = g.locate(page);
        let time = if self.contiguous_next == Some(page) && pos.cylinder == self.arm {
            // Head already positioned; a new track costs a head switch.
            if pos.sector == 0 && page != g.cylinder_start(pos.cylinder) {
                self.params.head_switch + self.params.page_transfer
            } else {
                self.params.page_transfer
            }
        } else {
            let dist = pos.cylinder.abs_diff(self.arm);
            self.params.seek(dist) + self.params.latency() + self.params.page_transfer
        };
        self.arm = pos.cylinder;
        self.contiguous_next =
            if page + 1 < g.total_pages() && g.cylinder_of(page + 1) == pos.cylinder {
                Some(page + 1)
            } else {
                None
            };
        time
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn conv() -> Disk {
        Disk::new(DiskParams::ibm_3350(), DiskMode::Conventional)
    }

    fn par() -> Disk {
        Disk::new(DiskParams::ibm_3350(), DiskMode::ParallelAccess)
    }

    #[test]
    fn random_access_time_matches_3350() {
        let mut d = conv();
        // Far-away page: seek + latency + transfer ≈ 10..50 + 8.35 + 3.6
        let (_, started) = d.submit(SimTime::ZERO, RequestKind::Read, vec![30_000], 0);
        let t = started.unwrap().done_at.as_ms();
        assert!((20.0..62.0).contains(&t), "service {t}ms out of range");
    }

    #[test]
    fn contiguity_within_one_request_is_transfer_only() {
        let mut d = conv();
        let (_, s) = d.submit(SimTime::ZERO, RequestKind::Read, vec![100, 101], 0);
        let service = s.unwrap().done_at;
        // first page: seek + latency + transfer; second page: transfer only
        let expect = d.params().seek(0) + d.params().latency() + d.params().page_transfer * 2;
        assert_eq!(service, expect);
    }

    #[test]
    fn contiguity_does_not_span_requests() {
        // A 1985 drive has no read-ahead buffer: a follow-up request for
        // the very next sector still pays rotational latency.
        let mut d = conv();
        let (_, s0) = d.submit(SimTime::ZERO, RequestKind::Read, vec![100], 0);
        let done0 = s0.unwrap().done_at;
        d.complete(done0);
        let (_, s1) = d.submit(done0, RequestKind::Read, vec![101], 0);
        let service = s1.unwrap().done_at - done0;
        assert_eq!(service, d.params().latency() + d.params().page_transfer);
    }

    #[test]
    fn track_switch_within_request_costs_head_switch() {
        let mut d = conv();
        // pages 3 and 4 straddle the track-0/track-1 boundary
        let (_, s) = d.submit(SimTime::ZERO, RequestKind::Read, vec![3, 4], 0);
        let service = s.unwrap().done_at;
        let expect = d.params().latency()
            + d.params().page_transfer
            + d.params().head_switch
            + d.params().page_transfer;
        assert_eq!(service, expect);
    }

    #[test]
    fn batched_sequential_amortizes_seek() {
        let mut d = conv();
        let pages: Vec<u64> = (240..260).collect(); // cylinder 2, contiguous
        let (_, s) = d.submit(SimTime::ZERO, RequestKind::Read, pages, 0);
        let total = s.unwrap().done_at.as_ms();
        // one positioning (~min_seek+latency) + 20 transfers + track switches
        let per_page = total / 20.0;
        assert!(
            per_page < 6.0,
            "sequential batch too slow: {per_page}ms/page"
        );
    }

    #[test]
    fn parallel_access_batches_cylinder() {
        let mut d = par();
        // 30 pages at sector 0 of each track of cylinder 1
        let pages: Vec<u64> = (0..30).map(|t| 120 + t * 4).collect();
        let (_, s) = d.submit(SimTime::ZERO, RequestKind::Read, pages, 0);
        let t = s.unwrap().done_at;
        // one seek + latency + ONE page-transfer slot (all tracks parallel)
        let expect = d.params().seek(1) + d.params().latency() + d.params().page_transfer;
        assert_eq!(t, expect);
    }

    #[test]
    fn parallel_full_cylinder_takes_four_slots() {
        let mut d = par();
        let pages: Vec<u64> = (120..240).collect();
        let (_, s) = d.submit(SimTime::ZERO, RequestKind::Read, pages, 0);
        let t = s.unwrap().done_at;
        let expect = d.params().seek(1) + d.params().latency() + d.params().page_transfer * 4;
        assert_eq!(t, expect);
        assert_eq!(d.stats().pages.get(), 120);
        assert_eq!(d.stats().accesses.get(), 1);
    }

    #[test]
    #[should_panic(expected = "one cylinder")]
    fn parallel_rejects_cross_cylinder_request() {
        let mut d = par();
        d.submit(SimTime::ZERO, RequestKind::Read, vec![119, 120], 0);
    }

    #[test]
    fn fifo_queueing_and_completion_chain() {
        let mut d = conv();
        let (id0, s0) = d.submit(SimTime::ZERO, RequestKind::Read, vec![0], 7);
        let (id1, s1) = d.submit(SimTime::ZERO, RequestKind::Write, vec![50_000], 8);
        assert!(s0.is_some());
        assert!(s1.is_none(), "second request must queue");
        assert_eq!(d.queue_len(), 1);
        let t0 = s0.unwrap().done_at;
        let (done, next) = d.complete(t0);
        assert_eq!(done.id, id0);
        assert_eq!(done.tag, 7);
        let n = next.expect("queued request starts");
        assert_eq!(n.id, id1);
        let (done1, next1) = d.complete(n.done_at);
        assert_eq!(done1.id, id1);
        assert!(next1.is_none());
        assert!(!d.is_busy());
    }

    #[test]
    fn utilization_counts_only_service() {
        let mut d = conv();
        let (_, s) = d.submit(SimTime::ZERO, RequestKind::Read, vec![30_000], 0);
        let t = s.unwrap().done_at;
        d.complete(t);
        let end = t * 2;
        let u = d.utilization(end);
        assert!((u - 0.5).abs() < 1e-9, "utilization {u}");
    }

    #[test]
    #[should_panic(expected = "no pages")]
    fn empty_request_rejected() {
        let mut d = conv();
        d.submit(SimTime::ZERO, RequestKind::Read, vec![], 0);
    }

    proptest! {
        #[test]
        fn conventional_service_positive_and_bounded(
            page in 0u64..Geometry::IBM_3350.total_pages()
        ) {
            let mut d = conv();
            let (_, s) = d.submit(SimTime::ZERO, RequestKind::Read, vec![page], 0);
            let t = s.unwrap().done_at.as_ms();
            // at most max seek + latency + transfer
            prop_assert!(t > 0.0 && t <= 50.0 + 8.35 + 3.6 + 0.01);
        }

        #[test]
        fn parallel_batch_never_slower_than_singles(
            cyl in 0u32..555,
            count in 1usize..=30,
        ) {
            let g = Geometry::IBM_3350;
            let base = g.cylinder_start(cyl);
            let pages: Vec<u64> = (0..count as u64).map(|i| base + i).collect();

            let mut batched = par();
            let (_, s) = batched.submit(SimTime::ZERO, RequestKind::Read, pages.clone(), 0);
            let batch_time = s.unwrap().done_at;

            let mut single = par();
            let mut total = SimTime::ZERO;
            let mut now = SimTime::ZERO;
            for p in pages {
                let (_, s) = single.submit(now, RequestKind::Read, vec![p], 0);
                let done = s.unwrap().done_at;
                total += done - now;
                single.complete(done);
                now = done;
            }
            prop_assert!(batch_time <= total);
        }
    }
}
