//! Disk geometry: cylinders, tracks, sectors, and linear page numbering.
//!
//! Pages are numbered linearly so the rest of the simulator can treat a disk
//! as an array of pages; [`Geometry::locate`] recovers the physical position
//! needed for timing.
//!
//! The IBM 3350 has 555 user cylinders of 30 tracks; a track (19,069 bytes)
//! holds four 4 KB pages, so one cylinder holds 120 pages.

use serde::{Deserialize, Serialize};

/// Physical position of a page on a disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PagePos {
    /// Cylinder index, `0..cylinders`.
    pub cylinder: u32,
    /// Track (surface) within the cylinder, `0..tracks_per_cylinder`.
    pub track: u32,
    /// Sector (page slot) within the track, `0..pages_per_track`.
    pub sector: u32,
}

/// Cylinder/track/sector layout of a disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Geometry {
    /// Number of cylinders.
    pub cylinders: u32,
    /// Tracks (recording surfaces) per cylinder.
    pub tracks_per_cylinder: u32,
    /// Pages per track.
    pub pages_per_track: u32,
}

impl Geometry {
    /// Geometry of an IBM 3350 with 4 KB pages.
    pub const IBM_3350: Geometry = Geometry {
        cylinders: 555,
        tracks_per_cylinder: 30,
        pages_per_track: 4,
    };

    /// Pages held by one cylinder.
    #[inline]
    pub const fn pages_per_cylinder(&self) -> u64 {
        (self.tracks_per_cylinder * self.pages_per_track) as u64
    }

    /// Total pages on the disk.
    #[inline]
    pub const fn total_pages(&self) -> u64 {
        self.cylinders as u64 * self.pages_per_cylinder()
    }

    /// Physical position of linear page number `page`.
    ///
    /// Linear numbering fills a cylinder track-by-track before moving to the
    /// next cylinder, so sequential page numbers stay under the arm as long
    /// as possible.
    ///
    /// # Panics
    /// If `page >= total_pages()`.
    pub fn locate(&self, page: u64) -> PagePos {
        assert!(page < self.total_pages(), "page {page} beyond disk end");
        let per_cyl = self.pages_per_cylinder();
        let cylinder = (page / per_cyl) as u32;
        let within = page % per_cyl;
        let track = (within / self.pages_per_track as u64) as u32;
        let sector = (within % self.pages_per_track as u64) as u32;
        PagePos {
            cylinder,
            track,
            sector,
        }
    }

    /// Inverse of [`Geometry::locate`].
    pub fn linear(&self, pos: PagePos) -> u64 {
        debug_assert!(pos.cylinder < self.cylinders);
        debug_assert!(pos.track < self.tracks_per_cylinder);
        debug_assert!(pos.sector < self.pages_per_track);
        pos.cylinder as u64 * self.pages_per_cylinder()
            + pos.track as u64 * self.pages_per_track as u64
            + pos.sector as u64
    }

    /// Cylinder holding linear page `page`.
    #[inline]
    pub fn cylinder_of(&self, page: u64) -> u32 {
        (page / self.pages_per_cylinder()) as u32
    }

    /// First linear page of `cylinder`.
    #[inline]
    pub fn cylinder_start(&self, cylinder: u32) -> u64 {
        cylinder as u64 * self.pages_per_cylinder()
    }

    /// Number of distinct sectors (angular positions) covered by `pages`.
    ///
    /// On a parallel-access disk, pages at the same sector on different
    /// tracks move in one transfer slot; the transfer component of an access
    /// is proportional to this count.
    pub fn distinct_sectors(&self, pages: &[u64]) -> u32 {
        let mut mask: u32 = 0;
        for &p in pages {
            mask |= 1 << self.locate(p).sector;
        }
        mask.count_ones()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const G: Geometry = Geometry::IBM_3350;

    #[test]
    fn ibm_3350_shape() {
        assert_eq!(G.pages_per_cylinder(), 120);
        assert_eq!(G.total_pages(), 66_600);
    }

    #[test]
    fn locate_first_and_last() {
        assert_eq!(
            G.locate(0),
            PagePos {
                cylinder: 0,
                track: 0,
                sector: 0
            }
        );
        assert_eq!(
            G.locate(G.total_pages() - 1),
            PagePos {
                cylinder: 554,
                track: 29,
                sector: 3
            }
        );
    }

    #[test]
    fn sequential_pages_fill_track_first() {
        // pages 0..4 on track 0, page 4 on track 1
        assert_eq!(G.locate(3).track, 0);
        assert_eq!(G.locate(4).track, 1);
        assert_eq!(G.locate(4).sector, 0);
        // page 120 starts the next cylinder
        assert_eq!(G.locate(120).cylinder, 1);
    }

    #[test]
    #[should_panic(expected = "beyond disk end")]
    fn locate_out_of_range_panics() {
        G.locate(G.total_pages());
    }

    #[test]
    fn distinct_sectors_counts_angular_positions() {
        // pages 0,4,8: sector 0 of tracks 0,1,2 → one angular position
        assert_eq!(G.distinct_sectors(&[0, 4, 8]), 1);
        // pages 0,1: sectors 0 and 1
        assert_eq!(G.distinct_sectors(&[0, 1]), 2);
        // a whole cylinder covers all 4 sectors
        let all: Vec<u64> = (0..120).collect();
        assert_eq!(G.distinct_sectors(&all), 4);
    }

    proptest! {
        #[test]
        fn locate_linear_roundtrip(page in 0u64..Geometry::IBM_3350.total_pages()) {
            let pos = G.locate(page);
            prop_assert_eq!(G.linear(pos), page);
            prop_assert!(pos.cylinder < G.cylinders);
            prop_assert!(pos.track < G.tracks_per_cylinder);
            prop_assert!(pos.sector < G.pages_per_track);
        }

        #[test]
        fn cylinder_of_matches_locate(page in 0u64..Geometry::IBM_3350.total_pages()) {
            prop_assert_eq!(G.cylinder_of(page), G.locate(page).cylinder);
        }
    }
}
