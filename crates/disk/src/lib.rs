//! Disk models for the database-machine simulator.
//!
//! The paper models its data disks after the **IBM 3350** and additionally
//! considers **parallel-access** drives (as proposed by the SURE and DBC
//! projects) on which all pages on the different tracks of a cylinder can be
//! read or written in parallel in one disk access.
//!
//! This crate provides:
//!
//! * [`geometry::Geometry`] — cylinder/track/sector layout and linear page
//!   numbering,
//! * [`model::DiskParams`] — seek/rotation/transfer timing derived from the
//!   3350's published characteristics,
//! * [`Disk`] — a queued disk with an arm position, deterministic
//!   (expected-value) service times, and utilization accounting.
//!
//! Service times are analytic expectations rather than sampled randomness:
//! the simulator's randomness lives entirely in the workload, which keeps
//! experiments reproducible and variance low, exactly like the original
//! study's reporting of single aggregate numbers per configuration.

pub mod disk;
pub mod geometry;
pub mod model;

pub use disk::{Disk, DiskRequest, DiskStats, RequestKind, StartedService};
pub use geometry::{Geometry, PagePos};
pub use model::{DiskMode, DiskParams};
