//! Disk timing parameters and the analytic service-time model.

use crate::geometry::Geometry;
use rmdb_sim::SimTime;
use serde::{Deserialize, Serialize};

/// Whether a drive is a conventional moving-head disk or a parallel-access
/// drive (SURE/DBC style) whose heads transfer from every track of a
/// cylinder simultaneously.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DiskMode {
    /// One page per access: seek + rotational latency + one-page transfer
    /// (latency and seek elided for head-contiguous accesses).
    Conventional,
    /// One access serves any set of pages within a single cylinder; the
    /// transfer component covers the distinct angular positions touched.
    ParallelAccess,
}

/// Timing parameters of a drive.
///
/// Defaults follow the IBM 3350: 10 ms minimum / 25 ms average / 50 ms
/// maximum seek, 16.7 ms rotation (3600 rpm), and ≈1.2 MB/s transfer
/// (3.6 ms per 4 KB page).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiskParams {
    /// Layout of the platters.
    pub geometry: Geometry,
    /// Time for a one-cylinder seek.
    pub min_seek: SimTime,
    /// Time for a full-stroke seek.
    pub max_seek: SimTime,
    /// Time for one full rotation.
    pub rotation: SimTime,
    /// Time to transfer a single page.
    pub page_transfer: SimTime,
    /// Extra settling time when an access switches heads (track) without
    /// moving the arm; models losing rotational position on the 3350.
    pub head_switch: SimTime,
}

impl DiskParams {
    /// IBM 3350 parameters with 4 KB pages.
    pub fn ibm_3350() -> Self {
        DiskParams {
            geometry: Geometry::IBM_3350,
            min_seek: SimTime::from_ms(10.0),
            max_seek: SimTime::from_ms(50.0),
            rotation: SimTime::from_ms(16.7),
            page_transfer: SimTime::from_ms(3.6),
            head_switch: SimTime::from_ms(1.0),
        }
    }

    /// Expected rotational latency (half a rotation).
    #[inline]
    pub fn latency(&self) -> SimTime {
        self.rotation / 2
    }

    /// Seek time for moving the arm `distance` cylinders.
    ///
    /// Zero for `distance == 0`; otherwise linear between the one-cylinder
    /// and full-stroke times, the standard first-order model for arm
    /// actuators of this era.
    pub fn seek(&self, distance: u32) -> SimTime {
        if distance == 0 {
            return SimTime::ZERO;
        }
        let span = self.max_seek - self.min_seek;
        let max_dist = self.geometry.cylinders as u64 - 1;
        let d = (distance as u64).min(max_dist);
        // Interpolate so a one-cylinder move costs `min_seek` and a
        // full-stroke move costs `max_seek`.
        self.min_seek + SimTime::from_micros(span.as_micros() * (d - 1) / (max_dist - 1))
    }

    /// Expected seek time for a uniformly random target cylinder
    /// (distance ≈ one third of the stroke).
    pub fn average_seek(&self) -> SimTime {
        self.seek(self.geometry.cylinders / 3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seek_endpoints() {
        let p = DiskParams::ibm_3350();
        assert_eq!(p.seek(0), SimTime::ZERO);
        assert_eq!(p.seek(1), p.min_seek);
        assert_eq!(p.seek(p.geometry.cylinders - 1), p.max_seek);
    }

    #[test]
    fn seek_is_monotone() {
        let p = DiskParams::ibm_3350();
        let mut last = SimTime::ZERO;
        for d in 0..p.geometry.cylinders {
            let s = p.seek(d);
            assert!(s >= last, "seek not monotone at distance {d}");
            last = s;
        }
    }

    #[test]
    fn average_seek_near_25ms() {
        let p = DiskParams::ibm_3350();
        let avg = p.average_seek().as_ms();
        assert!(
            (22.0..26.0).contains(&avg),
            "3350 average seek should be ≈25ms, got {avg}"
        );
    }

    #[test]
    fn latency_is_half_rotation() {
        let p = DiskParams::ibm_3350();
        assert_eq!(p.latency(), SimTime::from_ms(16.7) / 2);
    }
}
