//! Statistics accumulators for simulation output.
//!
//! Three kinds of statistic cover everything the paper reports:
//!
//! * [`Tally`] — sample statistics (mean/min/max/count) of observations such
//!   as transaction completion times.
//! * [`TimeWeighted`] — time-weighted averages of a piecewise-constant value
//!   such as queue length, cache occupancy, or a busy/idle indicator
//!   (utilization is the time-weighted mean of a 0/1 value).
//! * [`Counter`] — monotonically increasing event counts (disk accesses,
//!   log pages written).

use crate::time::SimTime;
use serde::Serialize;

/// Sample statistics over a stream of observations.
#[derive(Debug, Clone, Default, Serialize)]
pub struct Tally {
    count: u64,
    sum: f64,
    min: Option<f64>,
    max: Option<f64>,
}

impl Tally {
    /// New empty tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation.
    pub fn record(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.min = Some(self.min.map_or(value, |m| m.min(value)));
        self.max = Some(self.max.map_or(value, |m| m.max(value)));
    }

    /// Record a simulated duration, in milliseconds.
    pub fn record_time(&mut self, value: SimTime) {
        self.record(value.as_ms());
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of observations; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest observation, if any.
    pub fn min(&self) -> Option<f64> {
        self.min
    }

    /// Largest observation, if any.
    pub fn max(&self) -> Option<f64> {
        self.max
    }
}

/// Time-weighted average of a piecewise-constant value.
///
/// Call [`TimeWeighted::set`] whenever the value changes; the accumulator
/// integrates value × elapsed-time between changes. Utilization of a server
/// is the time-weighted mean of its busy indicator:
///
/// ```
/// use rmdb_sim::stats::TimeWeighted;
/// use rmdb_sim::SimTime;
///
/// let mut busy = TimeWeighted::new(SimTime::ZERO, 0.0);
/// busy.set(SimTime::from_ms(10.0), 1.0); // idle for 10ms
/// busy.set(SimTime::from_ms(40.0), 0.0); // busy for 30ms
/// assert!((busy.mean(SimTime::from_ms(40.0)) - 0.75).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Serialize)]
pub struct TimeWeighted {
    last_change: SimTime,
    value: f64,
    integral: f64,
    peak: f64,
}

impl TimeWeighted {
    /// Start integrating at `start` with initial `value`.
    pub fn new(start: SimTime, value: f64) -> Self {
        TimeWeighted {
            last_change: start,
            value,
            integral: 0.0,
            peak: value,
        }
    }

    fn advance(&mut self, now: SimTime) {
        debug_assert!(now >= self.last_change, "time went backwards");
        let dt = (now - self.last_change).as_ms();
        self.integral += self.value * dt;
        self.last_change = now;
    }

    /// Record that the value becomes `value` at time `now`.
    pub fn set(&mut self, now: SimTime, value: f64) {
        self.advance(now);
        self.value = value;
        self.peak = self.peak.max(value);
    }

    /// Add `delta` to the current value at time `now`.
    pub fn add(&mut self, now: SimTime, delta: f64) {
        let v = self.value + delta;
        self.set(now, v);
    }

    /// Current (instantaneous) value.
    pub fn current(&self) -> f64 {
        self.value
    }

    /// Largest value ever held.
    pub fn peak(&self) -> f64 {
        self.peak
    }

    /// Time-weighted mean over `[start, end]`; 0.0 for an empty interval.
    pub fn mean(&self, end: SimTime) -> f64 {
        let dt = (end - self.last_change).as_ms();
        let total = self.integral + self.value * dt;
        let span = end.as_ms();
        if span == 0.0 {
            0.0
        } else {
            total / span
        }
    }
}

/// A monotonically increasing event counter.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct Counter(u64);

impl Counter {
    /// New zeroed counter.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Increment by one.
    pub fn bump(&mut self) {
        self.0 += 1;
    }

    /// Increment by `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.0
    }
}

/// Tracks the busy time of a single server (a disk arm, a processor).
///
/// A thin convenience over [`TimeWeighted`] for the common utilization case.
#[derive(Debug, Clone, Serialize)]
pub struct BusyTracker {
    busy: TimeWeighted,
    busy_since: Option<SimTime>,
}

impl BusyTracker {
    /// New tracker; the server starts idle at time zero.
    pub fn new() -> Self {
        BusyTracker {
            busy: TimeWeighted::new(SimTime::ZERO, 0.0),
            busy_since: None,
        }
    }

    /// Mark the server busy at `now`. No-op if already busy.
    pub fn begin(&mut self, now: SimTime) {
        if self.busy_since.is_none() {
            self.busy_since = Some(now);
            self.busy.set(now, 1.0);
        }
    }

    /// Mark the server idle at `now`. No-op if already idle.
    pub fn end(&mut self, now: SimTime) {
        if self.busy_since.take().is_some() {
            self.busy.set(now, 0.0);
        }
    }

    /// Whether the server is currently busy.
    pub fn is_busy(&self) -> bool {
        self.busy_since.is_some()
    }

    /// Utilization in `[0, 1]` over `[0, end]`.
    pub fn utilization(&self, end: SimTime) -> f64 {
        self.busy.mean(end)
    }
}

impl Default for BusyTracker {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tally_basics() {
        let mut t = Tally::new();
        assert_eq!(t.mean(), 0.0);
        for v in [2.0, 4.0, 9.0] {
            t.record(v);
        }
        assert_eq!(t.count(), 3);
        assert_eq!(t.sum(), 15.0);
        assert_eq!(t.mean(), 5.0);
        assert_eq!(t.min(), Some(2.0));
        assert_eq!(t.max(), Some(9.0));
    }

    #[test]
    fn tally_record_time_is_ms() {
        let mut t = Tally::new();
        t.record_time(SimTime::from_ms(7.5));
        assert_eq!(t.sum(), 7.5);
    }

    #[test]
    fn time_weighted_integrates() {
        let mut w = TimeWeighted::new(SimTime::ZERO, 2.0);
        w.set(SimTime::from_ms(10.0), 6.0);
        // [0,10): 2.0, [10,20): 6.0 → mean 4.0
        assert!((w.mean(SimTime::from_ms(20.0)) - 4.0).abs() < 1e-9);
        assert_eq!(w.peak(), 6.0);
        assert_eq!(w.current(), 6.0);
    }

    #[test]
    fn time_weighted_add() {
        let mut w = TimeWeighted::new(SimTime::ZERO, 0.0);
        w.add(SimTime::from_ms(5.0), 3.0);
        w.add(SimTime::from_ms(10.0), -3.0);
        // busy 3 between 5 and 10 → integral 15 over 10ms = 1.5
        assert!((w.mean(SimTime::from_ms(10.0)) - 1.5).abs() < 1e-9);
        assert_eq!(w.current(), 0.0);
    }

    #[test]
    fn busy_tracker_utilization() {
        let mut b = BusyTracker::new();
        b.begin(SimTime::from_ms(0.0));
        b.end(SimTime::from_ms(25.0));
        b.begin(SimTime::from_ms(75.0));
        b.end(SimTime::from_ms(100.0));
        assert!((b.utilization(SimTime::from_ms(100.0)) - 0.5).abs() < 1e-9);
        assert!(!b.is_busy());
    }

    #[test]
    fn busy_tracker_idempotent_transitions() {
        let mut b = BusyTracker::new();
        b.begin(SimTime::from_ms(0.0));
        b.begin(SimTime::from_ms(10.0)); // ignored
        assert!(b.is_busy());
        b.end(SimTime::from_ms(50.0));
        b.end(SimTime::from_ms(60.0)); // ignored
        assert!((b.utilization(SimTime::from_ms(100.0)) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.bump();
        c.add(9);
        assert_eq!(c.get(), 10);
    }
}
