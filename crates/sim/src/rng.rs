//! Deterministic randomness for simulations.
//!
//! Every experiment in the paper's reproduction is seeded, so runs are
//! exactly repeatable. `SimRng` wraps [`rand::rngs::StdRng`] with the handful
//! of sampling operations the workload generator needs.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A seeded random-number generator for simulation workloads.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Create a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    pub fn uniform(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        self.inner.gen_range(lo..=hi)
    }

    /// Uniform integer in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        self.inner.gen_range(0..n)
    }

    /// Uniform float in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        self.inner.gen_bool(p)
    }

    /// Choose `k` distinct elements of `items` uniformly (order of the
    /// returned sample follows the original slice order).
    ///
    /// # Panics
    /// If `k > items.len()`.
    pub fn sample_subset<T: Copy>(&mut self, items: &[T], k: usize) -> Vec<T> {
        assert!(k <= items.len(), "sample larger than population");
        // Partial Fisher-Yates over indices keeps selection uniform.
        let mut idx: Vec<usize> = (0..items.len()).collect();
        for i in 0..k {
            let j = self.inner.gen_range(i..idx.len());
            idx.swap(i, j);
        }
        let mut picked: Vec<usize> = idx[..k].to_vec();
        picked.sort_unstable();
        picked.into_iter().map(|i| items[i]).collect()
    }

    /// Shuffle a slice in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        items.shuffle(&mut self.inner);
    }

    /// Derive an independent generator (for a sub-component) from this one.
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed_from_u64(self.inner.gen())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.uniform(1, 250), b.uniform(1, 250));
        }
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = SimRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.uniform(1, 250);
            assert!((1..=250).contains(&v));
        }
    }

    #[test]
    fn subset_is_distinct_and_sized() {
        let mut rng = SimRng::seed_from_u64(3);
        let items: Vec<u32> = (0..100).collect();
        let sub = rng.sample_subset(&items, 20);
        assert_eq!(sub.len(), 20);
        let mut dedup = sub.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), 20, "sample contained duplicates");
        // preserves slice order because we sort indices
        assert!(sub.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn subset_full_population() {
        let mut rng = SimRng::seed_from_u64(3);
        let items = [1u8, 2, 3];
        assert_eq!(rng.sample_subset(&items, 3), vec![1, 2, 3]);
        assert!(rng.sample_subset(&items, 0).is_empty());
    }

    #[test]
    fn subset_is_roughly_uniform() {
        // Each of 10 items should appear in a k=5 sample about half the time.
        let mut rng = SimRng::seed_from_u64(11);
        let items: Vec<usize> = (0..10).collect();
        let mut counts = [0u32; 10];
        let trials = 4000;
        for _ in 0..trials {
            for v in rng.sample_subset(&items, 5) {
                counts[v] += 1;
            }
        }
        for &c in &counts {
            let freq = c as f64 / trials as f64;
            assert!((0.42..0.58).contains(&freq), "skewed frequency {freq}");
        }
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut a = SimRng::seed_from_u64(42);
        let mut fork = a.fork();
        // The fork must not replay the parent's stream.
        let parent: Vec<u64> = (0..10).map(|_| a.uniform(0, 1000)).collect();
        let child: Vec<u64> = (0..10).map(|_| fork.uniform(0, 1000)).collect();
        assert_ne!(parent, child);
    }
}
