//! Discrete-event simulation kernel.
//!
//! This crate provides the machinery shared by every simulated component of
//! the database machine: a microsecond-resolution simulated clock
//! ([`SimTime`]), an event calendar ([`Calendar`]) with deterministic
//! tie-breaking, a seeded random-number facade ([`SimRng`]) so that every
//! experiment is exactly reproducible, and statistics accumulators
//! ([`stats::Tally`], [`stats::TimeWeighted`], [`stats::Counter`]) used to
//! report the paper's metrics (execution time per page, transaction
//! completion time, device utilization).
//!
//! The kernel is intentionally small: higher layers (the disk models in
//! `rmdb-disk` and the machine model in `rmdb-machine`) own their domain
//! state and use the calendar as a priority queue of typed events.

pub mod calendar;
pub mod resource;
pub mod rng;
pub mod stats;
pub mod time;

pub use calendar::Calendar;
pub use resource::FifoResource;
pub use rng::SimRng;
pub use time::SimTime;
