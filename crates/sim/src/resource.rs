//! A FIFO multi-server resource with queueing statistics.
//!
//! Models a pool of identical servers (e.g. the bank of query processors or
//! page-table processors). Requests either seize a free server immediately
//! or wait in FIFO order; the caller is told when a request enters service
//! so it can schedule the matching completion event on its calendar.

use crate::stats::{Tally, TimeWeighted};
use crate::time::SimTime;
use std::collections::VecDeque;

/// Outcome of [`FifoResource::request`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Grant<T> {
    /// A server was free; the request enters service now.
    Immediate(T),
    /// All servers busy; the request is queued.
    Queued,
}

/// A pool of `capacity` identical servers with a shared FIFO queue.
pub struct FifoResource<T> {
    capacity: usize,
    in_service: usize,
    queue: VecDeque<(SimTime, T)>,
    busy: TimeWeighted,
    queue_len: TimeWeighted,
    wait: Tally,
}

impl<T> FifoResource<T> {
    /// Create a resource with `capacity` servers (must be nonzero).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "resource must have at least one server");
        FifoResource {
            capacity,
            in_service: 0,
            queue: VecDeque::new(),
            busy: TimeWeighted::new(SimTime::ZERO, 0.0),
            queue_len: TimeWeighted::new(SimTime::ZERO, 0.0),
            wait: Tally::new(),
        }
    }

    /// Number of servers.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Requests currently being served.
    pub fn in_service(&self) -> usize {
        self.in_service
    }

    /// Requests waiting in the queue.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Whether any server is free.
    pub fn has_free_server(&self) -> bool {
        self.in_service < self.capacity
    }

    /// Submit a request carrying `token` at time `now`.
    ///
    /// Returns [`Grant::Immediate`] (with the token back) if a server was
    /// free, else queues the token and returns [`Grant::Queued`].
    pub fn request(&mut self, now: SimTime, token: T) -> Grant<T> {
        if self.in_service < self.capacity {
            self.in_service += 1;
            self.busy.set(now, self.in_service as f64);
            self.wait.record(0.0);
            Grant::Immediate(token)
        } else {
            self.queue.push_back((now, token));
            self.queue_len.set(now, self.queue.len() as f64);
            Grant::Queued
        }
    }

    /// Release one server at time `now` (its request completed).
    ///
    /// If a request was queued, it enters service immediately and its token
    /// is returned so the caller can schedule its completion.
    ///
    /// # Panics
    /// If no request is in service.
    pub fn release(&mut self, now: SimTime) -> Option<T> {
        assert!(self.in_service > 0, "release with no request in service");
        if let Some((enqueued_at, token)) = self.queue.pop_front() {
            // Server hands straight over to the queued request.
            self.queue_len.set(now, self.queue.len() as f64);
            self.wait.record((now - enqueued_at).as_ms());
            Some(token)
        } else {
            self.in_service -= 1;
            self.busy.set(now, self.in_service as f64);
            None
        }
    }

    /// Mean fraction of servers busy over `[0, end]` (aggregate
    /// utilization in `[0, 1]`).
    pub fn utilization(&self, end: SimTime) -> f64 {
        self.busy.mean(end) / self.capacity as f64
    }

    /// Time-weighted mean queue length over `[0, end]`.
    pub fn mean_queue_len(&self, end: SimTime) -> f64 {
        self.queue_len.mean(end)
    }

    /// Sample statistics of queue waiting times (ms).
    pub fn wait_stats(&self) -> &Tally {
        &self.wait
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: f64) -> SimTime {
        SimTime::from_ms(v)
    }

    #[test]
    fn immediate_grant_when_free() {
        let mut r = FifoResource::new(2);
        assert_eq!(r.request(ms(0.0), 'a'), Grant::Immediate('a'));
        assert_eq!(r.request(ms(0.0), 'b'), Grant::Immediate('b'));
        assert_eq!(r.in_service(), 2);
        assert!(!r.has_free_server());
    }

    #[test]
    fn queues_when_full_and_hands_over_fifo() {
        let mut r = FifoResource::new(1);
        assert_eq!(r.request(ms(0.0), 1), Grant::Immediate(1));
        assert_eq!(r.request(ms(1.0), 2), Grant::Queued);
        assert_eq!(r.request(ms(2.0), 3), Grant::Queued);
        assert_eq!(r.queued(), 2);
        // completion at t=10 hands server to token 2
        assert_eq!(r.release(ms(10.0)), Some(2));
        assert_eq!(r.release(ms(20.0)), Some(3));
        assert_eq!(r.release(ms(30.0)), None);
        assert_eq!(r.in_service(), 0);
    }

    #[test]
    fn wait_times_are_recorded() {
        let mut r = FifoResource::new(1);
        r.request(ms(0.0), ());
        r.request(ms(5.0), ());
        r.release(ms(12.0)); // waited 7ms
        r.release(ms(20.0));
        assert_eq!(r.wait_stats().count(), 2);
        assert_eq!(r.wait_stats().max(), Some(7.0));
    }

    #[test]
    fn utilization_accounts_busy_servers() {
        let mut r = FifoResource::new(2);
        r.request(ms(0.0), ());
        r.release(ms(50.0));
        // one of two servers busy half the time → 25%
        assert!((r.utilization(ms(100.0)) - 0.25).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "no request in service")]
    fn release_without_service_panics() {
        let mut r: FifoResource<()> = FifoResource::new(1);
        r.release(ms(0.0));
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_capacity_rejected() {
        let _: FifoResource<()> = FifoResource::new(0);
    }
}
