//! The event calendar: a priority queue of timestamped events.
//!
//! Events at equal timestamps are delivered in insertion order (FIFO), which
//! keeps simulations deterministic regardless of heap internals.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event scheduled on the calendar.
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A discrete-event calendar.
///
/// The calendar owns the simulated clock: popping an event advances the
/// clock to that event's timestamp. Scheduling into the past is a logic
/// error and panics.
///
/// ```
/// use rmdb_sim::{Calendar, SimTime};
///
/// let mut cal: Calendar<&'static str> = Calendar::new();
/// cal.schedule(SimTime::from_ms(2.0), "second");
/// cal.schedule(SimTime::from_ms(1.0), "first");
/// assert_eq!(cal.next(), Some((SimTime::from_ms(1.0), "first")));
/// assert_eq!(cal.now(), SimTime::from_ms(1.0));
/// ```
pub struct Calendar<E> {
    now: SimTime,
    seq: u64,
    heap: BinaryHeap<Scheduled<E>>,
}

impl<E> Default for Calendar<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Calendar<E> {
    /// Create an empty calendar with the clock at zero.
    pub fn new() -> Self {
        Calendar {
            now: SimTime::ZERO,
            seq: 0,
            heap: BinaryHeap::new(),
        }
    }

    /// The current simulated time (timestamp of the last popped event).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    /// If `at` is earlier than the current clock.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "scheduling into the past: at={at}, now={}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Schedule `event` at `delay` after the current clock.
    pub fn schedule_in(&mut self, delay: SimTime, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Pop the next event, advancing the clock to its timestamp.
    #[allow(clippy::should_implement_trait)] // not an Iterator: popping advances the clock
    pub fn next(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| {
            debug_assert!(s.at >= self.now);
            self.now = s.at;
            (s.at, s.event)
        })
    }

    /// Timestamp of the next pending event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_micros(30), 3);
        cal.schedule(SimTime::from_micros(10), 1);
        cal.schedule(SimTime::from_micros(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| cal.next().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut cal = Calendar::new();
        let t = SimTime::from_micros(5);
        for i in 0..100 {
            cal.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| cal.next().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_micros(10), ());
        cal.schedule(SimTime::from_micros(10), ());
        cal.schedule(SimTime::from_micros(40), ());
        let mut last = SimTime::ZERO;
        while let Some((t, ())) = cal.next() {
            assert!(t >= last);
            last = t;
            assert_eq!(cal.now(), t);
        }
        assert_eq!(last, SimTime::from_micros(40));
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_micros(100), "a");
        cal.next();
        cal.schedule_in(SimTime::from_micros(50), "b");
        assert_eq!(cal.peek_time(), Some(SimTime::from_micros(150)));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn past_scheduling_panics() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_micros(100), ());
        cal.next();
        cal.schedule(SimTime::from_micros(50), ());
    }

    #[test]
    fn empty_and_len() {
        let mut cal: Calendar<()> = Calendar::new();
        assert!(cal.is_empty());
        cal.schedule(SimTime::ZERO, ());
        assert_eq!(cal.len(), 1);
        cal.next();
        assert!(cal.is_empty());
        assert_eq!(cal.next(), None);
    }
}
