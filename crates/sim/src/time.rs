//! Simulated time.
//!
//! Time is kept as an integer number of **microseconds** so that event
//! ordering is exact and platform-independent. The paper reports everything
//! in milliseconds; [`SimTime::as_ms`] converts for reporting.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in (or span of) simulated time, in microseconds.
///
/// `SimTime` is used both as an absolute clock reading and as a duration;
/// the arithmetic provided covers both uses. Overflow is a logic error and
/// panics in debug builds.
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Default,
    serde::Serialize,
    serde::Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The zero time (simulation start).
    pub const ZERO: SimTime = SimTime(0);

    /// Largest representable time; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Construct from a (non-negative) number of milliseconds.
    ///
    /// Fractional milliseconds are preserved to microsecond resolution,
    /// rounding to nearest.
    #[inline]
    pub fn from_ms(ms: f64) -> Self {
        debug_assert!(ms >= 0.0, "negative duration: {ms}");
        SimTime((ms * 1000.0).round() as u64)
    }

    /// Raw microseconds.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds as a float, for reporting.
    #[inline]
    pub fn as_ms(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Saturating subtraction: `self - rhs`, or zero if `rhs > self`.
    #[inline]
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// The later of two times.
    #[inline]
    pub fn max(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.max(rhs.0))
    }

    /// The earlier of two times.
    #[inline]
    pub fn min(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.min(rhs.0))
    }

    /// True if this is the zero time.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        debug_assert!(self.0 >= rhs.0, "SimTime underflow: {} - {}", self.0, rhs.0);
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimTime) {
        debug_assert!(self.0 >= rhs.0);
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_ms())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ms_round_trip() {
        let t = SimTime::from_ms(18.354);
        assert_eq!(t.as_micros(), 18_354);
        assert!((t.as_ms() - 18.354).abs() < 1e-9);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_micros(100);
        let b = SimTime::from_micros(40);
        assert_eq!(a + b, SimTime::from_micros(140));
        assert_eq!(a - b, SimTime::from_micros(60));
        assert_eq!(a * 3, SimTime::from_micros(300));
        assert_eq!(a / 4, SimTime::from_micros(25));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn ordering_and_sum() {
        let xs = [
            SimTime::from_micros(3),
            SimTime::from_micros(1),
            SimTime::from_micros(2),
        ];
        let mut sorted = xs;
        sorted.sort();
        assert_eq!(sorted[0].as_micros(), 1);
        assert_eq!(xs.iter().copied().sum::<SimTime>().as_micros(), 6);
    }

    #[test]
    fn display_formats_ms() {
        assert_eq!(SimTime::from_ms(1.5).to_string(), "1.500ms");
    }

    #[test]
    fn from_ms_rounds_to_nearest_micro() {
        assert_eq!(SimTime::from_ms(0.0004).as_micros(), 0);
        assert_eq!(SimTime::from_ms(0.0006).as_micros(), 1);
    }
}
