//! Tuples and their on-page layout.
//!
//! All three files (`B`, `A`, `D`) store [`Entry`] records packed into
//! 4 KB pages. An entry carries a global sequence number (ordering inserts
//! against deletes of the same key), the tagging transaction (visibility),
//! the tuple key, and — for base/`A` entries — the tuple value. `D` entries
//! have no value.
//!
//! Page payload layout: `[count u32] ([seq u64][txn u64][key u64]
//! [vlen u32][value bytes])*`.

use rmdb_storage::{Page, PAYLOAD_SIZE};

/// A user-visible tuple.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tuple {
    /// Unique key.
    pub key: u64,
    /// Opaque value bytes.
    pub value: Vec<u8>,
}

/// One record in a differential file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Global operation sequence number (0 for base tuples).
    pub seq: u64,
    /// Tagging transaction (0 for base tuples, always visible).
    pub txn: u64,
    /// Tuple key.
    pub key: u64,
    /// Tuple value; empty for `D` entries.
    pub value: Vec<u8>,
}

impl Entry {
    /// Bytes this entry occupies on a page.
    pub fn encoded_len(&self) -> usize {
        8 + 8 + 8 + 4 + self.value.len()
    }
}

/// Pack as many of `entries` as fit onto `page`, starting from
/// `entries[0]`. Returns how many were written.
pub fn write_entries(page: &mut Page, entries: &[Entry]) -> usize {
    let mut offset = 4;
    let mut count = 0u32;
    for e in entries {
        let need = e.encoded_len();
        if offset + need > PAYLOAD_SIZE {
            break;
        }
        page.write_at(offset, &e.seq.to_le_bytes());
        page.write_at(offset + 8, &e.txn.to_le_bytes());
        page.write_at(offset + 16, &e.key.to_le_bytes());
        page.write_at(offset + 24, &(e.value.len() as u32).to_le_bytes());
        page.write_at(offset + 28, &e.value);
        offset += need;
        count += 1;
    }
    page.write_at(0, &count.to_le_bytes());
    count as usize
}

/// Decode every entry on `page`.
///
/// Total on arbitrary bytes: a `count` or `vlen` that would run past the
/// payload (possible only on a corrupted frame, since writers pack within
/// bounds) truncates the decode instead of panicking.
pub fn read_entries(page: &Page) -> Vec<Entry> {
    let count = u32::from_le_bytes(page.read_at(0, 4).try_into().unwrap());
    let mut offset = 4;
    let mut out = Vec::with_capacity((count as usize).min(PAYLOAD_SIZE / 28));
    for _ in 0..count {
        if offset + 28 > PAYLOAD_SIZE {
            break;
        }
        let seq = u64::from_le_bytes(page.read_at(offset, 8).try_into().unwrap());
        let txn = u64::from_le_bytes(page.read_at(offset + 8, 8).try_into().unwrap());
        let key = u64::from_le_bytes(page.read_at(offset + 16, 8).try_into().unwrap());
        let vlen = u32::from_le_bytes(page.read_at(offset + 24, 4).try_into().unwrap()) as usize;
        if offset + 28 + vlen > PAYLOAD_SIZE {
            break;
        }
        let value = page.read_at(offset + 28, vlen).to_vec();
        offset += 28 + vlen;
        out.push(Entry {
            seq,
            txn,
            key,
            value,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rmdb_storage::PageId;

    fn entry(key: u64, vlen: usize) -> Entry {
        Entry {
            seq: key * 2,
            txn: key + 1,
            key,
            value: vec![key as u8; vlen],
        }
    }

    #[test]
    fn round_trip_some_entries() {
        let entries: Vec<Entry> = (0..10).map(|k| entry(k, 16)).collect();
        let mut page = Page::new(PageId(0));
        let n = write_entries(&mut page, &entries);
        assert_eq!(n, 10);
        assert_eq!(read_entries(&page), entries);
    }

    #[test]
    fn stops_when_page_full() {
        let entries: Vec<Entry> = (0..100).map(|k| entry(k, 100)).collect();
        let mut page = Page::new(PageId(0));
        let n = write_entries(&mut page, &entries);
        // 128 bytes each, ~4068 usable → 31 fit
        assert!(n < 100 && n > 20, "unexpected fit count {n}");
        assert_eq!(read_entries(&page), entries[..n]);
    }

    #[test]
    fn empty_value_entries() {
        // D-file entries carry no value
        let entries: Vec<Entry> = (0..5).map(|k| entry(k, 0)).collect();
        let mut page = Page::new(PageId(0));
        assert_eq!(write_entries(&mut page, &entries), 5);
        assert_eq!(read_entries(&page), entries);
    }

    #[test]
    fn zero_entries() {
        let mut page = Page::new(PageId(0));
        assert_eq!(write_entries(&mut page, &[]), 0);
        assert!(read_entries(&page).is_empty());
    }

    proptest! {
        #[test]
        fn round_trip_arbitrary(
            keys in proptest::collection::vec((any::<u64>(), 0usize..200), 1..40)
        ) {
            let entries: Vec<Entry> = keys
                .into_iter()
                .enumerate()
                .map(|(i, (k, vlen))| Entry {
                    seq: i as u64,
                    txn: i as u64 % 7,
                    key: k,
                    value: vec![(k % 251) as u8; vlen],
                })
                .collect();
            let mut page = Page::new(PageId(0));
            let n = write_entries(&mut page, &entries);
            prop_assert_eq!(read_entries(&page), &entries[..n]);
        }
    }
}
