//! Parallel set operations on relations — the algorithms of the paper's
//! companion work \[21\] ("Parallel Algorithms for Operations on
//! Hypothetical Databases"), which the differential-file architecture
//! assumes the database machine uses.
//!
//! A differential-file read turns `R = (B ∪ A) − D` into a set-union and
//! a set-difference. These operators work on key-sorted tuple slices and
//! come in serial and parallel flavours; the parallel versions partition
//! the larger operand across scoped worker threads (the machine's query
//! processors) and are bit-for-bit equivalent to the serial ones.

use crate::tuple::Tuple;
use std::collections::HashSet;

/// Set-union with right precedence: the result contains every key of
/// `base` and `additions`; on collision the `additions` tuple wins (an A
/// file overrides the base). Both inputs must be sorted by key with
/// unique keys; the result is sorted.
pub fn union(base: &[Tuple], additions: &[Tuple]) -> Vec<Tuple> {
    debug_assert!(is_sorted_unique(base), "base must be sorted+unique");
    debug_assert!(
        is_sorted_unique(additions),
        "additions must be sorted+unique"
    );
    let mut out = Vec::with_capacity(base.len() + additions.len());
    let (mut i, mut j) = (0, 0);
    while i < base.len() && j < additions.len() {
        match base[i].key.cmp(&additions[j].key) {
            std::cmp::Ordering::Less => {
                out.push(base[i].clone());
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(additions[j].clone());
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(additions[j].clone()); // addition wins
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&base[i..]);
    out.extend_from_slice(&additions[j..]);
    out
}

/// Set-difference: `rel` minus every tuple whose key appears in
/// `deletions`. `rel` must be sorted by key; the result preserves order.
pub fn difference(rel: &[Tuple], deletions: &[u64]) -> Vec<Tuple> {
    let dead: HashSet<u64> = deletions.iter().copied().collect();
    rel.iter()
        .filter(|t| !dead.contains(&t.key))
        .cloned()
        .collect()
}

/// The full differential view: `(base ∪ additions) − deletions`.
pub fn view(base: &[Tuple], additions: &[Tuple], deletions: &[u64]) -> Vec<Tuple> {
    difference(&union(base, additions), deletions)
}

/// Parallel set-difference over `workers` scoped threads: `rel` is
/// partitioned; each worker filters its chunk against the (shared)
/// deletion set; results concatenate in order. Equivalent to
/// [`difference`].
pub fn par_difference(rel: &[Tuple], deletions: &[u64], workers: usize) -> Vec<Tuple> {
    assert!(workers > 0);
    if rel.is_empty() {
        return Vec::new();
    }
    let dead: HashSet<u64> = deletions.iter().copied().collect();
    let chunk = rel.len().div_ceil(workers);
    let parts: Vec<Vec<Tuple>> = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = rel
            .chunks(chunk)
            .map(|slice| {
                let dead = &dead;
                s.spawn(move |_| {
                    slice
                        .iter()
                        .filter(|t| !dead.contains(&t.key))
                        .cloned()
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
    .expect("difference worker panicked");
    parts.concat()
}

/// Parallel union over `workers` scoped threads: the key space is
/// partitioned by range so each worker merges disjoint slices; results
/// concatenate in key order. Equivalent to [`union`].
pub fn par_union(base: &[Tuple], additions: &[Tuple], workers: usize) -> Vec<Tuple> {
    assert!(workers > 0);
    if base.is_empty() || additions.is_empty() || workers == 1 {
        return union(base, additions);
    }
    // pick range boundaries from the larger input
    let big = if base.len() >= additions.len() {
        base
    } else {
        additions
    };
    let step = big.len().div_ceil(workers);
    let mut bounds: Vec<u64> = (1..workers)
        .filter_map(|w| big.get(w * step).map(|t| t.key))
        .collect();
    bounds.dedup();

    let slice_of = |rel: &'_ [Tuple], lo: Option<u64>, hi: Option<u64>| -> (usize, usize) {
        let start = match lo {
            None => 0,
            Some(b) => rel.partition_point(|t| t.key < b),
        };
        let end = match hi {
            None => rel.len(),
            Some(b) => rel.partition_point(|t| t.key < b),
        };
        (start, end)
    };

    let mut ranges: Vec<(Option<u64>, Option<u64>)> = Vec::with_capacity(bounds.len() + 1);
    let mut lo = None;
    for &b in &bounds {
        ranges.push((lo, Some(b)));
        lo = Some(b);
    }
    ranges.push((lo, None));

    let parts: Vec<Vec<Tuple>> = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = ranges
            .iter()
            .map(|&(lo, hi)| {
                s.spawn(move |_| {
                    let (bs, be) = slice_of(base, lo, hi);
                    let (as_, ae) = slice_of(additions, lo, hi);
                    union(&base[bs..be], &additions[as_..ae])
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
    .expect("union worker panicked");
    parts.concat()
}

fn is_sorted_unique(rel: &[Tuple]) -> bool {
    rel.windows(2).all(|w| w[0].key < w[1].key)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rel(keys: &[u64]) -> Vec<Tuple> {
        keys.iter()
            .map(|&k| Tuple {
                key: k,
                value: vec![k as u8],
            })
            .collect()
    }

    fn tagged(keys: &[u64], tag: u8) -> Vec<Tuple> {
        keys.iter()
            .map(|&k| Tuple {
                key: k,
                value: vec![tag],
            })
            .collect()
    }

    #[test]
    fn union_merges_and_right_wins() {
        let b = tagged(&[1, 3, 5], b'b');
        let a = tagged(&[2, 3, 6], b'a');
        let u = union(&b, &a);
        let keys: Vec<u64> = u.iter().map(|t| t.key).collect();
        assert_eq!(keys, vec![1, 2, 3, 5, 6]);
        assert_eq!(u[2].value, vec![b'a'], "addition overrides base on key 3");
    }

    #[test]
    fn union_with_empty_sides() {
        let b = rel(&[1, 2]);
        assert_eq!(union(&b, &[]), b);
        assert_eq!(union(&[], &b), b);
        assert!(union(&[], &[]).is_empty());
    }

    #[test]
    fn difference_removes_keys() {
        let r = rel(&[1, 2, 3, 4]);
        let d = difference(&r, &[2, 4, 9]);
        let keys: Vec<u64> = d.iter().map(|t| t.key).collect();
        assert_eq!(keys, vec![1, 3]);
    }

    #[test]
    fn view_composes() {
        let b = tagged(&[1, 2, 3], b'b');
        let a = tagged(&[3, 4], b'a');
        let v = view(&b, &a, &[1]);
        let keys: Vec<u64> = v.iter().map(|t| t.key).collect();
        assert_eq!(keys, vec![2, 3, 4]);
        assert_eq!(v[1].value, vec![b'a']);
    }

    proptest! {
        #[test]
        fn par_difference_matches_serial(
            keys in proptest::collection::btree_set(0u64..500, 0..80),
            dels in proptest::collection::vec(0u64..500, 0..40),
            workers in 1usize..6,
        ) {
            let r = rel(&keys.into_iter().collect::<Vec<_>>());
            prop_assert_eq!(par_difference(&r, &dels, workers), difference(&r, &dels));
        }

        #[test]
        fn par_union_matches_serial(
            base_keys in proptest::collection::btree_set(0u64..500, 0..80),
            add_keys in proptest::collection::btree_set(0u64..500, 0..80),
            workers in 1usize..6,
        ) {
            let b = tagged(&base_keys.into_iter().collect::<Vec<_>>(), b'b');
            let a = tagged(&add_keys.into_iter().collect::<Vec<_>>(), b'a');
            prop_assert_eq!(par_union(&b, &a, workers), union(&b, &a));
        }

        #[test]
        fn union_is_sorted_and_unique(
            base_keys in proptest::collection::btree_set(0u64..500, 0..60),
            add_keys in proptest::collection::btree_set(0u64..500, 0..60),
        ) {
            let b = rel(&base_keys.into_iter().collect::<Vec<_>>());
            let a = rel(&add_keys.into_iter().collect::<Vec<_>>());
            let u = union(&b, &a);
            prop_assert!(u.windows(2).all(|w| w[0].key < w[1].key));
        }

        #[test]
        fn difference_never_contains_deleted(
            keys in proptest::collection::btree_set(0u64..200, 0..60),
            dels in proptest::collection::vec(0u64..200, 0..30),
        ) {
            let r = rel(&keys.into_iter().collect::<Vec<_>>());
            let d = difference(&r, &dels);
            prop_assert!(d.iter().all(|t| !dels.contains(&t.key)));
        }
    }
}
