//! Leveled differential-file store — the paper's A/D pair, grown into
//! an LSM hierarchy.
//!
//! The paper's differential file holds one append set A and one delete
//! set D next to a static base B, with every read evaluating
//! R = (B ∪ A) − D. That shape is the direct ancestor of the LSM tree:
//! each *level run* here is a sorted differential file (its Put entries
//! are an A-set, its tombstones a D-set) laid over everything below it.
//! This module promotes rmdb-difffile from the single A/D pair of
//! [`crate::DiffDb`] to a leveled store:
//!
//! * an in-memory **memtable** of committed entries, made durable by a
//!   sealed-batch **journal** (each commit occupies fresh frames; a
//!   torn tail can only lose the in-flight commit, never a prior one);
//! * **L0 runs** flushed from the memtable, newest first;
//! * deeper **levels** L1..Ln holding one sorted run each, maintained
//!   by background (or foreground) compaction;
//! * a **dual-slot versioned manifest** — the same ping-pong commit
//!   point as the shadow pager's master record — that makes every
//!   flush and compaction an atomic, crash-recoverable transition.
//!
//! Recovery is single-pass, redo-only and performs **zero writes**
//! (the discipline of Sauer & Härder's REDO-only recovery): it picks
//! the newest valid manifest slot, derives the free-space map as
//! arena − live runs, counts `pending` extents as orphans of a torn
//! flush/compaction (GC'd, never read) and replays the journal tail
//! into the memtable. Because nothing is written, double recovery is
//! byte-identical to single recovery by construction.
//!
//! All I/O — foreground commits and background maintenance alike —
//! goes through the one [`rmdb_storage::Disk`] with whatever
//! [`rmdb_storage::FaultHandle`] the caller attached, so torn writes,
//! device death mid-merge and crash-after-k exercise the compactor
//! exactly as they exercise the commit path.

mod codec;
mod io;
mod maintenance;
mod manifest;
mod run;
mod store;

pub use codec::{LsmEntry, LsmOp};
pub use manifest::{Extent, Manifest, RunDesc};
pub use store::{LsmImage, LsmRecoveryReport, LsmStore};

use rmdb_storage::{BackendKind, StorageError};

/// I/O retry budget for verified writes and retried reads (same budget
/// as [`crate::DiffDb`]).
pub(crate) const IO_RETRIES: u32 = 4;

/// Configuration for [`LsmStore`].
///
/// Disk layout (frames):
/// `[ journal | arena (runs) | manifest slot 0 | manifest slot 1 ]`.
#[derive(Debug, Clone)]
pub struct LsmConfig {
    /// Frames reserved for the commit journal. Commits seal whole
    /// frames, so this bounds how many commits fit between flushes.
    pub journal_frames: u64,
    /// Frames in the run arena shared by all levels.
    pub arena_frames: u64,
    /// Flush the memtable once it holds this many keys.
    pub memtable_limit: usize,
    /// Compact L0 into L1 once it holds more than this many runs.
    pub l0_limit: usize,
    /// Size budget for L1 in frames; level `i` gets
    /// `level_base_frames * fanout^(i-1)`.
    pub level_base_frames: u64,
    /// Geometric growth factor between level budgets.
    pub fanout: u64,
    /// Number of levels below L0 (L1..=L`max_levels`).
    pub max_levels: usize,
    /// Which block-device backend to provision.
    pub backend: BackendKind,
    /// Spawn a background maintenance thread. When `false`, flushes
    /// run inline when the journal fills and tests drive compaction
    /// explicitly via [`LsmStore::maintain`].
    pub background: bool,
}

impl Default for LsmConfig {
    fn default() -> Self {
        LsmConfig {
            journal_frames: 64,
            arena_frames: 512,
            memtable_limit: 96,
            l0_limit: 4,
            level_base_frames: 8,
            fanout: 4,
            max_levels: 4,
            backend: BackendKind::Mem,
            background: false,
        }
    }
}

impl LsmConfig {
    /// First journal frame.
    pub(crate) fn journal_start(&self) -> u64 {
        0
    }

    /// First arena frame.
    pub(crate) fn arena_start(&self) -> u64 {
        self.journal_frames
    }

    /// Frame address of manifest slot `version % 2`.
    pub(crate) fn manifest_addr(&self, version: u64) -> u64 {
        self.journal_frames + self.arena_frames + (version % 2)
    }

    /// Total frames the store needs.
    pub(crate) fn total_frames(&self) -> u64 {
        self.journal_frames + self.arena_frames + 2
    }

    /// Frame budget for the level at `levels[idx]` (i.e. L`idx+1`).
    pub(crate) fn level_budget(&self, idx: usize) -> u64 {
        self.level_base_frames * self.fanout.saturating_pow(idx as u32)
    }
}

/// Named deterministic crash sites inside the flush/compaction
/// protocol, tripped one-shot via [`LsmStore::set_crash_site`].
///
/// Each site calls [`rmdb_storage::FaultInjector::crash_now`] on the
/// attached fault handle at the named protocol step, so a sweep can
/// pin the crash to the interesting transition instead of hunting for
/// the equivalent global write index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashSite {
    /// Output run fully written, install manifest **not** published:
    /// the output must be GC'd as an orphan and the inputs must still
    /// serve reads.
    PreManifestPublish,
    /// Halfway through writing the output run (intent manifest
    /// published): recovery sees a `pending` extent with torn pages
    /// and must never read it.
    MidLevelWrite,
    /// Install manifest published, input extents not yet reclaimed:
    /// recovery must serve from the new run and reclaim the retired
    /// inputs.
    PostPublishPreGc,
}

/// Errors surfaced by [`LsmStore`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LsmError {
    /// The underlying device failed.
    Storage(StorageError),
    /// A write lock on `key` is held by another transaction.
    Conflict {
        /// Contended key.
        key: u64,
        /// Transaction holding the lock.
        holder: u64,
    },
    /// The transaction id is unknown (never begun, or already ended).
    UnknownTxn(u64),
    /// A structural limit was hit (batch larger than the journal,
    /// arena exhausted, manifest overflow).
    Capacity(&'static str),
}

impl From<StorageError> for LsmError {
    fn from(e: StorageError) -> Self {
        LsmError::Storage(e)
    }
}

impl std::fmt::Display for LsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LsmError::Storage(e) => write!(f, "storage error: {e:?}"),
            LsmError::Conflict { key, holder } => {
                write!(f, "key {key} locked by txn {holder}")
            }
            LsmError::UnknownTxn(t) => write!(f, "unknown txn {t}"),
            LsmError::Capacity(what) => write!(f, "capacity: {what}"),
        }
    }
}

impl std::error::Error for LsmError {}

/// Cumulative operation counters, including the retry accounting that
/// the fault sweeps compare between foreground and background
/// maintenance paths.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LsmStats {
    /// Committed transactions.
    pub commits: u64,
    /// Aborted transactions.
    pub aborts: u64,
    /// Memtable flushes installed.
    pub flushes: u64,
    /// Compactions installed.
    pub compactions: u64,
    /// Flush/compaction jobs aborted by a device fault or injected
    /// crash.
    pub maintenance_aborts: u64,
    /// Frames of run data written by flush + compaction (write
    /// amplification numerator, together with journal frames).
    pub run_frames_written: u64,
    /// Journal frames written by commits.
    pub journal_frames_written: u64,
    /// Payload bytes handed to [`LsmStore::put`] by committed
    /// transactions (write-amplification denominator).
    pub user_bytes: u64,
    /// Extra write+verify rounds beyond the first, anywhere in the
    /// store (commit, manifest, run output).
    pub write_retries: u64,
    /// Extra read rounds beyond the first.
    pub read_retries: u64,
}
