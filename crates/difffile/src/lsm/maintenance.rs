//! Flush and compaction: the two-phase manifest protocol, the job
//! picker, and the background worker loop.
//!
//! Foreground [`super::LsmStore::maintain`] and the background worker
//! call the exact same `run_job` on the exact same state — one disk,
//! one fault surface, one set of retry counters. That symmetry is what
//! the background-vs-foreground fault-accounting regression test
//! pins down.
//!
//! Every job is a two-phase transition against the dual-slot manifest:
//!
//! 1. allocate the output extent, publish **intent** (`pending` lists
//!    the extent);
//! 2. write + force the output run;
//! 3. publish **install** (output run in the hierarchy, inputs
//!    removed, their extents in `retired`, `pending` cleared);
//! 4. reclaim the input extents in the in-memory free map.
//!
//! A crash anywhere leaves one of exactly two durable states: the old
//! hierarchy (with at worst an orphaned `pending` extent that recovery
//! GCs by derivation and never reads) or the new hierarchy (with
//! `retired` inputs that recovery reclaims). The armed
//! [`CrashSite`]s pin a deterministic crash at each interesting step.

use std::sync::Arc;
use std::time::Instant;

use rmdb_obs::EventKind;
use rmdb_storage::StorageError;

use super::codec::LsmEntry;
use super::manifest::{self, Extent, RunDesc};
use super::run;
use super::store::{LsmShared, LsmState};
use super::{CrashSite, LsmError};

/// One maintenance job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Job {
    /// Memtable → new L0 run; bumps the journal generation.
    Flush,
    /// All L0 runs + L1 → new L1 run.
    CompactL0,
    /// `levels[i]` + `levels[i+1]` → new `levels[i+1]` run.
    CompactLevel(usize),
}

/// Decide the next due job, in priority order: journal pressure first
/// (commits stall on it), then L0 fan-in, then level-size overflow.
pub(crate) fn pick_job(st: &LsmState) -> Option<Job> {
    let journal_pressure = st.journal_head * 2 >= st.cfg.journal_frames;
    if (st.flush_requested || journal_pressure || st.mem.len() >= st.cfg.memtable_limit)
        && !st.mem.is_empty()
    {
        return Some(Job::Flush);
    }
    if st.manifest.l0.len() > st.cfg.l0_limit {
        return Some(Job::CompactL0);
    }
    for i in 0..st.manifest.levels.len().saturating_sub(1) {
        if let Some(d) = &st.manifest.levels[i] {
            if d.frames > st.cfg.level_budget(i) {
                return Some(Job::CompactLevel(i));
            }
        }
    }
    None
}

/// Run one job under the store lock.
pub(crate) fn run_job(st: &mut LsmState, job: Job) -> Result<(), LsmError> {
    match job {
        Job::Flush => flush_locked(st),
        Job::CompactL0 | Job::CompactLevel(_) => compact_locked(st, job),
    }
}

/// The background maintenance loop: drain due jobs, then sleep until
/// someone signals `work`. A failed job parks the worker (no retry
/// spin on a dead device) until the next signal; the error is handed
/// to whichever commit or `wait_idle` call observes it first.
pub(crate) fn worker_loop(shared: &Arc<LsmShared>) {
    let mut st = shared.state.lock().unwrap_or_else(|p| p.into_inner());
    loop {
        if st.shutdown {
            return;
        }
        match pick_job(&st) {
            Some(job) => match run_job(&mut st, job) {
                Ok(()) => {
                    st.last_maintenance_err = None;
                    shared.idle.notify_all();
                }
                Err(e) => {
                    st.last_maintenance_err = Some(e);
                    shared.idle.notify_all();
                    st = shared.work.wait(st).unwrap_or_else(|p| p.into_inner());
                }
            },
            None => {
                shared.idle.notify_all();
                st = shared.work.wait(st).unwrap_or_else(|p| p.into_inner());
            }
        }
    }
}

/// Trip an armed one-shot crash site: crash the device through the
/// attached fault handle and abort the job as the injected power
/// failure would.
fn trip(st: &mut LsmState, site: CrashSite) -> Result<(), LsmError> {
    if st.crash_site == Some(site) {
        st.crash_site = None;
        if let Some(h) = &st.faults {
            h.lock().crash_now();
        }
        return Err(LsmError::Storage(StorageError::Offline));
    }
    Ok(())
}

/// First-fit extent allocation from the derived free map.
fn allocate(st: &mut LsmState, frames: u64) -> Result<Extent, LsmError> {
    for i in 0..st.free.len() {
        if st.free[i].frames >= frames {
            let ext = Extent {
                start: st.free[i].start,
                frames,
            };
            st.free[i].start += frames;
            st.free[i].frames -= frames;
            if st.free[i].frames == 0 {
                st.free.remove(i);
            }
            return Ok(ext);
        }
    }
    Err(LsmError::Capacity("run arena exhausted"))
}

/// Return an extent to the free map, coalescing neighbours.
fn release(st: &mut LsmState, ext: Extent) {
    if ext.frames == 0 {
        return;
    }
    let mut v = std::mem::take(&mut st.free);
    v.push(ext);
    v.sort_by_key(|e| e.start);
    let mut out: Vec<Extent> = Vec::with_capacity(v.len());
    for e in v {
        match out.last_mut() {
            Some(last) if last.start + last.frames == e.start => last.frames += e.frames,
            _ => out.push(e),
        }
    }
    st.free = out;
}

/// Publish the in-memory manifest to its ping-pong slot. On failure
/// the version bump is rolled back so the next attempt rewrites the
/// *same* (possibly torn) slot and the other slot — the last valid
/// manifest — is never endangered.
fn publish(st: &mut LsmState) -> Result<(), LsmError> {
    st.manifest.version += 1;
    match manifest::write(&mut st.disk, &mut st.ctrs, &st.cfg, &st.manifest) {
        Ok(()) => Ok(()),
        Err(e) => {
            st.manifest.version -= 1;
            Err(e.into())
        }
    }
}

fn refresh_gauges(st: &LsmState) {
    st.metrics.levels_live.set(st.manifest.levels_live());
    st.metrics.l0_runs.set(st.manifest.l0.len() as u64);
    st.metrics.memtable_entries.set(st.mem.len() as u64);
}

/// Memtable → L0 run. The install publish also bumps the journal
/// generation, logically emptying the journal: replay of the old
/// generation's frames is dead the instant the new manifest lands.
fn flush_locked(st: &mut LsmState) -> Result<(), LsmError> {
    st.flush_requested = false;
    if st.mem.is_empty() {
        return Ok(());
    }
    let t0 = Instant::now();
    let entries: Vec<LsmEntry> = st.mem.values().cloned().collect();
    let seq_lo = entries.iter().map(|e| e.seq).min().expect("non-empty");
    let seq_hi = entries.iter().map(|e| e.seq).max().expect("non-empty");
    let chunks =
        run::build_chunks(&entries).ok_or(LsmError::Capacity("entry overflows a run frame"))?;
    let extent = allocate(st, chunks.len() as u64)?;
    st.metrics.emit(
        EventKind::CompactionStarted,
        0,
        0,
        st.manifest.l0.len() as u64,
        0,
    );
    let saved = st.manifest.clone();
    match flush_attempt(st, extent, &entries, &chunks, seq_lo, seq_hi) {
        Ok(()) => {
            // Durably installed. A crash from here on (the
            // post-publish-pre-GC site) loses only volatile state that
            // recovery rederives; it must NOT roll the manifest back.
            let post = trip(st, CrashSite::PostPublishPreGc);
            if post.is_ok() {
                st.mem.clear();
                st.journal_head = 0;
                st.journal_batch = 0;
            }
            st.stats.flushes += 1;
            st.metrics.flushes.inc();
            st.stats.run_frames_written += chunks.len() as u64;
            st.metrics
                .bytes_rewritten
                .add((chunks.len() * rmdb_storage::FRAME_SIZE) as u64);
            let us = t0.elapsed().as_micros() as u64;
            st.metrics.flush_us.record(us);
            st.metrics
                .emit(EventKind::CompactionFinished, 0, 0, chunks.len() as u64, us);
            refresh_gauges(st);
            post
        }
        Err((written, e)) => {
            abort_job(st, saved, extent, 0, written);
            Err(e)
        }
    }
}

/// Restore the pre-job manifest (keeping the published version
/// counter), free the output extent, and account the abort.
fn abort_job(
    st: &mut LsmState,
    saved: manifest::Manifest,
    extent: Extent,
    target_level: u64,
    frames_written: u64,
) {
    let v = st.manifest.version;
    st.manifest = saved;
    st.manifest.version = v;
    release(st, extent);
    st.stats.maintenance_aborts += 1;
    st.metrics.maintenance_aborts.inc();
    st.metrics.emit(
        EventKind::CompactionAborted,
        0,
        target_level,
        0,
        frames_written,
    );
}

type Attempt = Result<(), (u64, LsmError)>;

fn flush_attempt(
    st: &mut LsmState,
    extent: Extent,
    entries: &[LsmEntry],
    chunks: &[Vec<u8>],
    seq_lo: u64,
    seq_hi: u64,
) -> Attempt {
    // Phase 1: intent.
    st.manifest.pending = vec![extent];
    st.manifest.retired.clear();
    publish(st).map_err(|e| (0, e))?;
    // Phase 2: output.
    let mut written = 0u64;
    for (i, chunk) in chunks.iter().enumerate() {
        if i == chunks.len() / 2 {
            trip(st, CrashSite::MidLevelWrite).map_err(|e| (written, e))?;
        }
        run::write_chunk(&mut st.disk, &mut st.ctrs, extent.start + i as u64, chunk)
            .map_err(|e| (written, LsmError::Storage(e)))?;
        written += 1;
    }
    st.disk
        .force()
        .map_err(|e| (written, LsmError::Storage(e)))?;
    trip(st, CrashSite::PreManifestPublish).map_err(|e| (written, e))?;
    // Phase 3: install.
    let desc = RunDesc {
        run_id: st.manifest.next_run_id,
        level: 0,
        start: extent.start,
        frames: chunks.len() as u64,
        entries: entries.len() as u64,
        seq_lo,
        seq_hi,
    };
    st.manifest.next_run_id += 1;
    st.manifest.l0.insert(0, desc);
    st.manifest.pending.clear();
    st.manifest.journal_gen += 1;
    st.manifest.next_seq = st.next_seq;
    publish(st).map_err(|e| (written, e))
}

/// Merge runs down one level. `CompactL0` folds every L0 run plus L1
/// into a new L1 run; `CompactLevel(i)` folds `levels[i]` into
/// `levels[i+1]`. Tombstones are dropped only when the output is the
/// deepest occupied level (nothing below could resurrect the key).
fn compact_locked(st: &mut LsmState, job: Job) -> Result<(), LsmError> {
    let (inputs, out_idx) = match job {
        Job::CompactL0 => {
            let mut v = st.manifest.l0.clone();
            if let Some(d) = st.manifest.levels[0] {
                v.push(d);
            }
            (v, 0usize)
        }
        Job::CompactLevel(i) => {
            let Some(upper) = st.manifest.levels[i] else {
                return Ok(());
            };
            let mut v = vec![upper];
            if let Some(d) = st.manifest.levels[i + 1] {
                v.push(d);
            }
            (v, i + 1)
        }
        Job::Flush => unreachable!("dispatched in run_job"),
    };
    if inputs.is_empty() {
        return Ok(());
    }
    let t0 = Instant::now();
    let target_level = (out_idx + 1) as u64;
    let input_frames: u64 = inputs.iter().map(|d| d.frames).sum();
    st.metrics.emit(
        EventKind::CompactionStarted,
        0,
        target_level,
        inputs.len() as u64,
        input_frames,
    );
    let mut lists = Vec::with_capacity(inputs.len());
    for d in &inputs {
        lists.push(run::read_run(&st.disk, &mut st.ctrs, d)?);
    }
    let drop_tombs = st.manifest.levels[out_idx + 1..]
        .iter()
        .all(Option::is_none);
    let merged = run::merge_newest_wins(lists, drop_tombs);

    if merged.is_empty() {
        // Everything annihilated (tombstones at the bottom): a single
        // install publish removes the inputs, no output run at all.
        let saved = st.manifest.clone();
        remove_inputs(st, job, out_idx, None);
        st.manifest.pending.clear();
        st.manifest.retired = inputs.iter().map(RunDesc::extent).collect();
        if let Err(e) = publish(st) {
            let v = st.manifest.version;
            st.manifest = saved;
            st.manifest.version = v;
            st.stats.maintenance_aborts += 1;
            st.metrics.maintenance_aborts.inc();
            st.metrics
                .emit(EventKind::CompactionAborted, 0, target_level, 0, 0);
            return Err(e);
        }
        let post = trip(st, CrashSite::PostPublishPreGc);
        if post.is_ok() {
            for d in &inputs {
                release(st, d.extent());
            }
        }
        finish_compaction(st, t0, target_level, 0);
        return post;
    }

    let seq_lo = merged.iter().map(|e| e.seq).min().expect("non-empty");
    let seq_hi = merged.iter().map(|e| e.seq).max().expect("non-empty");
    let chunks =
        run::build_chunks(&merged).ok_or(LsmError::Capacity("entry overflows a run frame"))?;
    let extent = allocate(st, chunks.len() as u64)?;
    let saved = st.manifest.clone();
    match compact_attempt(
        st, job, out_idx, extent, &inputs, &merged, &chunks, seq_lo, seq_hi,
    ) {
        Ok(()) => {
            // Durably installed; a post-publish crash loses only the
            // in-memory reclaim, which recovery rederives.
            let post = trip(st, CrashSite::PostPublishPreGc);
            if post.is_ok() {
                for d in &inputs {
                    release(st, d.extent());
                }
            }
            st.stats.run_frames_written += chunks.len() as u64;
            finish_compaction(st, t0, target_level, chunks.len() as u64);
            post
        }
        Err((written, e)) => {
            abort_job(st, saved, extent, target_level, written);
            Err(e)
        }
    }
}

fn finish_compaction(st: &mut LsmState, t0: Instant, target_level: u64, out_frames: u64) {
    st.stats.compactions += 1;
    st.metrics.compactions.inc();
    st.metrics
        .bytes_rewritten
        .add(out_frames * rmdb_storage::FRAME_SIZE as u64);
    let us = t0.elapsed().as_micros() as u64;
    st.metrics.compaction_us.record(us);
    st.metrics.emit(
        EventKind::CompactionFinished,
        0,
        target_level,
        out_frames,
        us,
    );
    refresh_gauges(st);
}

/// Drop the job's inputs from the hierarchy and install `output` (if
/// any) at `levels[out_idx]`.
fn remove_inputs(st: &mut LsmState, job: Job, out_idx: usize, output: Option<RunDesc>) {
    match job {
        Job::CompactL0 => st.manifest.l0.clear(),
        Job::CompactLevel(i) => st.manifest.levels[i] = None,
        Job::Flush => unreachable!("dispatched in run_job"),
    }
    st.manifest.levels[out_idx] = output;
}

#[allow(clippy::too_many_arguments)]
fn compact_attempt(
    st: &mut LsmState,
    job: Job,
    out_idx: usize,
    extent: Extent,
    inputs: &[RunDesc],
    merged: &[LsmEntry],
    chunks: &[Vec<u8>],
    seq_lo: u64,
    seq_hi: u64,
) -> Attempt {
    // Phase 1: intent.
    st.manifest.pending = vec![extent];
    st.manifest.retired.clear();
    publish(st).map_err(|e| (0, e))?;
    // Phase 2: output.
    let mut written = 0u64;
    for (i, chunk) in chunks.iter().enumerate() {
        if i == chunks.len() / 2 {
            trip(st, CrashSite::MidLevelWrite).map_err(|e| (written, e))?;
        }
        run::write_chunk(&mut st.disk, &mut st.ctrs, extent.start + i as u64, chunk)
            .map_err(|e| (written, LsmError::Storage(e)))?;
        written += 1;
    }
    st.disk
        .force()
        .map_err(|e| (written, LsmError::Storage(e)))?;
    trip(st, CrashSite::PreManifestPublish).map_err(|e| (written, e))?;
    // Phase 3: install.
    let desc = RunDesc {
        run_id: st.manifest.next_run_id,
        level: (out_idx + 1) as u32,
        start: extent.start,
        frames: chunks.len() as u64,
        entries: merged.len() as u64,
        seq_lo,
        seq_hi,
    };
    st.manifest.next_run_id += 1;
    remove_inputs(st, job, out_idx, Some(desc));
    st.manifest.pending.clear();
    st.manifest.retired = inputs.iter().map(RunDesc::extent).collect();
    publish(st).map_err(|e| (written, e))
}
