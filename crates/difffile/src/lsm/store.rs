//! The leveled store: transactions, the sealed-batch journal, queries
//! under both paper strategies, crash images and redo-only recovery.

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Instant;

use rmdb_obs::{Counter, EventKind, Gauge, Histogram, Registry};
use rmdb_storage::{Disk, FaultHandle, Page, PageId, StorageError, PAYLOAD_SIZE};

use super::codec::{self, get_u32, get_u64, put_u32, put_u64, LsmEntry, LsmOp};
use super::io::IoCounters;
use super::maintenance;
use super::manifest::{self, Extent, Manifest, RunDesc};
use super::{io, run, CrashSite, LsmConfig, LsmError, LsmStats};
use crate::ScanStrategy;

/// Journal frame header: `[gen u64][batch u64][idx u32][total u32]`.
const JOURNAL_HDR: usize = 24;

/// All lsm.* metric handles plus the event sink. `Default` yields
/// free-standing handles (still real atomics, just unregistered) so a
/// store without a registry pays no branching in the hot path.
#[derive(Clone, Default)]
pub(crate) struct LsmMetrics {
    registry: Option<Registry>,
    pub(crate) flushes: Counter,
    pub(crate) compactions: Counter,
    pub(crate) bytes_rewritten: Counter,
    pub(crate) maintenance_aborts: Counter,
    pub(crate) levels_live: Gauge,
    pub(crate) l0_runs: Gauge,
    pub(crate) memtable_entries: Gauge,
    pub(crate) flush_stall_us: Histogram,
    pub(crate) flush_us: Histogram,
    pub(crate) compaction_us: Histogram,
}

impl LsmMetrics {
    fn from_registry(r: &Registry) -> Self {
        LsmMetrics {
            registry: Some(r.clone()),
            flushes: r.counter("lsm.flushes"),
            compactions: r.counter("lsm.compactions"),
            bytes_rewritten: r.counter("lsm.bytes_rewritten"),
            maintenance_aborts: r.counter("lsm.maintenance_aborts"),
            levels_live: r.gauge("lsm.levels_live"),
            l0_runs: r.gauge("lsm.l0_runs"),
            memtable_entries: r.gauge("lsm.memtable_entries"),
            flush_stall_us: r.histogram("lsm.flush_stall_us"),
            flush_us: r.histogram("lsm.flush_us"),
            compaction_us: r.histogram("lsm.compaction_us"),
        }
    }

    pub(crate) fn emit(&self, kind: EventKind, txn: u64, stream: u64, page: u64, payload: u64) {
        if let Some(r) = &self.registry {
            r.emit(kind, txn, stream, page, payload);
        }
    }
}

/// Private write set of an open transaction.
#[derive(Default)]
struct TxnBuf {
    writes: BTreeMap<u64, LsmOp>,
}

/// Everything behind the store mutex. Background maintenance runs
/// *under this lock* with the same disk and the same I/O counters as
/// foreground commits — there is exactly one fault-injection surface.
pub(crate) struct LsmState {
    pub(crate) cfg: LsmConfig,
    pub(crate) disk: Disk,
    pub(crate) manifest: Manifest,
    /// Committed entries, newest per key.
    pub(crate) mem: BTreeMap<u64, LsmEntry>,
    /// Journal frames consumed in the current generation.
    pub(crate) journal_head: u64,
    /// Next batch number in the current generation.
    pub(crate) journal_batch: u64,
    pub(crate) next_seq: u64,
    next_txn: u64,
    /// Arena free-space map (derived, never stored).
    pub(crate) free: Vec<Extent>,
    txns: HashMap<u64, TxnBuf>,
    locks: HashMap<u64, u64>,
    pub(crate) faults: Option<FaultHandle>,
    pub(crate) crash_site: Option<CrashSite>,
    /// A commit is waiting for journal space.
    pub(crate) flush_requested: bool,
    pub(crate) stats: LsmStats,
    pub(crate) ctrs: IoCounters,
    pub(crate) metrics: LsmMetrics,
    pub(crate) shutdown: bool,
    pub(crate) last_maintenance_err: Option<LsmError>,
}

pub(crate) struct LsmShared {
    pub(crate) state: Mutex<LsmState>,
    /// Wakes the maintenance worker.
    pub(crate) work: Condvar,
    /// Wakes commits stalled on journal space and `wait_idle` callers.
    pub(crate) idle: Condvar,
}

/// A crash-consistent copy of the store's disk (faults detached), as
/// handed to [`LsmStore::recover`].
pub struct LsmImage {
    pub(crate) disk: Disk,
}

impl LsmImage {
    /// Deterministic byte dump of the whole device: allocated frames
    /// verbatim, unallocated frames as zeros. Two images dump equal
    /// iff the durable state is identical — the double-recovery
    /// byte-identity oracle.
    pub fn dump(&self) -> Vec<u8> {
        let cap = self.disk.capacity();
        let mut out = Vec::with_capacity((cap as usize) * rmdb_storage::FRAME_SIZE);
        for addr in 0..cap {
            if self.disk.is_allocated(addr) {
                match self.disk.read_frame(addr) {
                    Ok(f) => out.extend_from_slice(&f[..]),
                    Err(_) => out.extend_from_slice(&[0xFF; rmdb_storage::FRAME_SIZE]),
                }
            } else {
                out.extend_from_slice(&[0u8; rmdb_storage::FRAME_SIZE]);
            }
        }
        out
    }
}

/// What recovery found and did (entirely in memory — recovery performs
/// zero writes, which is why double recovery is byte-identical).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LsmRecoveryReport {
    /// Version of the manifest slot adopted.
    pub manifest_version: u64,
    /// Journal generation accepted for replay.
    pub journal_gen: u64,
    /// Orphaned output extents of a torn flush/compaction (the
    /// manifest's `pending` list): GC'd by derivation, never read.
    pub orphan_runs: u64,
    /// Frames those orphans cover.
    pub orphan_frames: u64,
    /// Input extents retired by the last installed transition,
    /// reclaimed into the free map.
    pub reclaimed_runs: u64,
    /// Frames those retired extents cover.
    pub reclaimed_frames: u64,
    /// Complete journal batches replayed into the memtable.
    pub replayed_batches: u64,
    /// Entries those batches carried.
    pub replayed_entries: u64,
}

/// The leveled differential-file store.
pub struct LsmStore {
    shared: Arc<LsmShared>,
    worker: Option<JoinHandle<()>>,
}

fn lock_state(shared: &LsmShared) -> MutexGuard<'_, LsmState> {
    shared.state.lock().unwrap_or_else(|p| p.into_inner())
}

impl LsmStore {
    /// Create an empty store on a freshly provisioned backend.
    pub fn new(cfg: LsmConfig) -> Result<LsmStore, LsmError> {
        Self::new_inner(cfg, LsmMetrics::default())
    }

    /// Create an empty store wired to an observability registry
    /// (lsm.* metrics + compaction events).
    pub fn with_registry(cfg: LsmConfig, registry: &Registry) -> Result<LsmStore, LsmError> {
        Self::new_inner(cfg, LsmMetrics::from_registry(registry))
    }

    fn new_inner(cfg: LsmConfig, metrics: LsmMetrics) -> Result<LsmStore, LsmError> {
        let disk = cfg.backend.provision(cfg.total_frames())?;
        let manifest = Manifest::empty(cfg.max_levels);
        let free = vec![Extent {
            start: cfg.arena_start(),
            frames: cfg.arena_frames,
        }];
        let mut state = LsmState {
            cfg,
            disk,
            manifest,
            mem: BTreeMap::new(),
            journal_head: 0,
            journal_batch: 0,
            next_seq: 1,
            next_txn: 1,
            free,
            txns: HashMap::new(),
            locks: HashMap::new(),
            faults: None,
            crash_site: None,
            flush_requested: false,
            stats: LsmStats::default(),
            ctrs: IoCounters::default(),
            metrics,
            shutdown: false,
            last_maintenance_err: None,
        };
        manifest::write(
            &mut state.disk,
            &mut state.ctrs,
            &state.cfg,
            &state.manifest,
        )?;
        Ok(Self::finish_construction(state))
    }

    fn finish_construction(state: LsmState) -> LsmStore {
        let background = state.cfg.background;
        let shared = Arc::new(LsmShared {
            state: Mutex::new(state),
            work: Condvar::new(),
            idle: Condvar::new(),
        });
        let worker = if background {
            let shared2 = Arc::clone(&shared);
            Some(
                std::thread::Builder::new()
                    .name("lsm-maintenance".into())
                    .spawn(move || maintenance::worker_loop(&shared2))
                    .expect("spawn lsm maintenance thread"),
            )
        } else {
            None
        };
        LsmStore { shared, worker }
    }

    fn lock(&self) -> MutexGuard<'_, LsmState> {
        lock_state(&self.shared)
    }

    /// Attach a fault injector to the device. Background maintenance
    /// I/O observes the same handle — there is only one disk.
    pub fn attach_faults(&self, handle: &FaultHandle) {
        let mut st = self.lock();
        st.disk.attach_faults(handle.clone());
        st.faults = Some(handle.clone());
    }

    /// Detach the fault injector, returning it if one was attached.
    pub fn detach_faults(&self) -> Option<FaultHandle> {
        let mut st = self.lock();
        st.faults = None;
        st.disk.detach_faults()
    }

    /// Arm a one-shot deterministic crash at a named protocol step of
    /// the next flush/compaction. Requires an attached fault handle
    /// (the crash is delivered through it).
    pub fn set_crash_site(&self, site: CrashSite) {
        self.lock().crash_site = Some(site);
    }

    /// Begin a transaction.
    pub fn begin(&self) -> u64 {
        let mut st = self.lock();
        let t = st.next_txn;
        st.next_txn += 1;
        st.txns.insert(t, TxnBuf::default());
        t
    }

    /// Stage an insert/update.
    pub fn put(&self, txn: u64, key: u64, value: &[u8]) -> Result<(), LsmError> {
        self.stage(txn, key, LsmOp::Put(value.to_vec()))
    }

    /// Stage a delete (tombstone).
    pub fn delete(&self, txn: u64, key: u64) -> Result<(), LsmError> {
        self.stage(txn, key, LsmOp::Delete)
    }

    fn stage(&self, txn: u64, key: u64, op: LsmOp) -> Result<(), LsmError> {
        let mut st = self.lock();
        if !st.txns.contains_key(&txn) {
            return Err(LsmError::UnknownTxn(txn));
        }
        match st.locks.get(&key) {
            Some(&holder) if holder != txn => return Err(LsmError::Conflict { key, holder }),
            _ => {}
        }
        st.locks.insert(key, txn);
        st.txns
            .get_mut(&txn)
            .expect("txn checked above")
            .writes
            .insert(key, op);
        Ok(())
    }

    /// Drop a transaction's staged writes and release its locks.
    pub fn abort(&self, txn: u64) -> Result<(), LsmError> {
        let mut st = self.lock();
        let Some(buf) = st.txns.remove(&txn) else {
            return Err(LsmError::UnknownTxn(txn));
        };
        release_locks(&mut st, txn, &buf);
        st.stats.aborts += 1;
        Ok(())
    }

    /// Commit: seal the write set into fresh journal frames (verified,
    /// then forced — the atomic commit point), then apply it to the
    /// memtable. A torn tail can only lose this in-flight batch; every
    /// earlier commit lives in frames this one never touches.
    pub fn commit(&self, txn: u64) -> Result<(), LsmError> {
        let mut st = self.lock();
        let Some(buf) = st.txns.remove(&txn) else {
            return Err(LsmError::UnknownTxn(txn));
        };
        if buf.writes.is_empty() {
            st.stats.commits += 1;
            return Ok(());
        }
        let entries: Vec<LsmEntry> = buf
            .writes
            .iter()
            .map(|(k, op)| LsmEntry {
                seq: 0,
                txn,
                key: *k,
                op: op.clone(),
            })
            .collect();
        let room = PAYLOAD_SIZE - JOURNAL_HDR;
        let result = match codec::chunk_entries(&entries, room) {
            None => Err(LsmError::Capacity("value overflows a journal frame")),
            Some(c) if c.len() as u64 > st.cfg.journal_frames => {
                Err(LsmError::Capacity("commit batch larger than the journal"))
            }
            Some(c) => {
                // Make room in the journal: flush inline, or wake the
                // background worker and stall on it (the stall is the
                // `lsm.flush_stall_us` signal).
                let need = c.len() as u64;
                let mut space: Result<(), LsmError> = Ok(());
                if st.journal_head + need > st.cfg.journal_frames {
                    let t0 = Instant::now();
                    while st.journal_head + need > st.cfg.journal_frames {
                        st.flush_requested = true;
                        if st.cfg.background {
                            self.shared.work.notify_one();
                            st = self.shared.idle.wait(st).unwrap_or_else(|p| p.into_inner());
                            if let Some(e) = st.last_maintenance_err.take() {
                                space = Err(e);
                                break;
                            }
                        } else if let Err(e) =
                            maintenance::run_job(&mut st, maintenance::Job::Flush)
                        {
                            space = Err(e);
                            break;
                        }
                    }
                    let stalled = t0.elapsed().as_micros() as u64;
                    st.metrics.flush_stall_us.record(stalled);
                }
                space.and_then(|()| commit_write(&mut st, entries, c.len()))
            }
        };
        release_locks(&mut st, txn, &buf);
        match &result {
            Ok(()) => st.stats.commits += 1,
            Err(_) => st.stats.aborts += 1,
        }
        let mem_len = st.mem.len() as u64;
        st.metrics.memtable_entries.set(mem_len);
        if st.cfg.background && maintenance::pick_job(&st).is_some() {
            self.shared.work.notify_one();
        }
        result
    }

    /// Run flush + compaction inline until no maintenance is due —
    /// the foreground twin of the background worker (identical jobs,
    /// identical order, identical I/O).
    pub fn maintain(&self) -> Result<(), LsmError> {
        let mut st = self.lock();
        while let Some(job) = maintenance::pick_job(&st) {
            maintenance::run_job(&mut st, job)?;
        }
        Ok(())
    }

    /// Force a memtable flush now (even below thresholds).
    pub fn flush_now(&self) -> Result<(), LsmError> {
        let mut st = self.lock();
        if st.mem.is_empty() {
            return Ok(());
        }
        maintenance::run_job(&mut st, maintenance::Job::Flush)
    }

    /// Wait until the background worker has drained all due
    /// maintenance, surfacing any job failure.
    pub fn wait_idle(&self) -> Result<(), LsmError> {
        let mut st = self.lock();
        loop {
            if let Some(e) = st.last_maintenance_err.take() {
                return Err(e);
            }
            if maintenance::pick_job(&st).is_none() {
                return Ok(());
            }
            self.shared.work.notify_one();
            st = self.shared.idle.wait(st).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Point lookup with the optimal strategy.
    pub fn get(&self, key: u64) -> Result<Option<Vec<u8>>, LsmError> {
        self.get_with(key, ScanStrategy::Optimal)
    }

    /// Point lookup under an explicit paper-§3 strategy.
    ///
    /// * `Optimal` walks sources newest-first and stops at the first
    ///   entry for the key (relies on the level-recency invariant).
    /// * `Basic` materializes the full set-union of Put entries and
    ///   set-difference against Delete entries, exactly R = (B∪A)−D.
    pub fn get_with(&self, key: u64, strategy: ScanStrategy) -> Result<Option<Vec<u8>>, LsmError> {
        let mut st = self.lock();
        let st = &mut *st;
        match strategy {
            ScanStrategy::Optimal => {
                if let Some(e) = st.mem.get(&key) {
                    return Ok(value_of(e));
                }
                for desc in st.manifest.live_runs() {
                    if let Some(e) = run::lookup_run(&st.disk, &mut st.ctrs, &desc, key)? {
                        return Ok(value_of(&e));
                    }
                }
                Ok(None)
            }
            ScanStrategy::Basic => {
                let rows = basic_range(st, key, key)?;
                Ok(rows.into_iter().next().map(|(_, v)| v))
            }
        }
    }

    /// Range scan over `lo..=hi` under an explicit strategy; rows come
    /// back key-sorted with tombstoned keys elided.
    pub fn range(
        &self,
        lo: u64,
        hi: u64,
        strategy: ScanStrategy,
    ) -> Result<Vec<(u64, Vec<u8>)>, LsmError> {
        let mut st = self.lock();
        let st = &mut *st;
        match strategy {
            ScanStrategy::Optimal => optimal_range(st, lo, hi),
            ScanStrategy::Basic => basic_range(st, lo, hi),
        }
    }

    /// Full scan (all keys) under a strategy.
    pub fn scan(&self, strategy: ScanStrategy) -> Result<Vec<(u64, Vec<u8>)>, LsmError> {
        self.range(0, u64::MAX, strategy)
    }

    /// Cumulative operation counters (retry tallies folded in).
    pub fn stats(&self) -> LsmStats {
        let st = self.lock();
        let mut s = st.stats.clone();
        s.write_retries = st.ctrs.write_retries;
        s.read_retries = st.ctrs.read_retries;
        s
    }

    /// A clone of the current manifest (level topology, pending and
    /// retired extents) for tests and benches.
    pub fn manifest(&self) -> Manifest {
        self.lock().manifest.clone()
    }

    /// Keys currently in the memtable.
    pub fn memtable_len(&self) -> usize {
        self.lock().mem.len()
    }

    /// Journal frames consumed since the last flush.
    pub fn journal_frames_used(&self) -> u64 {
        self.lock().journal_head
    }

    /// Raw device write count (write-amplification numerator).
    pub fn disk_writes(&self) -> u64 {
        self.lock().disk.writes()
    }

    /// Crash-consistent copy of the device, faults detached — the
    /// sweep's "power fails now" primitive.
    pub fn crash_image(&self) -> LsmImage {
        LsmImage {
            disk: self.lock().disk.snapshot(),
        }
    }

    /// Single-pass, redo-only recovery. Reads the best manifest slot,
    /// derives the free map as arena − live runs (counting `pending`
    /// extents as orphans and `retired` ones as reclaimed), and
    /// replays complete journal batches of the current generation into
    /// the memtable. **Writes nothing**: recovering twice from the
    /// same image yields byte-identical disks.
    pub fn recover(
        image: LsmImage,
        cfg: LsmConfig,
    ) -> Result<(LsmStore, LsmRecoveryReport), LsmError> {
        Self::recover_inner(image, cfg, LsmMetrics::default())
    }

    /// [`LsmStore::recover`] wired to an observability registry.
    pub fn recover_with_registry(
        image: LsmImage,
        cfg: LsmConfig,
        registry: &Registry,
    ) -> Result<(LsmStore, LsmRecoveryReport), LsmError> {
        Self::recover_inner(image, cfg, LsmMetrics::from_registry(registry))
    }

    fn recover_inner(
        image: LsmImage,
        cfg: LsmConfig,
        metrics: LsmMetrics,
    ) -> Result<(LsmStore, LsmRecoveryReport), LsmError> {
        let disk = image.disk;
        let mut ctrs = IoCounters::default();
        let Some(mut mf) = manifest::read_best(&disk, &mut ctrs, &cfg) else {
            return Err(LsmError::Storage(StorageError::Protocol(
                "no valid LSM manifest slot",
            )));
        };
        if mf.levels.len() != cfg.max_levels {
            return Err(LsmError::Storage(StorageError::Protocol(
                "manifest level count does not match config",
            )));
        }
        let mut report = LsmRecoveryReport {
            manifest_version: mf.version,
            journal_gen: mf.journal_gen,
            orphan_runs: mf.pending.len() as u64,
            orphan_frames: mf.pending.iter().map(|e| e.frames).sum(),
            reclaimed_runs: mf.retired.len() as u64,
            reclaimed_frames: mf.retired.iter().map(|e| e.frames).sum(),
            ..LsmRecoveryReport::default()
        };
        // The pending/retired lists have served their purpose
        // (accounting); in memory both are cleared so the next runtime
        // publish drops them from disk. The frames themselves are
        // reclaimed below purely by derivation.
        mf.pending.clear();
        mf.retired.clear();

        // Free map = arena − live runs.
        let mut live: Vec<Extent> = mf.live_runs().iter().map(RunDesc::extent).collect();
        live.sort_by_key(|e| e.start);
        let mut free = Vec::new();
        let mut cursor = cfg.arena_start();
        let arena_end = cfg.arena_start() + cfg.arena_frames;
        for e in &live {
            if e.start < cursor || e.start + e.frames > arena_end {
                return Err(LsmError::Storage(StorageError::Protocol(
                    "manifest runs overlap or escape the arena",
                )));
            }
            if e.start > cursor {
                free.push(Extent {
                    start: cursor,
                    frames: e.start - cursor,
                });
            }
            cursor = e.start + e.frames;
        }
        if cursor < arena_end {
            free.push(Extent {
                start: cursor,
                frames: arena_end - cursor,
            });
        }

        // Replay complete journal batches of the current generation.
        let mut mem: BTreeMap<u64, LsmEntry> = BTreeMap::new();
        let mut head = 0u64;
        let mut batch = 0u64;
        let mut max_seq = mf.next_seq.saturating_sub(1);
        'scan: while head < cfg.journal_frames {
            let addr = cfg.journal_start() + head;
            let Some((hdr, first)) = read_journal_frame(&disk, &mut ctrs, addr) else {
                break;
            };
            if hdr.gen != mf.journal_gen || hdr.batch != batch || hdr.idx != 0 {
                break;
            }
            if hdr.total == 0 || head + u64::from(hdr.total) > cfg.journal_frames {
                break;
            }
            let mut batch_entries = first;
            for i in 1..hdr.total {
                let addr = cfg.journal_start() + head + u64::from(i);
                let Some((h2, more)) = read_journal_frame(&disk, &mut ctrs, addr) else {
                    break 'scan;
                };
                if h2.gen != hdr.gen
                    || h2.batch != hdr.batch
                    || h2.idx != i
                    || h2.total != hdr.total
                {
                    break 'scan;
                }
                batch_entries.extend(more);
            }
            for e in batch_entries {
                max_seq = max_seq.max(e.seq);
                report.replayed_entries += 1;
                match mem.get(&e.key) {
                    Some(cur) if cur.seq >= e.seq => {}
                    _ => {
                        mem.insert(e.key, e);
                    }
                }
            }
            head += u64::from(hdr.total);
            batch += 1;
            report.replayed_batches += 1;
        }

        metrics.levels_live.set(mf.levels_live());
        metrics.l0_runs.set(mf.l0.len() as u64);
        metrics.memtable_entries.set(mem.len() as u64);
        let state = LsmState {
            next_seq: max_seq + 1,
            next_txn: 1,
            journal_head: head,
            journal_batch: batch,
            manifest: mf,
            mem,
            free,
            disk,
            cfg,
            txns: HashMap::new(),
            locks: HashMap::new(),
            faults: None,
            crash_site: None,
            flush_requested: false,
            stats: LsmStats::default(),
            ctrs,
            metrics,
            shutdown: false,
            last_maintenance_err: None,
        };
        Ok((Self::finish_construction(state), report))
    }
}

impl Drop for LsmStore {
    fn drop(&mut self) {
        if let Some(h) = self.worker.take() {
            lock_state(&self.shared).shutdown = true;
            self.shared.work.notify_all();
            let _ = h.join();
        }
    }
}

fn value_of(e: &LsmEntry) -> Option<Vec<u8>> {
    match &e.op {
        LsmOp::Put(v) => Some(v.clone()),
        LsmOp::Delete => None,
    }
}

fn release_locks(st: &mut LsmState, txn: u64, buf: &TxnBuf) {
    for key in buf.writes.keys() {
        if st.locks.get(key) == Some(&txn) {
            st.locks.remove(key);
        }
    }
}

/// Write the sealed batch: every frame verified, then one force —
/// the commit point — then the memtable apply.
fn commit_write(
    st: &mut LsmState,
    mut entries: Vec<LsmEntry>,
    expected_frames: usize,
) -> Result<(), LsmError> {
    let base = st.next_seq;
    let n = entries.len() as u64;
    for (i, e) in entries.iter_mut().enumerate() {
        e.seq = base + i as u64;
    }
    // Re-chunk with real sequence numbers; sizes are unchanged (seq is
    // fixed-width) so the frame count is identical.
    let room = PAYLOAD_SIZE - JOURNAL_HDR;
    let chunks_final =
        codec::chunk_entries(&entries, room).expect("re-chunk of sized batch cannot fail");
    debug_assert_eq!(chunks_final.len(), expected_frames);
    let gen = st.manifest.journal_gen;
    let batch = st.journal_batch;
    let total = chunks_final.len() as u32;
    for (i, chunk) in chunks_final.iter().enumerate() {
        let addr = st.cfg.journal_start() + st.journal_head + i as u64;
        let mut payload = Vec::with_capacity(JOURNAL_HDR + chunk.len());
        put_u64(&mut payload, gen);
        put_u64(&mut payload, batch);
        put_u32(&mut payload, i as u32);
        put_u32(&mut payload, total);
        payload.extend_from_slice(chunk);
        let mut page = Page::new(PageId(addr));
        page.write_at(0, &payload);
        io::write_verified(&mut st.disk, &mut st.ctrs, addr, &page)?;
        st.stats.journal_frames_written += 1;
    }
    st.disk.force()?;
    // Committed: apply to the memtable.
    for e in entries {
        st.stats.user_bytes += 8 + match &e.op {
            LsmOp::Put(v) => v.len() as u64,
            LsmOp::Delete => 0,
        };
        st.mem.insert(e.key, e);
    }
    st.journal_head += u64::from(total);
    st.journal_batch += 1;
    st.next_seq = base + n;
    Ok(())
}

struct JournalHdr {
    gen: u64,
    batch: u64,
    idx: u32,
    total: u32,
}

fn read_journal_frame(
    disk: &Disk,
    ctrs: &mut IoCounters,
    addr: u64,
) -> Option<(JournalHdr, Vec<LsmEntry>)> {
    let page = io::read_retry(disk, ctrs, addr).ok()?;
    let b = page.payload();
    let mut off = 0usize;
    let gen = get_u64(b, &mut off)?;
    let batch = get_u64(b, &mut off)?;
    let idx = get_u32(b, &mut off)?;
    let total = get_u32(b, &mut off)?;
    let entries = codec::decode_chunk(&b[off..])?;
    Some((
        JournalHdr {
            gen,
            batch,
            idx,
            total,
        },
        entries,
    ))
}

/// Paper-§3 "basic" plan: materialize the set-union of all Put entries
/// and the set-difference against all Delete entries across every
/// source, then keep keys whose newest Put outlives their newest
/// Delete.
fn basic_range(st: &mut LsmState, lo: u64, hi: u64) -> Result<Vec<(u64, Vec<u8>)>, LsmError> {
    let mut a: BTreeMap<u64, (u64, Vec<u8>)> = BTreeMap::new();
    let mut d: BTreeMap<u64, u64> = BTreeMap::new();
    fn absorb(
        a: &mut BTreeMap<u64, (u64, Vec<u8>)>,
        d: &mut BTreeMap<u64, u64>,
        lo: u64,
        hi: u64,
        e: &LsmEntry,
    ) {
        if e.key < lo || e.key > hi {
            return;
        }
        match &e.op {
            LsmOp::Put(v) => {
                if a.get(&e.key).is_none_or(|(s, _)| *s < e.seq) {
                    a.insert(e.key, (e.seq, v.clone()));
                }
            }
            LsmOp::Delete => {
                if d.get(&e.key).is_none_or(|s| *s < e.seq) {
                    d.insert(e.key, e.seq);
                }
            }
        }
    }
    for e in st.mem.values() {
        absorb(&mut a, &mut d, lo, hi, e);
    }
    for desc in st.manifest.live_runs() {
        for e in run::read_run(&st.disk, &mut st.ctrs, &desc)? {
            absorb(&mut a, &mut d, lo, hi, &e);
        }
    }
    Ok(a.into_iter()
        .filter(|(k, (s, _))| d.get(k).is_none_or(|ds| ds < s))
        .map(|(k, (_, v))| (k, v))
        .collect())
}

/// Optimal plan: walk sources newest-first; the first source holding a
/// key decides it (no sequence comparison — this leans on the
/// level-recency invariant, which is exactly what the equivalence
/// proptest checks against the basic plan).
fn optimal_range(st: &mut LsmState, lo: u64, hi: u64) -> Result<Vec<(u64, Vec<u8>)>, LsmError> {
    let mut chosen: BTreeMap<u64, LsmEntry> = BTreeMap::new();
    for (k, e) in st.mem.range(lo..=hi) {
        chosen.entry(*k).or_insert_with(|| e.clone());
    }
    for desc in st.manifest.live_runs() {
        for e in run::read_run(&st.disk, &mut st.ctrs, &desc)? {
            if e.key < lo || e.key > hi {
                continue;
            }
            chosen.entry(e.key).or_insert(e);
        }
    }
    Ok(chosen
        .into_iter()
        .filter_map(|(k, e)| match e.op {
            LsmOp::Put(v) => Some((k, v)),
            LsmOp::Delete => None,
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> LsmConfig {
        LsmConfig {
            journal_frames: 16,
            arena_frames: 128,
            memtable_limit: 8,
            l0_limit: 2,
            level_base_frames: 2,
            fanout: 2,
            max_levels: 3,
            ..LsmConfig::default()
        }
    }

    fn put1(db: &LsmStore, key: u64, val: &[u8]) {
        let t = db.begin();
        db.put(t, key, val).unwrap();
        db.commit(t).unwrap();
    }

    #[test]
    fn commit_flush_compact_query() {
        let db = LsmStore::new(small_cfg()).unwrap();
        for k in 0..40u64 {
            put1(&db, k, &[k as u8; 8]);
        }
        db.maintain().unwrap();
        let m = db.manifest();
        assert!(
            m.l0.len() <= 2,
            "L0 over limit after maintain: {}",
            m.l0.len()
        );
        assert!(db.stats().flushes >= 1);
        for k in 0..40u64 {
            assert_eq!(db.get(k).unwrap(), Some(vec![k as u8; 8]), "key {k}");
        }
        assert_eq!(db.get(999).unwrap(), None);
    }

    #[test]
    fn delete_shadows_across_levels() {
        let db = LsmStore::new(small_cfg()).unwrap();
        for k in 0..20u64 {
            put1(&db, k, b"v1");
        }
        db.flush_now().unwrap();
        db.maintain().unwrap();
        let t = db.begin();
        db.delete(t, 3).unwrap();
        db.put(t, 4, b"v2").unwrap();
        db.commit(t).unwrap();
        assert_eq!(db.get(3).unwrap(), None);
        assert_eq!(db.get(4).unwrap(), Some(b"v2".to_vec()));
        db.flush_now().unwrap();
        db.maintain().unwrap();
        assert_eq!(db.get(3).unwrap(), None);
        assert_eq!(db.get(4).unwrap(), Some(b"v2".to_vec()));
        // Basic and optimal agree on the full scan.
        assert_eq!(
            db.scan(ScanStrategy::Basic).unwrap(),
            db.scan(ScanStrategy::Optimal).unwrap()
        );
    }

    #[test]
    fn recovery_replays_journal_and_levels() {
        let db = LsmStore::new(small_cfg()).unwrap();
        for k in 0..30u64 {
            put1(&db, k, &k.to_le_bytes());
        }
        db.maintain().unwrap();
        // A few unflushed commits stay journal-only.
        put1(&db, 100, b"tail-a");
        put1(&db, 101, b"tail-b");
        let before: Vec<(u64, Vec<u8>)> = db.scan(ScanStrategy::Optimal).unwrap();
        let image = db.crash_image();
        let (rec, report) = LsmStore::recover(image, small_cfg()).unwrap();
        assert!(report.replayed_batches >= 2, "report: {report:?}");
        assert_eq!(rec.scan(ScanStrategy::Optimal).unwrap(), before);
        // Post-recovery liveness.
        put1(&rec, 200, b"after");
        assert_eq!(rec.get(200).unwrap(), Some(b"after".to_vec()));
    }

    #[test]
    fn double_recovery_is_byte_identical() {
        let db = LsmStore::new(small_cfg()).unwrap();
        for k in 0..25u64 {
            put1(&db, k, &[0xAB; 16]);
        }
        db.maintain().unwrap();
        put1(&db, 77, b"journal-tail");
        let image = db.crash_image();
        let dump0 = image.dump();
        let (rec1, _) = LsmStore::recover(image, small_cfg()).unwrap();
        let image1 = rec1.crash_image();
        assert_eq!(dump0, image1.dump(), "recovery wrote to the disk");
        let (rec2, _) = LsmStore::recover(image1, small_cfg()).unwrap();
        assert_eq!(dump0, rec2.crash_image().dump());
    }

    #[test]
    fn background_worker_flushes_under_pressure() {
        let cfg = LsmConfig {
            background: true,
            ..small_cfg()
        };
        let db = LsmStore::new(cfg).unwrap();
        for k in 0..120u64 {
            put1(&db, k, &[1u8; 32]);
        }
        db.wait_idle().unwrap();
        assert!(db.stats().flushes >= 1);
        for k in 0..120u64 {
            assert_eq!(db.get(k).unwrap(), Some(vec![1u8; 32]), "key {k}");
        }
    }
}
