//! Sorted runs: building, reading, and the newest-wins merge.
//!
//! A run is a contiguous arena extent of frames, each frame one
//! strictly-decoded entry chunk, entries sorted by key with at most
//! one entry per key. Runs are immutable once installed: compaction
//! writes a *new* run and retires the inputs via the manifest, it
//! never rewrites in place.

use std::collections::BTreeMap;

use rmdb_storage::{Disk, Page, PageId, StorageError, PAYLOAD_SIZE};

use super::codec::{self, LsmEntry, LsmOp};
use super::io::{self, IoCounters};
use super::manifest::RunDesc;

/// Encode sorted `entries` into per-frame chunks. `None` if a single
/// entry overflows a frame.
pub(crate) fn build_chunks(entries: &[LsmEntry]) -> Option<Vec<Vec<u8>>> {
    codec::chunk_entries(entries, PAYLOAD_SIZE)
}

/// Write one run chunk to `addr` (verified).
pub(crate) fn write_chunk(
    disk: &mut Disk,
    ctrs: &mut IoCounters,
    addr: u64,
    chunk: &[u8],
) -> Result<(), StorageError> {
    let mut page = Page::new(PageId(addr));
    page.write_at(0, chunk);
    io::write_verified(disk, ctrs, addr, &page)
}

/// Read a whole run back as its sorted entry list.
pub(crate) fn read_run(
    disk: &Disk,
    ctrs: &mut IoCounters,
    desc: &RunDesc,
) -> Result<Vec<LsmEntry>, StorageError> {
    let mut out = Vec::with_capacity(desc.entries as usize);
    for i in 0..desc.frames {
        let addr = desc.start + i;
        let page = io::read_retry(disk, ctrs, addr)?;
        let chunk = codec::decode_chunk(page.payload()).ok_or(StorageError::Corrupt { addr })?;
        out.extend(chunk);
    }
    Ok(out)
}

/// Point lookup inside one sorted run.
pub(crate) fn lookup_run(
    disk: &Disk,
    ctrs: &mut IoCounters,
    desc: &RunDesc,
    key: u64,
) -> Result<Option<LsmEntry>, StorageError> {
    for i in 0..desc.frames {
        let addr = desc.start + i;
        let page = io::read_retry(disk, ctrs, addr)?;
        let chunk = codec::decode_chunk(page.payload()).ok_or(StorageError::Corrupt { addr })?;
        if let Some(first) = chunk.first() {
            if first.key > key {
                return Ok(None);
            }
        }
        if let Ok(idx) = chunk.binary_search_by_key(&key, |e| e.key) {
            return Ok(Some(chunk[idx].clone()));
        }
        if chunk.last().is_some_and(|last| last.key > key) {
            return Ok(None);
        }
    }
    Ok(None)
}

/// Merge entry lists into one sorted run, newest (highest `seq`) entry
/// winning per key. With `drop_tombstones` (output is the deepest
/// occupied level, so nothing below could resurrect the key), winning
/// Delete entries are elided entirely.
pub(crate) fn merge_newest_wins(
    inputs: Vec<Vec<LsmEntry>>,
    drop_tombstones: bool,
) -> Vec<LsmEntry> {
    let mut best: BTreeMap<u64, LsmEntry> = BTreeMap::new();
    for entries in inputs {
        for e in entries {
            match best.get(&e.key) {
                Some(cur) if cur.seq >= e.seq => {}
                _ => {
                    best.insert(e.key, e);
                }
            }
        }
    }
    best.into_values()
        .filter(|e| !(drop_tombstones && matches!(e.op, LsmOp::Delete)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(seq: u64, key: u64, op: LsmOp) -> LsmEntry {
        LsmEntry {
            seq,
            txn: 0,
            key,
            op,
        }
    }

    #[test]
    fn merge_prefers_newest_seq() {
        let old = vec![e(1, 5, LsmOp::Put(vec![1])), e(2, 6, LsmOp::Put(vec![2]))];
        let new = vec![e(9, 5, LsmOp::Delete), e(3, 7, LsmOp::Put(vec![3]))];
        let merged = merge_newest_wins(vec![old.clone(), new.clone()], false);
        assert_eq!(
            merged,
            vec![
                e(9, 5, LsmOp::Delete),
                e(2, 6, LsmOp::Put(vec![2])),
                e(3, 7, LsmOp::Put(vec![3])),
            ]
        );
        let bottom = merge_newest_wins(vec![old, new], true);
        assert_eq!(
            bottom,
            vec![e(2, 6, LsmOp::Put(vec![2])), e(3, 7, LsmOp::Put(vec![3]))]
        );
    }

    #[test]
    fn merge_is_input_order_independent() {
        let a = vec![e(4, 1, LsmOp::Put(vec![4]))];
        let b = vec![e(8, 1, LsmOp::Put(vec![8]))];
        assert_eq!(
            merge_newest_wins(vec![a.clone(), b.clone()], false),
            merge_newest_wins(vec![b, a], false)
        );
    }
}
