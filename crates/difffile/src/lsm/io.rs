//! Counted I/O helpers.
//!
//! Same retry discipline as [`rmdb_storage::write_page_verified`] and
//! [`rmdb_storage::read_page_retry`], but every extra round is tallied
//! into [`IoCounters`]. Foreground commits and background maintenance
//! share these helpers (and one counter set), which is what lets the
//! fault sweep assert that a plan observed by the compactor thread
//! produces the same retry accounting as the same plan observed by a
//! foreground flush.

use rmdb_storage::{Disk, Page, StorageError};

use super::IO_RETRIES;

/// Retry tallies shared by every I/O path in the store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct IoCounters {
    /// Write+verify rounds beyond the first.
    pub write_retries: u64,
    /// Read rounds beyond the first.
    pub read_retries: u64,
}

/// Write-and-verify with bounded retries, counting every extra round.
pub(crate) fn write_verified(
    disk: &mut Disk,
    ctrs: &mut IoCounters,
    addr: u64,
    page: &Page,
) -> Result<(), StorageError> {
    let mut last = StorageError::Io { addr };
    for attempt in 0..IO_RETRIES {
        if attempt > 0 {
            ctrs.write_retries += 1;
        }
        if let Err(e) = disk.write_page(addr, page) {
            last = e;
            if last == StorageError::Offline {
                return Err(last);
            }
            continue;
        }
        match disk.read_page(addr) {
            Ok(got) if got == *page => return Ok(()),
            Ok(_) => last = StorageError::Corrupt { addr },
            Err(e) => {
                last = e;
                if last == StorageError::Offline {
                    return Err(last);
                }
            }
        }
    }
    Err(last)
}

/// Bounded-retry read, counting every extra round.
pub(crate) fn read_retry(
    disk: &Disk,
    ctrs: &mut IoCounters,
    addr: u64,
) -> Result<Page, StorageError> {
    let mut last = StorageError::Io { addr };
    for attempt in 0..IO_RETRIES {
        if attempt > 0 {
            ctrs.read_retries += 1;
        }
        match disk.read_page(addr) {
            Err(e @ (StorageError::Io { .. } | StorageError::Corrupt { .. })) => last = e,
            other => return other,
        }
    }
    Err(last)
}
