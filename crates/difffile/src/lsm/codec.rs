//! Entry codec for journal frames and level runs.
//!
//! Every chunk is `[count u32]` followed by `count` entries:
//! `[seq u64][txn u64][key u64][tag u8]` and, for a Put,
//! `[vlen u32][value]`. Decoding is **strict**: a truncated or
//! malformed entry invalidates the whole chunk. That is exactly what
//! journal replay wants — a torn tail must read as "no batch here",
//! never as a shorter batch.

/// A single operation against a key. Puts are the paper's A-set
/// (append) entries, Deletes its D-set tombstones.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LsmOp {
    /// Insert/update the key with this value.
    Put(Vec<u8>),
    /// Tombstone the key.
    Delete,
}

impl LsmOp {
    /// `true` for a tombstone.
    pub fn is_delete(&self) -> bool {
        matches!(self, LsmOp::Delete)
    }
}

/// One versioned operation, as stored in the journal and in level
/// runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LsmEntry {
    /// Global sequence number — a total order over all committed
    /// operations; the newest entry for a key wins.
    pub seq: u64,
    /// Committing transaction (diagnostic only).
    pub txn: u64,
    /// The key.
    pub key: u64,
    /// The operation.
    pub op: LsmOp,
}

const TAG_DELETE: u8 = 0;
const TAG_PUT: u8 = 1;

impl LsmEntry {
    /// Encoded size in bytes.
    pub fn encoded_len(&self) -> usize {
        8 + 8
            + 8
            + 1
            + match &self.op {
                LsmOp::Put(v) => 4 + v.len(),
                LsmOp::Delete => 0,
            }
    }
}

pub(crate) fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn get_u32(bytes: &[u8], off: &mut usize) -> Option<u32> {
    let end = off.checked_add(4)?;
    let v = u32::from_le_bytes(bytes.get(*off..end)?.try_into().ok()?);
    *off = end;
    Some(v)
}

pub(crate) fn get_u64(bytes: &[u8], off: &mut usize) -> Option<u64> {
    let end = off.checked_add(8)?;
    let v = u64::from_le_bytes(bytes.get(*off..end)?.try_into().ok()?);
    *off = end;
    Some(v)
}

fn encode_entry(buf: &mut Vec<u8>, e: &LsmEntry) {
    put_u64(buf, e.seq);
    put_u64(buf, e.txn);
    put_u64(buf, e.key);
    match &e.op {
        LsmOp::Put(v) => {
            buf.push(TAG_PUT);
            put_u32(buf, v.len() as u32);
            buf.extend_from_slice(v);
        }
        LsmOp::Delete => buf.push(TAG_DELETE),
    }
}

fn decode_entry(bytes: &[u8], off: &mut usize) -> Option<LsmEntry> {
    let seq = get_u64(bytes, off)?;
    let txn = get_u64(bytes, off)?;
    let key = get_u64(bytes, off)?;
    let tag = *bytes.get(*off)?;
    *off += 1;
    let op = match tag {
        TAG_PUT => {
            let len = get_u32(bytes, off)? as usize;
            let end = off.checked_add(len)?;
            let v = bytes.get(*off..end)?.to_vec();
            *off = end;
            LsmOp::Put(v)
        }
        TAG_DELETE => LsmOp::Delete,
        _ => return None,
    };
    Some(LsmEntry { seq, txn, key, op })
}

/// Encode `entries` as one `[count u32][entry…]` chunk.
pub(crate) fn encode_chunk(entries: &[LsmEntry]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(4 + entries.iter().map(LsmEntry::encoded_len).sum::<usize>());
    put_u32(&mut buf, entries.len() as u32);
    for e in entries {
        encode_entry(&mut buf, e);
    }
    buf
}

/// Strictly decode one chunk; `None` on any truncation or malformed
/// entry. Trailing padding after the last entry is ignored (chunks
/// live in fixed-size frames).
pub(crate) fn decode_chunk(bytes: &[u8]) -> Option<Vec<LsmEntry>> {
    let mut off = 0usize;
    let count = get_u32(bytes, &mut off)? as usize;
    let mut out = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        out.push(decode_entry(bytes, &mut off)?);
    }
    Some(out)
}

/// Greedily split `entries` into encoded chunks of at most `room`
/// bytes each (including the count header). `None` if a single entry
/// cannot fit on its own.
pub(crate) fn chunk_entries(entries: &[LsmEntry], room: usize) -> Option<Vec<Vec<u8>>> {
    let mut chunks = Vec::new();
    let mut cur: Vec<LsmEntry> = Vec::new();
    let mut cur_len = 4usize;
    for e in entries {
        let n = e.encoded_len();
        if 4 + n > room {
            return None;
        }
        if cur_len + n > room {
            chunks.push(encode_chunk(&cur));
            cur.clear();
            cur_len = 4;
        }
        cur_len += n;
        cur.push(e.clone());
    }
    if !cur.is_empty() {
        chunks.push(encode_chunk(&cur));
    }
    Some(chunks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(seq: u64, key: u64, op: LsmOp) -> LsmEntry {
        LsmEntry {
            seq,
            txn: 7,
            key,
            op,
        }
    }

    #[test]
    fn chunk_roundtrip() {
        let entries = vec![
            entry(1, 10, LsmOp::Put(vec![1, 2, 3])),
            entry(2, 11, LsmOp::Delete),
            entry(3, 12, LsmOp::Put(vec![])),
        ];
        let chunk = encode_chunk(&entries);
        assert_eq!(decode_chunk(&chunk).unwrap(), entries);
    }

    #[test]
    fn truncated_chunk_rejected() {
        let entries = vec![entry(1, 10, LsmOp::Put(vec![9; 32]))];
        let chunk = encode_chunk(&entries);
        for cut in 1..chunk.len() {
            assert!(
                decode_chunk(&chunk[..cut]).is_none(),
                "cut at {cut} decoded"
            );
        }
    }

    #[test]
    fn chunking_respects_room() {
        let entries: Vec<LsmEntry> = (0..100)
            .map(|i| entry(i, i, LsmOp::Put(vec![0u8; 40])))
            .collect();
        let chunks = chunk_entries(&entries, 256).unwrap();
        assert!(chunks.len() > 1);
        assert!(chunks.iter().all(|c| c.len() <= 256));
        let decoded: Vec<LsmEntry> = chunks
            .iter()
            .flat_map(|c| decode_chunk(c).unwrap())
            .collect();
        assert_eq!(decoded, entries);
    }

    #[test]
    fn oversized_entry_rejected() {
        let entries = vec![entry(1, 1, LsmOp::Put(vec![0u8; 300]))];
        assert!(chunk_entries(&entries, 256).is_none());
    }
}
