//! Snapshot-versioned manifest with a dual-slot ping-pong commit
//! point.
//!
//! The manifest is the LSM analogue of the shadow pager's master
//! record: a single page naming every live run, written alternately to
//! slot `version % 2` with write-and-verify plus a force. Recovery
//! reads both slots and adopts the highest valid version, so a torn
//! manifest write can only destroy the slot being written — the
//! previous manifest is always intact, and the transition it describes
//! simply did not happen.
//!
//! Flush and compaction are two-phase against this commit point:
//!
//! 1. **Intent** — publish version `v+1` with the freshly allocated
//!    output extent in [`Manifest::pending`]. From this instant a
//!    crash leaves a named orphan: recovery counts the extent, never
//!    reads it, and the space is free again (live runs are the only
//!    thing that pins arena frames).
//! 2. **Install** — after the output is fully written and forced,
//!    publish `v+2` with the output run installed, the inputs removed
//!    and their extents listed in [`Manifest::retired`], and `pending`
//!    cleared. Because `v+2` lands in the *other* slot from `v+1`, a
//!    torn install write leaves the intent manifest valid — exactly
//!    the "compaction never happened" state.
//!
//! `pending`/`retired` are pure accounting for recovery (orphan and
//! reclaim reporting): the free-space map itself is always derived as
//! arena − live runs, never read from disk.

use rmdb_storage::{Page, PageId, StorageError};

use super::codec::{get_u32, get_u64, put_u32, put_u64};
use super::io::{self, IoCounters};
use super::LsmConfig;
use rmdb_storage::Disk;

const MANIFEST_MAGIC: u32 = 0x4C53_4D31; // "LSM1"

/// A contiguous frame range in the run arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Extent {
    /// First frame (absolute address).
    pub start: u64,
    /// Frame count.
    pub frames: u64,
}

/// Descriptor of one sorted run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunDesc {
    /// Monotonic id; never reused, so a stale cached run can never be
    /// confused with a new one occupying the same extent.
    pub run_id: u64,
    /// Level the run lives on (0 = freshest).
    pub level: u32,
    /// First frame of the run's extent.
    pub start: u64,
    /// Frames occupied.
    pub frames: u64,
    /// Entries stored.
    pub entries: u64,
    /// Smallest sequence number in the run.
    pub seq_lo: u64,
    /// Largest sequence number in the run.
    pub seq_hi: u64,
}

impl RunDesc {
    /// The run's extent.
    pub fn extent(&self) -> Extent {
        Extent {
            start: self.start,
            frames: self.frames,
        }
    }
}

/// The versioned snapshot of the whole level hierarchy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Monotonic version; the on-disk slot is `version % 2`.
    pub version: u64,
    /// First sequence number *not* covered by the runs: journal replay
    /// reconstructs everything from here.
    pub next_seq: u64,
    /// Journal generation. A flush bumps it, logically emptying the
    /// journal: replay only accepts frames stamped with this value.
    pub journal_gen: u64,
    /// Next run id to hand out.
    pub next_run_id: u64,
    /// L0 runs, newest first.
    pub l0: Vec<RunDesc>,
    /// `levels[i]` is the single run of level `i+1`, if occupied.
    pub levels: Vec<Option<RunDesc>>,
    /// Output extents of an in-flight flush/compaction (intent). On
    /// recovery these are orphans: torn, unreadable, GC'd by
    /// derivation.
    pub pending: Vec<Extent>,
    /// Input extents dropped by the most recent install, reclaimable.
    pub retired: Vec<Extent>,
}

impl Manifest {
    /// The empty hierarchy at store creation.
    pub(crate) fn empty(max_levels: usize) -> Manifest {
        Manifest {
            version: 0,
            next_seq: 1,
            journal_gen: 1,
            next_run_id: 1,
            l0: Vec::new(),
            levels: vec![None; max_levels],
            pending: Vec::new(),
            retired: Vec::new(),
        }
    }

    /// All live runs, shallowest (newest) first: L0 in order, then
    /// L1..Ln.
    pub(crate) fn live_runs(&self) -> Vec<RunDesc> {
        let mut out: Vec<RunDesc> = self.l0.clone();
        for lvl in self.levels.iter().flatten() {
            out.push(*lvl);
        }
        out
    }

    /// Number of occupied levels including L0.
    pub fn levels_live(&self) -> u64 {
        let l0 = u64::from(!self.l0.is_empty());
        l0 + self.levels.iter().filter(|l| l.is_some()).count() as u64
    }
}

fn put_run(buf: &mut Vec<u8>, r: &RunDesc) {
    put_u64(buf, r.run_id);
    put_u32(buf, r.level);
    put_u64(buf, r.start);
    put_u64(buf, r.frames);
    put_u64(buf, r.entries);
    put_u64(buf, r.seq_lo);
    put_u64(buf, r.seq_hi);
}

fn get_run(bytes: &[u8], off: &mut usize) -> Option<RunDesc> {
    Some(RunDesc {
        run_id: get_u64(bytes, off)?,
        level: get_u32(bytes, off)?,
        start: get_u64(bytes, off)?,
        frames: get_u64(bytes, off)?,
        entries: get_u64(bytes, off)?,
        seq_lo: get_u64(bytes, off)?,
        seq_hi: get_u64(bytes, off)?,
    })
}

fn put_extent(buf: &mut Vec<u8>, e: &Extent) {
    put_u64(buf, e.start);
    put_u64(buf, e.frames);
}

fn get_extent(bytes: &[u8], off: &mut usize) -> Option<Extent> {
    Some(Extent {
        start: get_u64(bytes, off)?,
        frames: get_u64(bytes, off)?,
    })
}

/// Encode the manifest into a single page payload.
pub(crate) fn encode(m: &Manifest) -> Vec<u8> {
    let mut buf = Vec::with_capacity(256);
    put_u32(&mut buf, MANIFEST_MAGIC);
    put_u64(&mut buf, m.version);
    put_u64(&mut buf, m.next_seq);
    put_u64(&mut buf, m.journal_gen);
    put_u64(&mut buf, m.next_run_id);
    put_u32(&mut buf, m.l0.len() as u32);
    put_u32(&mut buf, m.levels.len() as u32);
    put_u32(&mut buf, m.pending.len() as u32);
    put_u32(&mut buf, m.retired.len() as u32);
    for r in &m.l0 {
        put_run(&mut buf, r);
    }
    for lvl in &m.levels {
        match lvl {
            Some(r) => {
                buf.push(1);
                put_run(&mut buf, r);
            }
            None => buf.push(0),
        }
    }
    for e in &m.pending {
        put_extent(&mut buf, e);
    }
    for e in &m.retired {
        put_extent(&mut buf, e);
    }
    buf
}

/// Strictly decode a manifest payload; `None` if the magic or any
/// field is malformed.
pub(crate) fn decode(bytes: &[u8]) -> Option<Manifest> {
    let mut off = 0usize;
    if get_u32(bytes, &mut off)? != MANIFEST_MAGIC {
        return None;
    }
    let version = get_u64(bytes, &mut off)?;
    let next_seq = get_u64(bytes, &mut off)?;
    let journal_gen = get_u64(bytes, &mut off)?;
    let next_run_id = get_u64(bytes, &mut off)?;
    let n_l0 = get_u32(bytes, &mut off)? as usize;
    let n_levels = get_u32(bytes, &mut off)? as usize;
    let n_pending = get_u32(bytes, &mut off)? as usize;
    let n_retired = get_u32(bytes, &mut off)? as usize;
    if n_l0 > 1024 || n_levels > 1024 || n_pending > 1024 || n_retired > 1024 {
        return None;
    }
    let mut l0 = Vec::with_capacity(n_l0);
    for _ in 0..n_l0 {
        l0.push(get_run(bytes, &mut off)?);
    }
    let mut levels = Vec::with_capacity(n_levels);
    for _ in 0..n_levels {
        let tag = *bytes.get(off)?;
        off += 1;
        levels.push(match tag {
            0 => None,
            1 => Some(get_run(bytes, &mut off)?),
            _ => return None,
        });
    }
    let mut pending = Vec::with_capacity(n_pending);
    for _ in 0..n_pending {
        pending.push(get_extent(bytes, &mut off)?);
    }
    let mut retired = Vec::with_capacity(n_retired);
    for _ in 0..n_retired {
        retired.push(get_extent(bytes, &mut off)?);
    }
    Some(Manifest {
        version,
        next_seq,
        journal_gen,
        next_run_id,
        l0,
        levels,
        pending,
        retired,
    })
}

/// Write the manifest to its slot (verified) and force the device.
pub(crate) fn write(
    disk: &mut Disk,
    ctrs: &mut IoCounters,
    cfg: &LsmConfig,
    m: &Manifest,
) -> Result<(), StorageError> {
    let addr = cfg.manifest_addr(m.version);
    let payload = encode(m);
    if payload.len() > rmdb_storage::PAYLOAD_SIZE {
        return Err(StorageError::Protocol("manifest overflows one page"));
    }
    let mut page = Page::new(PageId(addr));
    page.write_at(0, &payload);
    io::write_verified(disk, ctrs, addr, &page)?;
    disk.force()
}

/// Read both manifest slots and return the highest-versioned valid
/// manifest, if any.
pub(crate) fn read_best(disk: &Disk, ctrs: &mut IoCounters, cfg: &LsmConfig) -> Option<Manifest> {
    let mut best: Option<Manifest> = None;
    for slot in 0..2u64 {
        let addr = cfg.manifest_addr(slot);
        let Ok(page) = io::read_retry(disk, ctrs, addr) else {
            continue;
        };
        let Some(m) = decode(page.payload()) else {
            continue;
        };
        if m.version % 2 != slot {
            continue;
        }
        if best.as_ref().is_none_or(|b| m.version > b.version) {
            best = Some(m);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_roundtrip() {
        let mut m = Manifest::empty(4);
        m.version = 9;
        m.next_seq = 1234;
        m.journal_gen = 5;
        m.next_run_id = 17;
        m.l0.push(RunDesc {
            run_id: 16,
            level: 0,
            start: 100,
            frames: 3,
            entries: 40,
            seq_lo: 1000,
            seq_hi: 1233,
        });
        m.levels[1] = Some(RunDesc {
            run_id: 12,
            level: 2,
            start: 140,
            frames: 9,
            entries: 300,
            seq_lo: 1,
            seq_hi: 999,
        });
        m.pending.push(Extent {
            start: 160,
            frames: 4,
        });
        m.retired.push(Extent {
            start: 103,
            frames: 2,
        });
        let enc = encode(&m);
        assert_eq!(decode(&enc), Some(m));
    }

    #[test]
    fn corrupt_manifest_rejected() {
        let mut m = Manifest::empty(2);
        m.version = 3;
        let enc = encode(&m);
        assert!(decode(&enc[..enc.len() - 1]).is_none());
        let mut bad = enc.clone();
        bad[0] ^= 0xFF;
        assert!(decode(&bad).is_none());
    }
}
