//! [`DiffDb`]: the differential-file engine.
//!
//! Disk layout (one [`Disk`], backend chosen by [`DiffConfig::backend`]):
//!
//! ```text
//! [ base area 0 | base area 1 | A file | D file | commit list | master ]
//! ```
//!
//! The base file is read-only; a quiescent [`DiffDb::merge`] builds the new
//! base `(B ∪ A) − D` in the inactive area and flips the master frame
//! atomically (the same dual-area trick the shadow pager uses for its page
//! table). Additions and deletions append to the `A`/`D` files, tagged with
//! the operation's global sequence number and its transaction; commit is a
//! single atomic append to the commit list. A tuple is *live* when it is
//! the newest visible version of its key and no newer visible deletion
//! covers it.

use crate::tuple::{read_entries, write_entries, Entry, Tuple};
use rmdb_storage::fault::FaultHandle;
use rmdb_storage::{
    read_page_retry, write_page_verified, BackendKind, Disk, Page, PageId, StorageError,
    PAYLOAD_SIZE,
};
use std::collections::HashMap;

/// Transaction id.
pub type TxnId = u64;

/// Committed transactions per commit-list frame.
const COMMITS_PER_FRAME: usize = (PAYLOAD_SIZE - 4) / 8;
/// Bounded retry budget for riding through transient device faults.
const IO_RETRIES: u32 = 4;

/// Query-processing strategy (paper §4.3: *basic* vs *optimal*).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanStrategy {
    /// Set-difference against the `D` file for every `B ∪ A` page.
    Basic,
    /// Set-difference only for pages that yielded at least one candidate
    /// tuple — the optimization that moves the bottleneck back to the
    /// disks in Table 9.
    Optimal,
}

/// Configuration for a [`DiffDb`].
#[derive(Debug, Clone)]
pub struct DiffConfig {
    /// Frames per base area (two areas exist).
    pub base_capacity: u64,
    /// Frames in the `A` file region.
    pub a_capacity: u64,
    /// Frames in the `D` file region.
    pub d_capacity: u64,
    /// Frames for the commit list.
    pub commit_frames: u64,
    /// Which block-device backend holds the single durable disk.
    pub backend: BackendKind,
}

impl Default for DiffConfig {
    fn default() -> Self {
        DiffConfig {
            base_capacity: 64,
            a_capacity: 32,
            d_capacity: 32,
            commit_frames: 4,
            backend: BackendKind::Mem,
        }
    }
}

impl DiffConfig {
    fn a_start(&self) -> u64 {
        2 * self.base_capacity
    }
    fn d_start(&self) -> u64 {
        self.a_start() + self.a_capacity
    }
    fn commit_start(&self) -> u64 {
        self.d_start() + self.d_capacity
    }
    /// First of the two master slots; version `s` of the master lands in
    /// slot `s % 2` so a crash-torn master write can only destroy the new
    /// copy while the previous one stays valid.
    fn master_addr(&self) -> u64 {
        self.commit_start() + self.commit_frames
    }
    fn total_frames(&self) -> u64 {
        self.master_addr() + 2
    }
}

/// Errors from the differential-file engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiffError {
    /// Underlying storage failed.
    Storage(StorageError),
    /// Not an active transaction.
    UnknownTxn(TxnId),
    /// Key is write-locked by another transaction.
    KeyLocked {
        /// Contested key.
        key: u64,
        /// Holder.
        holder: TxnId,
    },
    /// A/D file or commit list is full — merge required.
    SpaceExhausted,
    /// Merge attempted while transactions were active.
    NotQuiescent,
}

impl From<StorageError> for DiffError {
    fn from(e: StorageError) -> Self {
        DiffError::Storage(e)
    }
}

impl std::fmt::Display for DiffError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiffError::Storage(e) => write!(f, "storage: {e}"),
            DiffError::UnknownTxn(t) => write!(f, "unknown txn {t}"),
            DiffError::KeyLocked { key, holder } => {
                write!(f, "key {key} locked by txn {holder}")
            }
            DiffError::SpaceExhausted => write!(f, "differential file full; merge required"),
            DiffError::NotQuiescent => write!(f, "merge requires no active transactions"),
        }
    }
}

impl std::error::Error for DiffError {}

/// Page-access statistics — the quantities the paper's Tables 9–11 track.
#[derive(Debug, Clone, Copy, Default)]
pub struct DiffStats {
    /// Base pages scanned.
    pub base_pages_read: u64,
    /// A-file pages scanned.
    pub a_pages_read: u64,
    /// D-file pages consulted for set-differences.
    pub d_pages_read: u64,
    /// Set-difference operations performed (per consulted page).
    pub set_difference_ops: u64,
    /// Tuples examined by predicates.
    pub tuples_examined: u64,
    /// A/D frames written.
    pub diff_writes: u64,
    /// Merges completed.
    pub merges: u64,
}

/// Crash image.
#[derive(Debug)]
pub struct DiffImage {
    /// The single durable disk.
    pub disk: Disk,
}

/// The differential-file engine.
///
/// ```
/// use rmdb_difffile::{DiffConfig, DiffDb, ScanStrategy, Tuple};
///
/// let base = vec![Tuple { key: 1, value: b"one".to_vec() }];
/// let mut db = DiffDb::with_base(DiffConfig::default(), base).unwrap();
/// let t = db.begin();
/// db.insert(t, 2, b"two").unwrap();     // appends to the A file
/// db.delete(t, 1).unwrap();             // appends to the D file
/// db.commit(t).unwrap();                // one atomic commit-list append
///
/// let t = db.begin();
/// let all = db.query(t, |_| true, ScanStrategy::Optimal).unwrap();
/// assert_eq!(all.len(), 1);
/// assert_eq!(all[0].key, 2);            // R = (B ∪ A) − D
/// ```
pub struct DiffDb {
    cfg: DiffConfig,
    disk: Disk,
    /// In-memory mirror of the current base, page by page.
    base: Vec<Vec<Entry>>,
    base_area: u8,
    /// Version counter for the dual-slot master frame.
    master_seq: u64,
    /// Entries whose `seq` is below this were merged away; recovery
    /// ignores them even if their frames still exist.
    merge_floor: u64,
    /// In-memory mirrors of the durable A/D files plus volatile tails.
    a_all: Vec<Entry>,
    d_all: Vec<Entry>,
    /// How many leading entries of `a_all`/`d_all` are durable.
    a_durable: usize,
    d_durable: usize,
    committed: HashMap<TxnId, u64>,
    commit_count: u64,
    active: HashMap<TxnId, ()>,
    key_locks: HashMap<u64, TxnId>,
    locks_by_txn: HashMap<TxnId, Vec<u64>>,
    next_txn: TxnId,
    next_seq: u64,
    stats: DiffStats,
}

impl DiffDb {
    /// A fresh, empty database.
    pub fn new(cfg: DiffConfig) -> Self {
        let mut db = DiffDb {
            disk: cfg
                .backend
                .provision(cfg.total_frames())
                .expect("provision difffile backend"),
            base: Vec::new(),
            base_area: 0,
            master_seq: 0,
            merge_floor: 0,
            a_all: Vec::new(),
            d_all: Vec::new(),
            a_durable: 0,
            d_durable: 0,
            committed: HashMap::new(),
            commit_count: 0,
            active: HashMap::new(),
            key_locks: HashMap::new(),
            locks_by_txn: HashMap::new(),
            next_txn: 1,
            next_seq: 1,
            stats: DiffStats::default(),
            cfg,
        };
        db.write_master().expect("fresh disk fits the master frame");
        db
    }

    /// Load a database with initial base tuples (bulk load, bypassing the
    /// transaction machinery — the read-only `B` of the paper).
    pub fn with_base(cfg: DiffConfig, tuples: Vec<Tuple>) -> Result<Self, DiffError> {
        let mut db = DiffDb::new(cfg);
        let entries: Vec<Entry> = tuples
            .into_iter()
            .map(|t| Entry {
                seq: 0,
                txn: 0,
                key: t.key,
                value: t.value,
            })
            .collect();
        db.write_base(&entries, 0)?;
        db.write_master()?;
        Ok(db)
    }

    fn write_master(&mut self) -> Result<(), DiffError> {
        let seq = self.master_seq + 1;
        let mut m = Page::new(PageId(u64::MAX));
        m.write_at(0, &[self.base_area]);
        m.write_at(1, &(self.base.len() as u64).to_le_bytes());
        m.write_at(9, &self.merge_floor.to_le_bytes());
        m.write_at(17, &seq.to_le_bytes());
        let addr = self.cfg.master_addr() + seq % 2;
        write_page_verified(&mut self.disk, addr, &m, IO_RETRIES)?;
        self.master_seq = seq;
        Ok(())
    }

    /// Attach one shared fault injector to the disk.
    pub fn attach_faults(&mut self, handle: &FaultHandle) {
        self.disk.attach_faults(handle.clone());
    }

    /// Write `entries` into base area `area` and point the in-memory base
    /// at them. Does *not* flip the master.
    fn write_base(&mut self, entries: &[Entry], area: u8) -> Result<(), DiffError> {
        let start = area as u64 * self.cfg.base_capacity;
        let mut pages: Vec<Vec<Entry>> = Vec::new();
        let mut rest = entries;
        while !rest.is_empty() {
            if pages.len() as u64 >= self.cfg.base_capacity {
                return Err(DiffError::SpaceExhausted);
            }
            let mut page = Page::new(PageId(start + pages.len() as u64));
            let n = write_entries(&mut page, rest);
            if n == 0 {
                return Err(DiffError::SpaceExhausted); // entry larger than a page
            }
            write_page_verified(
                &mut self.disk,
                start + pages.len() as u64,
                &page,
                IO_RETRIES,
            )?;
            pages.push(rest[..n].to_vec());
            rest = &rest[n..];
        }
        self.base = pages;
        self.base_area = area;
        Ok(())
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> DiffStats {
        self.stats
    }

    /// Number of durable base pages.
    pub fn base_pages(&self) -> usize {
        self.base.len()
    }

    /// Entries currently in the A file (committed or not).
    pub fn a_entries(&self) -> usize {
        self.a_all.len()
    }

    /// Entries currently in the D file (committed or not).
    pub fn d_entries(&self) -> usize {
        self.d_all.len()
    }

    /// Durable A-file pages (the paper's differential-file size knob).
    pub fn a_pages(&self) -> u64 {
        self.file_page_count(&self.a_all)
    }

    /// Durable D-file pages.
    pub fn d_pages(&self) -> u64 {
        self.file_page_count(&self.d_all)
    }

    fn file_page_count(&self, all: &[Entry]) -> u64 {
        // pages required to hold the entries (mirrors the flush packing)
        let mut pages = 0u64;
        let mut used = PAYLOAD_SIZE; // forces a fresh page on first entry
        for e in all {
            let need = e.encoded_len();
            if used + need > PAYLOAD_SIZE - 4 {
                pages += 1;
                used = 0;
            }
            used += need;
        }
        pages
    }

    /// Begin a transaction.
    pub fn begin(&mut self) -> TxnId {
        let t = self.next_txn;
        self.next_txn += 1;
        self.active.insert(t, ());
        t
    }

    fn check_txn(&self, txn: TxnId) -> Result<(), DiffError> {
        if self.active.contains_key(&txn) {
            Ok(())
        } else {
            Err(DiffError::UnknownTxn(txn))
        }
    }

    fn lock_key(&mut self, txn: TxnId, key: u64) -> Result<(), DiffError> {
        match self.key_locks.get(&key) {
            Some(&h) if h != txn => Err(DiffError::KeyLocked { key, holder: h }),
            Some(_) => Ok(()),
            None => {
                self.key_locks.insert(key, txn);
                self.locks_by_txn.entry(txn).or_default().push(key);
                Ok(())
            }
        }
    }

    fn release_locks(&mut self, txn: TxnId) {
        for key in self.locks_by_txn.remove(&txn).unwrap_or_default() {
            self.key_locks.remove(&key);
        }
    }

    /// Flush a file's mirror to its disk region (rewriting the open tail
    /// frame). `start`/`capacity` locate the region.
    fn flush_file(
        disk: &mut Disk,
        stats: &mut DiffStats,
        all: &[Entry],
        durable: &mut usize,
        start: u64,
        capacity: u64,
    ) -> Result<(), DiffError> {
        if *durable == all.len() {
            return Ok(());
        }
        // Repack everything from the first non-durable entry's page.
        // Simplest correct scheme: repack the whole file. Entries are
        // immutable so earlier full pages come out identical; only the
        // open tail frame actually changes contents, but we rewrite from
        // the first page whose content could differ — which, because
        // packing is deterministic, is the page containing entry index
        // `durable`. For simplicity and because regions are small, find it
        // by repacking from the start but only writing changed frames.
        let mut frame = 0u64;
        let mut rest = all;
        while !rest.is_empty() {
            if frame >= capacity {
                return Err(DiffError::SpaceExhausted);
            }
            let mut page = Page::new(PageId(start + frame));
            let n = write_entries(&mut page, rest);
            if n == 0 {
                return Err(DiffError::SpaceExhausted); // entry larger than a page
            }
            let addr = start + frame;
            let changed = match disk.read_page(addr) {
                Ok(existing) => existing != page,
                Err(_) => true,
            };
            if changed {
                write_page_verified(disk, addr, &page, IO_RETRIES)?;
                stats.diff_writes += 1;
            }
            rest = &rest[n..];
            frame += 1;
        }
        *durable = all.len();
        Ok(())
    }

    fn flush_tails(&mut self) -> Result<(), DiffError> {
        Self::flush_file(
            &mut self.disk,
            &mut self.stats,
            &self.a_all,
            &mut self.a_durable,
            self.cfg.a_start(),
            self.cfg.a_capacity,
        )?;
        Self::flush_file(
            &mut self.disk,
            &mut self.stats,
            &self.d_all,
            &mut self.d_durable,
            self.cfg.d_start(),
            self.cfg.d_capacity,
        )
    }

    /// Insert a tuple (appends to the A file).
    pub fn insert(&mut self, txn: TxnId, key: u64, value: &[u8]) -> Result<(), DiffError> {
        self.check_txn(txn)?;
        self.lock_key(txn, key)?;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.a_all.push(Entry {
            seq,
            txn,
            key,
            value: value.to_vec(),
        });
        Ok(())
    }

    /// Delete a key (appends to the D file).
    pub fn delete(&mut self, txn: TxnId, key: u64) -> Result<(), DiffError> {
        self.check_txn(txn)?;
        self.lock_key(txn, key)?;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.d_all.push(Entry {
            seq,
            txn,
            key,
            value: Vec::new(),
        });
        Ok(())
    }

    /// Update = delete + insert, per the paper's view semantics.
    pub fn update(&mut self, txn: TxnId, key: u64, value: &[u8]) -> Result<(), DiffError> {
        self.delete(txn, key)?;
        self.insert(txn, key, value)
    }

    fn visible(&self, viewer: TxnId, e: &Entry) -> bool {
        e.txn == 0 || e.txn == viewer || self.committed.contains_key(&e.txn)
    }

    /// The visible D entries for `viewer`, as (key, seq) pairs.
    fn visible_deletes(&self, viewer: TxnId) -> Vec<(u64, u64)> {
        self.d_all
            .iter()
            .filter(|e| e.seq >= self.merge_floor && self.visible(viewer, e))
            .map(|e| (e.key, e.seq))
            .collect()
    }

    /// Latest visible A-insert seq per key (for supersession checks).
    fn latest_inserts(&self, viewer: TxnId) -> HashMap<u64, u64> {
        let mut m = HashMap::new();
        for e in &self.a_all {
            if e.seq >= self.merge_floor && self.visible(viewer, e) {
                let s = m.entry(e.key).or_insert(0u64);
                *s = (*s).max(e.seq);
            }
        }
        m
    }

    fn is_live(
        candidate_key: u64,
        candidate_seq: u64,
        deletes: &[(u64, u64)],
        latest: &HashMap<u64, u64>,
    ) -> bool {
        if deletes
            .iter()
            .any(|&(k, s)| k == candidate_key && s > candidate_seq)
        {
            return false;
        }
        // superseded by a newer insert of the same key?
        match latest.get(&candidate_key) {
            Some(&s) => s <= candidate_seq,
            None => true,
        }
    }

    /// Point lookup of the live value for `key`.
    pub fn get(&mut self, txn: TxnId, key: u64) -> Result<Option<Vec<u8>>, DiffError> {
        let found = self.query(txn, |t| t.key == key, ScanStrategy::Optimal)?;
        Ok(found.into_iter().next().map(|t| t.value))
    }

    /// Scan the relation `R = (B ∪ A) − D` for tuples matching `pred`.
    ///
    /// The strategy controls when the set-difference against `D` is paid;
    /// statistics record the page-access pattern either way.
    pub fn query<F>(
        &mut self,
        txn: TxnId,
        pred: F,
        strategy: ScanStrategy,
    ) -> Result<Vec<Tuple>, DiffError>
    where
        F: Fn(&Tuple) -> bool,
    {
        self.check_txn(txn)?;
        let deletes = self.visible_deletes(txn);
        let latest = self.latest_inserts(txn);
        let d_page_count = self.d_pages().max(1);
        let mut out: Vec<Tuple> = Vec::new();

        // --- base pages ---
        let base_pages = self.base.clone();
        for page_entries in &base_pages {
            self.stats.base_pages_read += 1;
            let mut candidates = Vec::new();
            for e in page_entries {
                self.stats.tuples_examined += 1;
                let t = Tuple {
                    key: e.key,
                    value: e.value.clone(),
                };
                if pred(&t) {
                    candidates.push((e.key, 0u64, t));
                }
            }
            let pay_setdiff = strategy == ScanStrategy::Basic || !candidates.is_empty();
            if pay_setdiff {
                self.stats.set_difference_ops += 1;
                self.stats.d_pages_read += d_page_count;
                for (key, seq, t) in candidates {
                    if Self::is_live(key, seq, &deletes, &latest) {
                        out.push(t);
                    }
                }
            }
        }

        // --- A pages (mirror; page boundaries follow the flush packing) ---
        let a_entries: Vec<Entry> = self
            .a_all
            .iter()
            .filter(|e| e.seq >= self.merge_floor && self.visible(txn, e))
            .cloned()
            .collect();
        let a_page_count = self.a_pages().max(if a_entries.is_empty() { 0 } else { 1 });
        self.stats.a_pages_read += a_page_count;
        let mut a_candidates = Vec::new();
        for e in &a_entries {
            self.stats.tuples_examined += 1;
            let t = Tuple {
                key: e.key,
                value: e.value.clone(),
            };
            if pred(&t) {
                a_candidates.push((e.key, e.seq, t));
            }
        }
        if strategy == ScanStrategy::Basic || !a_candidates.is_empty() {
            if a_page_count > 0 {
                self.stats.set_difference_ops += a_page_count;
                self.stats.d_pages_read += d_page_count * a_page_count;
            }
            for (key, seq, t) in a_candidates {
                if Self::is_live(key, seq, &deletes, &latest) {
                    out.push(t);
                }
            }
        }

        out.sort_by_key(|t| t.key);
        Ok(out)
    }

    /// Parallel base scan using scoped worker threads — the database
    /// machine's query processors dividing the `B ∪ A` pages among
    /// themselves. Results and liveness match [`DiffDb::query`] exactly;
    /// statistics are accounted identically.
    pub fn query_parallel<F>(
        &mut self,
        txn: TxnId,
        pred: F,
        strategy: ScanStrategy,
        workers: usize,
    ) -> Result<Vec<Tuple>, DiffError>
    where
        F: Fn(&Tuple) -> bool + Sync,
    {
        self.check_txn(txn)?;
        assert!(workers > 0);
        let deletes = self.visible_deletes(txn);
        let latest = self.latest_inserts(txn);
        let d_page_count = self.d_pages().max(1);

        // partition base pages among workers
        let chunks: Vec<&[Vec<Entry>]> = if self.base.is_empty() {
            Vec::new()
        } else {
            self.base
                .chunks(self.base.len().div_ceil(workers))
                .collect()
        };
        struct WorkerOut {
            candidates: Vec<(u64, u64, Tuple)>,
            pages_with_candidates: u64,
            tuples: u64,
        }
        let results: Vec<WorkerOut> = crossbeam::thread::scope(|s| {
            let handles: Vec<_> = chunks
                .iter()
                .map(|chunk| {
                    let pred = &pred;
                    s.spawn(move |_| {
                        let mut out = WorkerOut {
                            candidates: Vec::new(),
                            pages_with_candidates: 0,
                            tuples: 0,
                        };
                        for page in *chunk {
                            let before = out.candidates.len();
                            for e in page {
                                out.tuples += 1;
                                let t = Tuple {
                                    key: e.key,
                                    value: e.value.clone(),
                                };
                                if pred(&t) {
                                    out.candidates.push((e.key, 0, t));
                                }
                            }
                            if out.candidates.len() > before {
                                out.pages_with_candidates += 1;
                            }
                        }
                        out
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
        .expect("worker panicked");

        let mut out = Vec::new();
        for w in &results {
            self.stats.tuples_examined += w.tuples;
            let setdiff_pages = match strategy {
                ScanStrategy::Basic => self.base.len() as u64 / chunks.len().max(1) as u64,
                ScanStrategy::Optimal => w.pages_with_candidates,
            };
            self.stats.set_difference_ops += setdiff_pages;
            self.stats.d_pages_read += d_page_count * setdiff_pages;
            for (key, seq, t) in &w.candidates {
                if Self::is_live(*key, *seq, &deletes, &latest) {
                    out.push(t.clone());
                }
            }
        }
        self.stats.base_pages_read += self.base.len() as u64;

        // A file handled on the caller thread (it is small by construction)
        let a_entries: Vec<Entry> = self
            .a_all
            .iter()
            .filter(|e| e.seq >= self.merge_floor && self.visible(txn, e))
            .cloned()
            .collect();
        let a_page_count = self.a_pages().max(if a_entries.is_empty() { 0 } else { 1 });
        self.stats.a_pages_read += a_page_count;
        let mut a_candidates = Vec::new();
        for e in &a_entries {
            self.stats.tuples_examined += 1;
            let t = Tuple {
                key: e.key,
                value: e.value.clone(),
            };
            if pred(&t) {
                a_candidates.push((e.key, e.seq, t));
            }
        }
        if strategy == ScanStrategy::Basic || !a_candidates.is_empty() {
            for (key, seq, t) in a_candidates {
                if Self::is_live(key, seq, &deletes, &latest) {
                    out.push(t);
                }
            }
        }
        out.sort_by_key(|t| t.key);
        Ok(out)
    }

    /// Commit: flush the A/D tails, then atomically append to the durable
    /// commit list.
    pub fn commit(&mut self, txn: TxnId) -> Result<(), DiffError> {
        self.check_txn(txn)?;
        self.flush_tails()?;
        let frame_idx = self.commit_count / COMMITS_PER_FRAME as u64;
        if frame_idx >= self.cfg.commit_frames {
            return Err(DiffError::SpaceExhausted);
        }
        let addr = self.cfg.commit_start() + frame_idx;
        let mut page = if self.disk.is_allocated(addr) {
            read_page_retry(&self.disk, addr, IO_RETRIES)?
        } else {
            Page::new(PageId(addr))
        };
        let within = (self.commit_count % COMMITS_PER_FRAME as u64) as usize;
        page.write_at(4 + 8 * within, &txn.to_le_bytes());
        page.write_at(0, &((within + 1) as u32).to_le_bytes());
        write_page_verified(&mut self.disk, addr, &page, IO_RETRIES)?;
        self.committed.insert(txn, self.commit_count);
        self.commit_count += 1;
        self.active.remove(&txn);
        self.release_locks(txn);
        Ok(())
    }

    /// Abort: the transaction's appended entries stay in the files but are
    /// forever invisible (its id never joins the commit list); the next
    /// merge reclaims them.
    pub fn abort(&mut self, txn: TxnId) -> Result<(), DiffError> {
        self.check_txn(txn)?;
        self.active.remove(&txn);
        self.release_locks(txn);
        Ok(())
    }

    /// Merge the committed differential files into a new base:
    /// `B' = (B ∪ A) − D`, built in the inactive base area and installed
    /// with one atomic master write. Requires quiescence.
    pub fn merge(&mut self) -> Result<(), DiffError> {
        if !self.active.is_empty() {
            return Err(DiffError::NotQuiescent);
        }
        let viewer = 0; // no transaction: committed-only view
        let deletes = self.visible_deletes(viewer);
        let latest = self.latest_inserts(viewer);
        let mut live: Vec<Entry> = Vec::new();
        for page in &self.base {
            for e in page {
                if Self::is_live(e.key, 0, &deletes, &latest) {
                    live.push(e.clone());
                }
            }
        }
        for e in &self.a_all {
            if e.seq >= self.merge_floor
                && self.visible(viewer, e)
                && Self::is_live(e.key, e.seq, &deletes, &latest)
            {
                live.push(Entry {
                    seq: 0,
                    txn: 0,
                    key: e.key,
                    value: e.value.clone(),
                });
            }
        }
        live.sort_by_key(|e| e.key);
        live.dedup_by_key(|e| e.key);
        let new_area = 1 - self.base_area;
        self.write_base(&live, new_area)?;
        self.merge_floor = self.next_seq;
        self.write_master()?; // ← atomic install of the merged base
        self.a_all.clear();
        self.d_all.clear();
        self.a_durable = 0;
        self.d_durable = 0;
        self.stats.merges += 1;
        Ok(())
    }

    /// Capture durable state.
    pub fn crash_image(&self) -> DiffImage {
        DiffImage {
            disk: self.disk.snapshot(),
        }
    }

    /// Rebuild from a crash image: reload the master (base location and
    /// merge floor), the commit list, and the durable A/D files. Entries
    /// tagged by transactions missing from the commit list stay invisible.
    pub fn recover(image: DiffImage, cfg: DiffConfig) -> Result<Self, DiffError> {
        let disk = image.disk;
        // Both master slots may exist; the valid one with the highest
        // version is the committed state (a torn master write falls back
        // to its predecessor). Fields are clamped so a corrupted-but-
        // checksum-valid master can never index out of bounds.
        let mut best: Option<(u64, Page)> = None;
        for slot in 0..2u64 {
            let addr = cfg.master_addr() + slot;
            if !disk.is_allocated(addr) {
                continue;
            }
            let Ok(m) = read_page_retry(&disk, addr, IO_RETRIES) else {
                continue;
            };
            if m.read_at(0, 1)[0] > 1 {
                continue; // decodes but is not a master frame
            }
            let seq = u64::from_le_bytes(m.read_at(17, 8).try_into().unwrap());
            if best.as_ref().is_none_or(|(s, _)| seq > *s) {
                best = Some((seq, m));
            }
        }
        let Some((master_seq, master)) = best else {
            return Err(DiffError::Storage(StorageError::Protocol(
                "no valid differential-file master frame",
            )));
        };
        let base_area = master.read_at(0, 1)[0];
        let base_pages =
            u64::from_le_bytes(master.read_at(1, 8).try_into().unwrap()).min(cfg.base_capacity);
        let merge_floor = u64::from_le_bytes(master.read_at(9, 8).try_into().unwrap());

        let base_start = base_area as u64 * cfg.base_capacity;
        let mut base = Vec::with_capacity(base_pages as usize);
        for i in 0..base_pages {
            base.push(read_entries(&read_page_retry(
                &disk,
                base_start + i,
                IO_RETRIES,
            )?));
        }

        let read_region = |start: u64, capacity: u64| -> Result<Vec<Entry>, DiffError> {
            let mut all = Vec::new();
            for i in 0..capacity {
                if !disk.is_allocated(start + i) {
                    break;
                }
                match read_page_retry(&disk, start + i, IO_RETRIES) {
                    Ok(p) => {
                        let entries = read_entries(&p);
                        // stale pre-merge frames are filtered by seq
                        let mut fresh: Vec<Entry> = entries
                            .into_iter()
                            .filter(|e| e.seq >= merge_floor)
                            .collect();
                        if fresh.is_empty() {
                            break;
                        }
                        all.append(&mut fresh);
                    }
                    Err(_) => break, // torn tail frame: entries not durable
                }
            }
            Ok(all)
        };
        let a_all = read_region(cfg.a_start(), cfg.a_capacity)?;
        let d_all = read_region(cfg.d_start(), cfg.d_capacity)?;

        let mut committed = HashMap::new();
        let mut commit_count = 0u64;
        for f in 0..cfg.commit_frames {
            let addr = cfg.commit_start() + f;
            if !disk.is_allocated(addr) {
                break;
            }
            let Ok(page) = read_page_retry(&disk, addr, IO_RETRIES) else {
                break;
            };
            let count = (u32::from_le_bytes(page.read_at(0, 4).try_into().unwrap()) as usize)
                .min(COMMITS_PER_FRAME);
            for i in 0..count {
                let txn = u64::from_le_bytes(page.read_at(4 + 8 * i, 8).try_into().unwrap());
                committed.insert(txn, commit_count);
                commit_count += 1;
            }
        }

        let max_txn = a_all
            .iter()
            .chain(d_all.iter())
            .map(|e| e.txn)
            .chain(committed.keys().copied())
            .max()
            .unwrap_or(0);
        let max_seq = a_all
            .iter()
            .chain(d_all.iter())
            .map(|e| e.seq)
            .max()
            .unwrap_or(merge_floor);

        let a_durable = a_all.len();
        let d_durable = d_all.len();
        Ok(DiffDb {
            disk,
            base,
            base_area,
            master_seq,
            merge_floor,
            a_all,
            d_all,
            a_durable,
            d_durable,
            committed,
            commit_count,
            active: HashMap::new(),
            key_locks: HashMap::new(),
            locks_by_txn: HashMap::new(),
            next_txn: max_txn + 1,
            next_seq: max_seq + 1,
            stats: DiffStats::default(),
            cfg,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> DiffConfig {
        DiffConfig {
            base_capacity: 16,
            a_capacity: 16,
            d_capacity: 16,
            commit_frames: 2,
            ..Default::default()
        }
    }

    fn base_tuples(n: u64) -> Vec<Tuple> {
        (0..n)
            .map(|k| Tuple {
                key: k,
                value: format!("base-{k}").into_bytes(),
            })
            .collect()
    }

    fn all_of(db: &mut DiffDb) -> Vec<Tuple> {
        let t = db.begin();
        let v = db.query(t, |_| true, ScanStrategy::Optimal).unwrap();
        db.abort(t).unwrap();
        v
    }

    #[test]
    fn base_load_and_scan() {
        let mut db = DiffDb::with_base(small(), base_tuples(50)).unwrap();
        let all = all_of(&mut db);
        assert_eq!(all.len(), 50);
        assert_eq!(all[7].value, b"base-7");
    }

    #[test]
    fn insert_visible_after_commit_only_to_others() {
        let mut db = DiffDb::with_base(small(), base_tuples(5)).unwrap();
        let t = db.begin();
        db.insert(t, 100, b"new").unwrap();
        // own view sees it
        let own = db
            .query(t, |x| x.key == 100, ScanStrategy::Optimal)
            .unwrap();
        assert_eq!(own.len(), 1);
        // other txn does not
        let o = db.begin();
        assert!(db
            .query(o, |x| x.key == 100, ScanStrategy::Optimal)
            .unwrap()
            .is_empty());
        db.abort(o).unwrap();
        db.commit(t).unwrap();
        assert_eq!(all_of(&mut db).len(), 6);
    }

    #[test]
    fn delete_hides_base_tuple() {
        let mut db = DiffDb::with_base(small(), base_tuples(5)).unwrap();
        let t = db.begin();
        db.delete(t, 2).unwrap();
        db.commit(t).unwrap();
        let keys: Vec<u64> = all_of(&mut db).iter().map(|t| t.key).collect();
        assert_eq!(keys, vec![0, 1, 3, 4]);
    }

    #[test]
    fn update_replaces_value() {
        let mut db = DiffDb::with_base(small(), base_tuples(5)).unwrap();
        let t = db.begin();
        db.update(t, 3, b"fresh").unwrap();
        db.commit(t).unwrap();
        let t2 = db.begin();
        assert_eq!(db.get(t2, 3).unwrap(), Some(b"fresh".to_vec()));
        db.abort(t2).unwrap();
        assert_eq!(all_of(&mut db).len(), 5);
    }

    #[test]
    fn aborted_ops_invisible() {
        let mut db = DiffDb::with_base(small(), base_tuples(5)).unwrap();
        let t = db.begin();
        db.insert(t, 99, b"junk").unwrap();
        db.delete(t, 0).unwrap();
        db.abort(t).unwrap();
        let all = all_of(&mut db);
        assert_eq!(all.len(), 5, "abort leaves the view unchanged");
        assert_eq!(all[0].key, 0);
    }

    #[test]
    fn reinsert_after_delete() {
        let mut db = DiffDb::with_base(small(), base_tuples(3)).unwrap();
        let t = db.begin();
        db.delete(t, 1).unwrap();
        db.commit(t).unwrap();
        let t2 = db.begin();
        db.insert(t2, 1, b"back").unwrap();
        db.commit(t2).unwrap();
        let t3 = db.begin();
        assert_eq!(db.get(t3, 1).unwrap(), Some(b"back".to_vec()));
        db.abort(t3).unwrap();
    }

    #[test]
    fn key_lock_conflicts() {
        let mut db = DiffDb::with_base(small(), base_tuples(3)).unwrap();
        let a = db.begin();
        let b = db.begin();
        db.update(a, 1, b"a").unwrap();
        assert_eq!(
            db.update(b, 1, b"b"),
            Err(DiffError::KeyLocked { key: 1, holder: a })
        );
        db.commit(a).unwrap();
        db.update(b, 1, b"b").unwrap();
        db.commit(b).unwrap();
        let t = db.begin();
        assert_eq!(db.get(t, 1).unwrap(), Some(b"b".to_vec()));
        db.abort(t).unwrap();
    }

    #[test]
    fn committed_ops_survive_crash() {
        let mut db = DiffDb::with_base(small(), base_tuples(10)).unwrap();
        let t = db.begin();
        db.insert(t, 50, b"durable").unwrap();
        db.delete(t, 4).unwrap();
        db.commit(t).unwrap();
        let mut db2 = DiffDb::recover(db.crash_image(), small()).unwrap();
        let t2 = db2.begin();
        assert_eq!(db2.get(t2, 50).unwrap(), Some(b"durable".to_vec()));
        assert_eq!(db2.get(t2, 4).unwrap(), None);
        db2.abort(t2).unwrap();
        assert_eq!(all_of(&mut db2).len(), 10);
    }

    #[test]
    fn uncommitted_ops_do_not_survive_crash() {
        let mut db = DiffDb::with_base(small(), base_tuples(10)).unwrap();
        let t0 = db.begin();
        db.insert(t0, 20, b"committed").unwrap();
        db.commit(t0).unwrap(); // flushes tail pages including...
        let t = db.begin();
        db.insert(t, 21, b"inflight").unwrap();
        db.delete(t, 0).unwrap();
        // crash: t's entries may or may not be durable; either way the
        // commit list decides
        let mut db2 = DiffDb::recover(db.crash_image(), small()).unwrap();
        let q = db2.begin();
        assert_eq!(db2.get(q, 20).unwrap(), Some(b"committed".to_vec()));
        assert_eq!(db2.get(q, 21).unwrap(), None);
        assert!(db2.get(q, 0).unwrap().is_some(), "delete rolled back");
        db2.abort(q).unwrap();
    }

    #[test]
    fn uncommitted_entries_on_flushed_pages_stay_invisible() {
        // force the in-flight txn's entries onto disk by committing a
        // *different* txn (tail pages are shared)
        let mut db = DiffDb::with_base(small(), base_tuples(5)).unwrap();
        let loser = db.begin();
        db.insert(loser, 30, b"loser").unwrap();
        let winner = db.begin();
        db.insert(winner, 31, b"winner").unwrap();
        db.commit(winner).unwrap(); // flush writes loser's entry too
        let mut db2 = DiffDb::recover(db.crash_image(), small()).unwrap();
        let q = db2.begin();
        assert_eq!(db2.get(q, 31).unwrap(), Some(b"winner".to_vec()));
        assert_eq!(db2.get(q, 30).unwrap(), None, "uncommitted tag ignored");
        db2.abort(q).unwrap();
    }

    #[test]
    fn merge_folds_files_into_base() {
        let mut db = DiffDb::with_base(small(), base_tuples(10)).unwrap();
        let t = db.begin();
        db.insert(t, 100, b"added").unwrap();
        db.delete(t, 3).unwrap();
        db.update(t, 5, b"newer").unwrap();
        db.commit(t).unwrap();
        assert!(db.a_entries() > 0);
        db.merge().unwrap();
        assert_eq!(db.a_entries(), 0);
        assert_eq!(db.d_entries(), 0);
        let all = all_of(&mut db);
        assert_eq!(all.len(), 10); // 10 - 1 deleted + 1 added
        assert!(all.iter().any(|t| t.key == 100 && t.value == b"added"));
        assert!(!all.iter().any(|t| t.key == 3));
        assert!(all.iter().any(|t| t.key == 5 && t.value == b"newer"));
        // merged state survives crash
        let mut db2 = DiffDb::recover(db.crash_image(), small()).unwrap();
        assert_eq!(all_of(&mut db2).len(), 10);
    }

    #[test]
    fn merge_requires_quiescence() {
        let mut db = DiffDb::with_base(small(), base_tuples(3)).unwrap();
        let t = db.begin();
        db.insert(t, 9, b"x").unwrap();
        assert_eq!(db.merge(), Err(DiffError::NotQuiescent));
        db.commit(t).unwrap();
        db.merge().unwrap();
    }

    #[test]
    fn merge_discards_aborted_entries() {
        let mut db = DiffDb::with_base(small(), base_tuples(3)).unwrap();
        let t = db.begin();
        db.insert(t, 9, b"junk").unwrap();
        db.abort(t).unwrap();
        db.merge().unwrap();
        assert_eq!(all_of(&mut db).len(), 3);
        // and post-merge inserts work
        let t2 = db.begin();
        db.insert(t2, 9, b"real").unwrap();
        db.commit(t2).unwrap();
        assert_eq!(all_of(&mut db).len(), 4);
    }

    #[test]
    fn basic_strategy_pays_setdiff_on_every_page() {
        let mut db = DiffDb::with_base(small(), base_tuples(200)).unwrap();
        let t = db.begin();
        db.delete(t, 0).unwrap();
        db.commit(t).unwrap();
        let q = db.begin();
        let s0 = db.stats();
        db.query(q, |t| t.key == 1, ScanStrategy::Basic).unwrap();
        let basic_ops = db.stats().set_difference_ops - s0.set_difference_ops;
        let s1 = db.stats();
        db.query(q, |t| t.key == 1, ScanStrategy::Optimal).unwrap();
        let optimal_ops = db.stats().set_difference_ops - s1.set_difference_ops;
        db.abort(q).unwrap();
        assert!(
            basic_ops > optimal_ops,
            "basic {basic_ops} must exceed optimal {optimal_ops}"
        );
        assert!(optimal_ops >= 1);
    }

    #[test]
    fn parallel_query_matches_serial() {
        let mut db = DiffDb::with_base(small(), base_tuples(300)).unwrap();
        let t = db.begin();
        db.delete(t, 7).unwrap();
        db.insert(t, 500, b"par").unwrap();
        db.update(t, 9, b"upd").unwrap();
        db.commit(t).unwrap();
        let q = db.begin();
        let serial = db
            .query(q, |t| t.key % 3 == 0 || t.key >= 400, ScanStrategy::Optimal)
            .unwrap();
        let parallel = db
            .query_parallel(
                q,
                |t| t.key % 3 == 0 || t.key >= 400,
                ScanStrategy::Optimal,
                4,
            )
            .unwrap();
        db.abort(q).unwrap();
        assert_eq!(serial, parallel);
        assert!(serial.iter().any(|t| t.key == 500));
        assert!(!serial.iter().any(|t| t.key == 7 && t.key % 3 != 0));
    }

    #[test]
    fn a_file_exhaustion_reports() {
        let mut db = DiffDb::new(DiffConfig {
            base_capacity: 2,
            a_capacity: 1,
            d_capacity: 1,
            commit_frames: 1,
            ..Default::default()
        });
        let t = db.begin();
        // each entry ~ 28+512 bytes; a single A frame fills quickly
        for k in 0..20 {
            db.insert(t, k, &[0u8; 512]).unwrap();
        }
        assert_eq!(db.commit(t), Err(DiffError::SpaceExhausted));
    }

    #[test]
    fn stats_track_page_reads() {
        let mut db = DiffDb::with_base(small(), base_tuples(100)).unwrap();
        let q = db.begin();
        db.query(q, |_| true, ScanStrategy::Basic).unwrap();
        db.abort(q).unwrap();
        let s = db.stats();
        assert!(s.base_pages_read > 0);
        assert!(s.tuples_examined >= 100);
        assert!(s.set_difference_ops >= s.base_pages_read);
    }
}
