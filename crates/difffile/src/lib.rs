//! Differential-file recovery (paper §3.3), implemented functionally.
//!
//! Following Severance & Lohman and its decomposition in Stonebraker's
//! hypothetical-database work, each relation `R` is the view
//!
//! ```text
//! R = (B ∪ A) − D
//! ```
//!
//! where `B` is a read-only base file, additions are appended to the `A`
//! file and deletions to the `D` file. The base file is never written in
//! place, which is the whole recovery story: transaction durability is one
//! atomic append to a commit list, aborted transactions simply leave
//! invisible tagged tuples behind, and crash recovery is a reload of the
//! commit list.
//!
//! The costs the paper measures fall out of the query path: every retrieval
//! turns into a set-union plus set-difference. [`ScanStrategy::Basic`]
//! performs the set-difference against the `D` file for **every** `B ∪ A`
//! page; [`ScanStrategy::Optimal`] — the paper's optimization — only for
//! pages that produced at least one candidate tuple. The parallel scan
//! ([`DiffDb::query_parallel`]) exploits the database machine's query
//! processors the way the companion paper \[21\] describes.

//!
//! The [`lsm`] module grows the single A/D pair into a **leveled**
//! differential store — memtable, journal, L0 runs, compacted levels,
//! dual-slot versioned manifest — where every flush and compaction is
//! an atomic, crash-recoverable transition and recovery is redo-only.

pub mod db;
pub mod lsm;
pub mod ops;
pub mod tuple;

pub use db::{DiffConfig, DiffDb, DiffError, DiffImage, DiffStats, ScanStrategy};
pub use lsm::{
    CrashSite, Extent, LsmConfig, LsmEntry, LsmError, LsmImage, LsmOp, LsmRecoveryReport, LsmStats,
    LsmStore, Manifest, RunDesc,
};
pub use ops::{difference, par_difference, par_union, union, view};
pub use tuple::{Entry, Tuple};
