//! K-way page-sharded parallel redo.
//!
//! Redo is embarrassingly parallel across pages: per-page LSN ordering is
//! the only order recovery needs (the whole point of the unmerged-log
//! architecture), and no two pages share state. Pages are hashed into K
//! shards; each shard is replayed by one worker thread reading the shared
//! data disk through `&Disk` (its I/O counters are atomics, so the disk
//! is `Sync`). Workers never write the disk — each returns its rebuilt
//! page images, and the serial coordinator writes them home afterwards.
//!
//! Redo units come in two kinds (shared vocabulary in [`rmdb_replay`]):
//! physical fragments install bytes, command records re-execute their
//! logical op. Both go through [`rmdb_replay::apply_item`], the same
//! routine the dependency-aware scheduler uses, so the two schedulers
//! cannot drift.
//!
//! Determinism: the shard hash depends only on the page id, each worker
//! replays its pages in ascending page order with items in LSN order, and
//! shard outcomes are merged over disjoint page sets — so the recovered
//! state is byte-identical for every worker count K, which the
//! equivalence tests pin.

use rmdb_replay::{apply_item, load_redo_page, PageLoad, RedoBody, RedoItem};
use rmdb_storage::{Disk, Page, PageId, StorageError};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::time::{Duration, Instant};

/// Shard a page id into `0..k` (Fibonacci hashing on the high bits, so
/// consecutive page ids spread instead of clustering).
pub(crate) fn shard_of(page: PageId, k: usize) -> usize {
    ((page.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33) % k as u64) as usize
}

/// What one worker produced from its shard.
pub(crate) struct ShardOutcome {
    pub shard: usize,
    /// Rebuilt page images, ready for the coordinator to write home.
    pub pages: BTreeMap<PageId, Page>,
    /// Pages that were corrupt and unrebuildable.
    pub quarantined: BTreeSet<PageId>,
    pub redone: u64,
    pub skipped_idempotent: u64,
    /// Of `redone`: logical ops re-executed (command-replay path).
    pub reexecuted_ops: u64,
    pub torn_repaired: u64,
    pub retried_ios: u64,
    pub busy: Duration,
}

/// Replay the redo map across `workers` threads; outcome `i` is shard `i`.
pub(crate) fn run_redo(
    data: &Disk,
    doublewrite: &HashMap<PageId, Page>,
    redo: BTreeMap<PageId, Vec<RedoItem>>,
    workers: usize,
) -> Result<Vec<ShardOutcome>, StorageError> {
    let k = workers.max(1);
    let mut shards: Vec<Vec<(PageId, Vec<RedoItem>)>> = (0..k).map(|_| Vec::new()).collect();
    for (page, items) in redo {
        shards[shard_of(page, k)].push((page, items));
    }
    if k == 1 {
        let plan = shards.pop().expect("one shard");
        return Ok(vec![replay_shard(data, doublewrite, 0, plan)?]);
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .into_iter()
            .enumerate()
            .map(|(i, plan)| scope.spawn(move || replay_shard(data, doublewrite, i, plan)))
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .map_err(|_| StorageError::Protocol("redo worker panicked"))?
            })
            .collect()
    })
}

/// Replay one shard: for each page, load the home image (repairing torn
/// frames from the doublewrite buffer or a full-image fragment, else
/// quarantining), then apply its items in LSN order with the idempotence
/// check. Mirrors the serial redo loop exactly — the equivalence tests
/// depend on that.
fn replay_shard(
    data: &Disk,
    doublewrite: &HashMap<PageId, Page>,
    shard: usize,
    plan: Vec<(PageId, Vec<RedoItem>)>,
) -> Result<ShardOutcome, StorageError> {
    let start = Instant::now();
    let mut out = ShardOutcome {
        shard,
        pages: BTreeMap::new(),
        quarantined: BTreeSet::new(),
        redone: 0,
        skipped_idempotent: 0,
        reexecuted_ops: 0,
        torn_repaired: 0,
        retried_ios: 0,
        busy: Duration::ZERO,
    };
    for (page_id, mut items) in plan {
        items.sort_by_key(|i| i.new_lsn);
        let rebuild = items.first().is_some_and(|i| i.is_full_image());
        let mut page =
            match load_redo_page(data, doublewrite, page_id, rebuild, &mut out.retried_ios)? {
                PageLoad::Ready(p, torn) => {
                    if torn {
                        out.torn_repaired += 1;
                    }
                    p
                }
                PageLoad::Quarantined => {
                    // unrebuildable: leave the torn frame in place so reads
                    // yield a typed error, not invented contents
                    out.quarantined.insert(page_id);
                    continue;
                }
            };
        for item in items {
            if apply_item(&mut page, &item)? {
                out.redone += 1;
                if matches!(item.body, RedoBody::Op(_)) {
                    out.reexecuted_ops += 1;
                }
            } else {
                out.skipped_idempotent += 1;
            }
        }
        out.pages.insert(page_id, page);
    }
    out.busy = start.elapsed();
    Ok(out)
}
