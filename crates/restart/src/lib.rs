//! Checkpoint-bounded parallel restart for the parallel-logging engine.
//!
//! Serial recovery ([`rmdb_wal::recovery`]) replays every durable record on
//! every stream from its truncation point, one page at a time. This crate
//! is the restart engine the paper's multiprocessor setting calls for:
//!
//! 1. **Checkpoint-bounded analysis** ([`analysis`]) — each stream's scan
//!    is bounded by its last complete `CheckpointBegin`/`CheckpointEnd`
//!    pair: a durable `CheckpointEnd` proves the fuzzy checkpoint's flush
//!    finished, so updates logged before its `CheckpointBegin` need no
//!    redo. Commits, compensation provenance, and the LSN/txn high-water
//!    marks are still gathered from the full scan.
//! 2. **Partitioned parallel redo** ([`parallel`]) — pages are hashed into
//!    K shards and replayed by K worker threads against the shared data
//!    disk, each with its own per-page idempotence checks. Per-page LSN
//!    ordering is the only order redo needs, so shards never coordinate.
//! 3. **Backward undo of losers** — serial, in the coordinator, reading
//!    any page the bounded redo map does not cover straight from the data
//!    disk (with doublewrite repair), and logging compensations so the
//!    restart itself is crash-safe and idempotent.
//!
//! Afterwards the coordinator truncates each stream behind its checkpoint
//! bound, so the next restart scans even less.
//!
//! The recovered state is **byte-identical for every worker count K**,
//! including on images produced under fault injection: the shard hash is
//! deterministic, shards own disjoint page sets, and everything
//! order-sensitive (undo, doublewrite harvest, log appends, truncation)
//! stays in the serial coordinator. A [`RestartReport`] extends the WAL
//! crate's [`RecoveryReport`](rmdb_wal::RecoveryReport) with bound
//! accounting, per-phase wall-clock, and a per-worker histogram.
//!
//! # Example
//!
//! ```
//! use rmdb_restart::{restart, RestartConfig};
//! use rmdb_wal::{WalConfig, WalDb};
//!
//! let mut db = WalDb::new(WalConfig::default());
//! let t = db.begin();
//! db.write(t, 3, 0, b"hello").unwrap();
//! db.commit(t).unwrap();
//!
//! let (mut db2, report) =
//!     restart(db.crash_image(), WalConfig::default(), &RestartConfig::default()).unwrap();
//! let t2 = db2.begin();
//! assert_eq!(db2.read(t2, 3, 0, 5).unwrap(), b"hello");
//! assert_eq!(report.workers, 4);
//! ```

mod analysis;
mod parallel;
pub mod report;

pub use report::{PhaseTimings, ReplaySummary, RestartReport, WorkerStats};

use analysis::{analyze, harvest_doublewrite, read_data_retry};
use parallel::run_redo;
use rmdb_obs::{EventKind, Registry};
use rmdb_storage::{write_page_verified, Disk, Lsn, Page, PageId, StorageError};
use rmdb_wal::{CrashImage, LogRecord, ParallelLogManager, WalConfig, WalDb, WalError};
use std::collections::{btree_map::Entry, BTreeMap, BTreeSet, HashMap};
use std::time::Instant;

/// Which parallel redo scheduler the restart engine runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RedoScheduler {
    /// Hash pages into K shards, one worker per shard (the original
    /// scheduler). Parallelism is bounded by page-set skew.
    #[default]
    PageSharded,
    /// Build a transaction-level precedence DAG from page-set
    /// intersections and run a K-worker topological executor
    /// ([`rmdb_replay`]): physical records short-circuit to page installs,
    /// command records re-execute. Required for exploiting command-logged
    /// (logical) records' read-set ordering; byte-identical to
    /// `PageSharded` for every K.
    TxnDag,
}

/// Knobs for the restart engine.
#[derive(Debug, Clone)]
pub struct RestartConfig {
    /// Redo worker threads (K ≥ 1; 1 degenerates to serial redo).
    pub workers: usize,
    /// Durably truncate each stream behind its checkpoint bound once the
    /// recovered state is home, so the next restart scans less.
    pub truncate_behind_bound: bool,
    /// Parallel redo scheduler.
    pub scheduler: RedoScheduler,
}

impl Default for RestartConfig {
    fn default() -> Self {
        RestartConfig {
            workers: 4,
            truncate_behind_bound: true,
            scheduler: RedoScheduler::PageSharded,
        }
    }
}

/// Run a checkpoint-bounded parallel restart of `image`; returns the
/// reopened engine and a [`RestartReport`].
///
/// Accepts the same crash images as [`WalDb::recover`] and recovers the
/// same committed state; the two differ only in how much log they replay
/// and in redo parallelism.
pub fn restart(
    image: CrashImage,
    cfg: WalConfig,
    rcfg: &RestartConfig,
) -> Result<(WalDb, RestartReport), WalError> {
    restart_observed(image, cfg, rcfg, &Registry::new())
}

/// [`restart`] with an observability registry: per-phase wall-clock
/// histograms (`restart.{analysis,redo,undo,flush,total}_us`), accounting
/// counters (`restart.records_scanned`, `restart.records_skipped`,
/// `restart.pages_replayed`, `restart.undone_updates`,
/// `restart.pages_written`) and one [`EventKind::RecoveryPhase`] event per
/// phase (stream field 0–3 in phase order, payload = µs elapsed). The
/// counters are published from the same sites that build the
/// [`RestartReport`], so snapshot values and report fields must agree.
pub fn restart_observed(
    image: CrashImage,
    cfg: WalConfig,
    rcfg: &RestartConfig,
    obs: &Registry,
) -> Result<(WalDb, RestartReport), WalError> {
    let t_start = Instant::now();
    let workers = rcfg.workers.max(1);
    let CrashImage { data, logs } = image;
    let mut data: Disk = data;
    let mut log = ParallelLogManager::open(logs, cfg.policy, cfg.seed)?;

    // ---- Phase 1: checkpoint-bounded analysis ----
    let scans = log.scan_all_indexed();
    let a = analyze(&scans);
    drop(scans);
    let mut report = RestartReport {
        workers,
        records_skipped: a.records_skipped,
        checkpoints_found: a.checkpoints_found,
        bounded_streams: a.bounded_streams(),
        ..RestartReport::default()
    };
    report.base.streams_scanned = a.bounds.len();
    report.base.records_scanned = a.records_scanned;
    report.base.quarantined_log_pages = a.quarantined_log_pages;
    report.base.salvaged_records = a.salvaged_records;
    report.base.duplicate_fragments = a.duplicates;
    report.base.retried_ios = a.retried_ios;
    report.base.logical_commits = a.logical_commits;
    report.base.committed_txns = a.committed.iter().copied().collect();
    report.base.committed_txns.sort_unstable();
    let doublewrite = harvest_doublewrite(&data, &cfg, &mut report.base.retried_ios);
    report.timings.analysis = t_start.elapsed();
    obs.counter("restart.records_scanned")
        .add(report.base.records_scanned as u64);
    obs.counter("restart.records_skipped")
        .add(report.records_skipped);
    obs.counter("restart.duplicate_fragments")
        .add(report.base.duplicate_fragments);
    let us = report.timings.analysis.as_micros() as u64;
    obs.histogram("restart.analysis_us").record(us);
    obs.emit(EventKind::RecoveryPhase, 0, 0, 0, us);

    // ---- Phase 2: parallel redo (page-sharded or transaction-DAG) ----
    let t_redo = Instant::now();
    let mut pages: BTreeMap<PageId, Page> = BTreeMap::new();
    let mut quarantined: BTreeSet<PageId> = BTreeSet::new();
    match rcfg.scheduler {
        RedoScheduler::PageSharded => {
            let outcomes = run_redo(&data, &doublewrite, a.redo, workers)?;
            for out in outcomes {
                report.base.redone_updates += out.redone;
                report.base.reexecuted_ops += out.reexecuted_ops;
                report.base.torn_pages_repaired += out.torn_repaired;
                report.base.quarantined_data_pages += out.quarantined.len() as u64;
                report.base.retried_ios += out.retried_ios;
                report.per_worker.push(WorkerStats {
                    shard: out.shard,
                    pages: out.pages.len() as u64 + out.quarantined.len() as u64,
                    redone: out.redone,
                    skipped_idempotent: out.skipped_idempotent,
                    busy: out.busy,
                });
                quarantined.extend(out.quarantined);
                pages.extend(out.pages);
            }
        }
        RedoScheduler::TxnDag => {
            let out = rmdb_replay::replay_dag(&data, &doublewrite, a.redo, &a.logical, workers)?;
            report.base.redone_updates = out.redone;
            report.base.reexecuted_ops = out.reexecuted_ops;
            report.base.torn_pages_repaired += out.torn_repaired;
            report.base.quarantined_data_pages += out.quarantined.len() as u64;
            report.base.retried_ios += out.retried_ios;
            report.replay = Some(ReplaySummary {
                dag_nodes: out.dag_nodes,
                dag_edges: out.dag_edges,
                txns_reexecuted: out.txns_reexecuted,
                pages_installed: out.pages_installed,
                work_us: out.work_us,
                span_us: out.span_us,
            });
            for w in &out.per_worker {
                report.per_worker.push(WorkerStats {
                    shard: w.worker,
                    pages: w.nodes,
                    redone: w.redone,
                    skipped_idempotent: w.skipped_idempotent,
                    busy: w.busy,
                });
                obs.histogram("replay.worker_nodes").record(w.nodes);
                obs.histogram("replay.worker_busy_us")
                    .record(w.busy.as_micros() as u64);
            }
            quarantined.extend(out.quarantined);
            pages.extend(out.pages);
            let r = report.replay.as_ref().expect("just set");
            obs.counter("replay.dag_nodes").add(r.dag_nodes);
            obs.counter("replay.dag_edges").add(r.dag_edges);
            obs.counter("replay.txns_reexecuted").add(r.txns_reexecuted);
            obs.counter("replay.pages_installed").add(r.pages_installed);
            obs.emit(
                EventKind::ReplayPhase,
                0,
                workers as u64,
                r.dag_nodes,
                t_redo.elapsed().as_micros() as u64,
            );
        }
    }
    report.timings.redo = t_redo.elapsed();
    obs.counter("restart.pages_replayed")
        .add(pages.len() as u64);
    obs.counter("restart.redone_updates")
        .add(report.base.redone_updates);
    obs.counter("restart.reexecuted_ops")
        .add(report.base.reexecuted_ops);
    let us = report.timings.redo.as_micros() as u64;
    obs.histogram("restart.redo_us").record(us);
    obs.emit(EventKind::RecoveryPhase, 0, 1, 0, us);

    // ---- Phase 3: backward undo of losers (serial) ----
    let t_undo = Instant::now();
    let mut updates_by_txn = a.updates_by_txn;
    let mut losers: Vec<_> = updates_by_txn
        .keys()
        .copied()
        .filter(|t| !a.committed.contains(t))
        .collect();
    losers.sort_unstable();
    report.base.loser_txns = losers.clone();

    let mut next_lsn = a.max_lsn + 1;
    for &loser in &losers {
        let mut cands = updates_by_txn.remove(&loser).expect("loser has updates");
        cands.retain(|c| !a.compensated.contains(&c.new_lsn.0));
        cands.sort_by_key(|c| std::cmp::Reverse(c.new_lsn));
        let mut last_stream = None;
        for cand in &cands {
            if quarantined.contains(&cand.page) {
                // unreadable either way; undoing onto a fresh frame would
                // invent contents for the untouched bytes
                continue;
            }
            if cand.offset as usize + cand.before.len() > rmdb_storage::PAYLOAD_SIZE {
                return Err(WalError::Storage(StorageError::Protocol(
                    "log fragment exceeds page payload",
                )));
            }
            // A candidate from behind the checkpoint bound may touch a page
            // the bounded redo map never loaded — fetch its current image
            // from the data disk rather than starting from a blank frame.
            let page = match pages.entry(cand.page) {
                Entry::Occupied(e) => e.into_mut(),
                Entry::Vacant(slot) => {
                    match fetch_undo_page(&data, &doublewrite, cand.page, &mut report)? {
                        Some(p) => slot.insert(p),
                        None => {
                            quarantined.insert(cand.page);
                            continue;
                        }
                    }
                }
            };
            let new_lsn = Lsn(next_lsn);
            next_lsn += 1;
            page.write_at(cand.offset as usize, &cand.before);
            page.lsn = new_lsn;
            report.base.undone_updates += 1;
            log.append_to(
                cand.stream,
                &LogRecord::Compensation {
                    txn: loser,
                    page: cand.page,
                    undoes: cand.new_lsn,
                    new_lsn,
                    offset: cand.offset,
                    data: cand.before.clone(),
                },
            )?;
            last_stream = Some(cand.stream);
        }
        log.append_to(last_stream.unwrap_or(0), &LogRecord::Abort { txn: loser })?;
    }
    report.timings.undo = t_undo.elapsed();
    obs.counter("restart.undone_updates")
        .add(report.base.undone_updates);
    let us = report.timings.undo.as_micros() as u64;
    obs.histogram("restart.undo_us").record(us);
    obs.emit(EventKind::RecoveryPhase, 0, 2, 0, us);

    // ---- Phase 4: make it durable (log first, then data), then truncate
    // each stream behind its checkpoint bound ----
    let t_flush = Instant::now();
    log.force_all()?;
    for (id, page) in &pages {
        write_page_verified(&mut data, id.0, page, 4)?;
        report.base.pages_written += 1;
    }
    if rcfg.truncate_behind_bound {
        for (stream, bound) in a.bounds.iter().enumerate() {
            if let Some(frame) = bound {
                log.truncate_stream_to(stream, *frame)?;
                report.truncated_streams += 1;
            }
        }
    }
    report.timings.flush = t_flush.elapsed();
    report.timings.total = t_start.elapsed();
    obs.counter("restart.pages_written")
        .add(report.base.pages_written);
    let us = report.timings.flush.as_micros() as u64;
    obs.histogram("restart.flush_us").record(us);
    obs.emit(EventKind::RecoveryPhase, 0, 3, 0, us);
    obs.histogram("restart.total_us")
        .record(report.timings.total.as_micros() as u64);

    let db = WalDb::from_parts(cfg, data, log, a.max_txn + 1, next_lsn);
    Ok((db, report))
}

/// Load the current image of a page touched only behind the checkpoint
/// bound, for undo: read the home frame, repairing a torn one from the
/// doublewrite buffer; `None` means the page had to be quarantined.
fn fetch_undo_page(
    data: &Disk,
    doublewrite: &HashMap<PageId, Page>,
    id: PageId,
    report: &mut RestartReport,
) -> Result<Option<Page>, WalError> {
    if !data.is_allocated(id.0) {
        return Ok(Some(Page::new(id)));
    }
    match read_data_retry(data, id.0, &mut report.base.retried_ios) {
        Ok(p) => Ok(Some(p)),
        Err(StorageError::Corrupt { .. }) => {
            if let Some(copy) = doublewrite.get(&id) {
                report.base.torn_pages_repaired += 1;
                Ok(Some(copy.clone()))
            } else {
                report.base.quarantined_data_pages += 1;
                Ok(None)
            }
        }
        Err(e) => Err(e.into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmdb_wal::SelectionPolicy;

    fn cfg(streams: usize) -> WalConfig {
        WalConfig {
            data_pages: 32,
            pool_frames: 8,
            log_streams: streams,
            ..WalConfig::default()
        }
    }

    fn rcfg(k: usize) -> RestartConfig {
        RestartConfig {
            workers: k,
            ..RestartConfig::default()
        }
    }

    fn read_committed(db: &mut WalDb, page: u64, offset: usize, len: usize) -> Vec<u8> {
        let t = db.begin();
        let v = db.read(t, page, offset, len).unwrap();
        db.commit(t).unwrap();
        v
    }

    fn assert_disks_identical(a: &Disk, b: &Disk, what: &str) {
        assert_eq!(a.capacity(), b.capacity(), "{what}: capacity");
        for addr in 0..a.capacity() {
            assert_eq!(
                a.is_allocated(addr),
                b.is_allocated(addr),
                "{what}: allocation of frame {addr}"
            );
            if a.is_allocated(addr) {
                let fa = a.read_frame(addr).expect("frame a");
                let fb = b.read_frame(addr).expect("frame b");
                assert!(fa == fb, "{what}: frame {addr} differs");
            }
        }
    }

    #[test]
    fn restart_recovers_committed_state() {
        let mut db = WalDb::new(cfg(3));
        let t = db.begin();
        db.write(t, 5, 0, b"durable").unwrap();
        db.commit(t).unwrap();
        let (mut db2, report) = restart(db.crash_image(), cfg(3), &rcfg(4)).unwrap();
        assert_eq!(read_committed(&mut db2, 5, 0, 7), b"durable");
        assert_eq!(report.base.committed_txns.len(), 1);
        assert!(report.base.loser_txns.is_empty());
        assert_eq!(report.workers, 4);
        assert_eq!(report.per_worker.len(), 4);
    }

    #[test]
    fn checkpoint_bound_skips_prefix_records() {
        let mut db = WalDb::new(cfg(2));
        // Keep a drone transaction open so checkpoints stay fuzzy and the
        // streams are retained rather than truncated.
        let drone = db.begin();
        db.write(drone, 31, 0, b"drone").unwrap();
        for i in 0..8 {
            let t = db.begin();
            db.write(t, i, 0, b"bulk").unwrap();
            db.commit(t).unwrap();
        }
        db.checkpoint().unwrap();
        let t = db.begin();
        db.write(t, 9, 0, b"tail").unwrap();
        db.commit(t).unwrap();
        let (mut db2, report) = restart(db.crash_image(), cfg(2), &rcfg(2)).unwrap();
        assert!(
            report.records_skipped > 0,
            "pre-checkpoint updates must be exempt from redo"
        );
        assert_eq!(report.bounded_streams, 2);
        assert!(report.checkpoints_found >= 2);
        for i in 0..8 {
            assert_eq!(read_committed(&mut db2, i, 0, 4), b"bulk");
        }
        assert_eq!(read_committed(&mut db2, 9, 0, 4), b"tail");
        // the drone never committed: its write must be gone
        assert_eq!(read_committed(&mut db2, 31, 0, 5), vec![0u8; 5]);
        assert!(report.base.loser_txns.contains(&drone));
    }

    #[test]
    fn active_loser_behind_bound_is_undone() {
        // A loser whose stolen update predates the checkpoint: its redo is
        // skipped, but the active list keeps it as an undo candidate, and
        // undo must read the page image from disk (it is absent from the
        // bounded redo map).
        let mut db = WalDb::new(WalConfig {
            data_pages: 32,
            pool_frames: 2, // tiny pool forces steals
            log_streams: 2,
            ..WalConfig::default()
        });
        let setup = db.begin();
        db.write(setup, 0, 0, b"base0").unwrap();
        db.commit(setup).unwrap();
        let loser = db.begin();
        db.write(loser, 0, 0, b"evil0").unwrap();
        db.checkpoint().unwrap(); // flushes the dirty page, loser active
        let t = db.begin();
        db.write(t, 9, 0, b"after").unwrap();
        db.commit(t).unwrap();

        let image = db.crash_image();
        assert_eq!(image.data.read_page(0).unwrap().read_at(0, 5), b"evil0");
        let (mut db2, report) = restart(image, cfg(2), &rcfg(4)).unwrap();
        assert_eq!(read_committed(&mut db2, 0, 0, 5), b"base0");
        assert_eq!(read_committed(&mut db2, 9, 0, 5), b"after");
        assert!(report.base.loser_txns.contains(&loser));
        assert!(report.base.undone_updates >= 1);
    }

    #[test]
    fn truncation_shrinks_next_scan() {
        let mut db = WalDb::new(cfg(2));
        let drone = db.begin();
        db.write(drone, 31, 0, b"drone").unwrap();
        for i in 0..8 {
            let t = db.begin();
            db.write(t, i, 0, b"bulk").unwrap();
            db.commit(t).unwrap();
        }
        db.checkpoint().unwrap();
        let (db2, first) = restart(db.crash_image(), cfg(2), &rcfg(2)).unwrap();
        assert!(first.truncated_streams > 0);
        let (_, second) = restart(db2.crash_image(), cfg(2), &rcfg(2)).unwrap();
        assert!(
            second.base.records_scanned < first.base.records_scanned,
            "truncation must shrink the next restart's scan: {} -> {}",
            first.base.records_scanned,
            second.base.records_scanned
        );
    }

    #[test]
    fn restart_is_idempotent() {
        let mut db = WalDb::new(cfg(2));
        let t0 = db.begin();
        db.write(t0, 1, 0, b"base").unwrap();
        db.commit(t0).unwrap();
        let l = db.begin();
        db.write(l, 1, 0, b"lost").unwrap();
        let (db2, _) = restart(db.crash_image(), cfg(2), &rcfg(4)).unwrap();
        let (mut db3, report) = restart(db2.crash_image(), cfg(2), &rcfg(4)).unwrap();
        assert_eq!(read_committed(&mut db3, 1, 0, 4), b"base");
        assert_eq!(report.base.undone_updates, 0, "idempotent undo");
    }

    #[test]
    fn matches_serial_recovery_data_state() {
        let mut db = WalDb::new(WalConfig {
            data_pages: 32,
            pool_frames: 4,
            log_streams: 3,
            policy: SelectionPolicy::Cyclic,
            ..WalConfig::default()
        });
        let drone = db.begin();
        db.write(drone, 30, 0, b"open").unwrap();
        for i in 0..12u64 {
            let t = db.begin();
            db.write(
                t,
                i % 8,
                (i % 4) as usize * 8,
                format!("v{i:05}").as_bytes(),
            )
            .unwrap();
            db.commit(t).unwrap();
            if i == 6 {
                db.checkpoint().unwrap();
            }
        }
        let mk = || WalConfig {
            data_pages: 32,
            pool_frames: 4,
            log_streams: 3,
            policy: SelectionPolicy::Cyclic,
            ..WalConfig::default()
        };
        let (serial_db, _) = WalDb::recover(db.crash_image(), mk()).unwrap();
        let (restart_db, report) = restart(db.crash_image(), mk(), &rcfg(4)).unwrap();
        assert!(report.records_skipped > 0);
        let a = serial_db.crash_image().data;
        let b = restart_db.crash_image().data;
        assert_disks_identical(&a, &b, "serial vs restart data");
    }

    #[test]
    fn worker_counts_agree_bytewise() {
        let mut db = WalDb::new(cfg(4));
        let drone = db.begin();
        db.write(drone, 31, 0, b"drone").unwrap();
        for i in 0..20u64 {
            let t = db.begin();
            db.write(t, i % 10, 0, format!("row{i:04}").as_bytes())
                .unwrap();
            db.commit(t).unwrap();
            if i % 7 == 3 {
                db.checkpoint().unwrap();
            }
        }
        let mut summaries = Vec::new();
        let mut images = Vec::new();
        for k in [1usize, 2, 4, 8] {
            let (dbk, rep) = restart(db.crash_image(), cfg(4), &rcfg(k)).unwrap();
            summaries.push(rep.logical_summary());
            images.push(dbk.crash_image());
        }
        for w in summaries.windows(2) {
            assert_eq!(w[0], w[1], "logical reports diverge across K");
        }
        for w in images.windows(2) {
            let (a, b) = (&w[0], &w[1]);
            assert_disks_identical(&a.data, &b.data, "data across K");
            for (i, (la, lb)) in a.logs.iter().zip(&b.logs).enumerate() {
                assert_disks_identical(la, lb, &format!("log stream {i} across K"));
            }
        }
    }

    /// A mixed workload: command-logged counter bumps (hot pages, read
    /// sets), physical writes, an in-flight loser, and a checkpoint.
    fn mixed_adaptive_image() -> rmdb_wal::CrashImage {
        let mut db = WalDb::new(WalConfig {
            data_pages: 32,
            pool_frames: 16,
            log_streams: 3,
            logging: rmdb_wal::LoggingPolicy::Adaptive { threshold_pct: 100 },
            ..WalConfig::default()
        });
        let drone = db.begin();
        db.write(drone, 30, 0, b"open").unwrap();
        for i in 0..24u64 {
            let t = db.begin();
            if i % 3 == 0 {
                // hot-key counter bumps: command-logged
                db.add_u64(t, i % 4, 0, 1 + i).unwrap();
                db.add_u64(t, (i + 1) % 4, 8, 7).unwrap();
            } else {
                // read-heavy writers: the read set is pure logical-record
                // overhead, so the cost policy spills these to fragments
                for r in 0..6u64 {
                    db.read(t, 8 + ((i + r) % 8), 0, 4).unwrap();
                }
                db.write(t, 8 + (i % 8), 0, format!("v{i:06}").as_bytes())
                    .unwrap();
            }
            db.commit(t).unwrap();
            if i == 11 {
                db.checkpoint().unwrap();
            }
        }
        db.crash_image()
    }

    #[test]
    fn txn_dag_matches_page_sharded_bytewise() {
        let image = mixed_adaptive_image();
        let cfg = || WalConfig {
            data_pages: 32,
            pool_frames: 16,
            log_streams: 3,
            logging: rmdb_wal::LoggingPolicy::Adaptive { threshold_pct: 100 },
            ..WalConfig::default()
        };
        let mut images = Vec::new();
        let mut dag_summaries = Vec::new();
        for scheduler in [RedoScheduler::PageSharded, RedoScheduler::TxnDag] {
            for k in [1usize, 2, 4, 8] {
                let rcfg = RestartConfig {
                    workers: k,
                    scheduler,
                    ..RestartConfig::default()
                };
                let (dbk, rep) = restart(clone_image(&image), cfg(), &rcfg).unwrap();
                if scheduler == RedoScheduler::TxnDag {
                    let r = rep.replay.expect("TxnDag sets replay summary");
                    assert!(r.dag_nodes > 0);
                    assert!(r.txns_reexecuted > 0, "command records must re-execute");
                    assert!(r.pages_installed > 0, "physical records must install");
                    dag_summaries.push(rep.logical_summary());
                } else {
                    assert!(rep.replay.is_none());
                }
                assert!(rep.base.logical_commits > 0);
                images.push(dbk.crash_image());
            }
        }
        for w in dag_summaries.windows(2) {
            assert_eq!(w[0], w[1], "TxnDag logical reports diverge across K");
        }
        for w in images.windows(2) {
            let (a, b) = (&w[0], &w[1]);
            assert_disks_identical(&a.data, &b.data, "data across schedulers/K");
            for (i, (la, lb)) in a.logs.iter().zip(&b.logs).enumerate() {
                assert_disks_identical(la, lb, &format!("log stream {i}"));
            }
        }
    }

    fn clone_image(image: &rmdb_wal::CrashImage) -> rmdb_wal::CrashImage {
        rmdb_wal::CrashImage {
            data: image.data.snapshot(),
            logs: image.logs.iter().map(Disk::snapshot).collect(),
        }
    }

    #[test]
    fn txn_dag_handles_pure_physical_logs() {
        // The DAG scheduler must also replay logs with no logical records.
        let mut db = WalDb::new(cfg(3));
        for i in 0..10u64 {
            let t = db.begin();
            db.write(t, i % 5, 0, format!("p{i:03}").as_bytes())
                .unwrap();
            db.commit(t).unwrap();
        }
        let rcfg = RestartConfig {
            workers: 4,
            scheduler: RedoScheduler::TxnDag,
            ..RestartConfig::default()
        };
        let (mut db2, rep) = restart(db.crash_image(), cfg(3), &rcfg).unwrap();
        for i in 5..10u64 {
            assert_eq!(
                read_committed(&mut db2, i % 5, 0, 4),
                format!("p{i:03}").as_bytes()
            );
        }
        let r = rep.replay.expect("summary present");
        assert_eq!(r.txns_reexecuted, 0);
        assert!(r.pages_installed > 0);
    }

    #[test]
    fn replay_obs_counters_match_report() {
        let image = mixed_adaptive_image();
        let cfg = WalConfig {
            data_pages: 32,
            pool_frames: 16,
            log_streams: 3,
            logging: rmdb_wal::LoggingPolicy::Adaptive { threshold_pct: 100 },
            ..WalConfig::default()
        };
        let rcfg = RestartConfig {
            workers: 4,
            scheduler: RedoScheduler::TxnDag,
            ..RestartConfig::default()
        };
        let obs = Registry::new();
        let (_db, report) = restart_observed(image, cfg, &rcfg, &obs).unwrap();
        let r = report.replay.expect("summary present");
        let snap = obs.snapshot();
        let c = |name: &str| snap.counter(name).unwrap_or(0);
        assert_eq!(c("replay.dag_nodes"), r.dag_nodes);
        assert_eq!(c("replay.dag_edges"), r.dag_edges);
        assert_eq!(c("replay.txns_reexecuted"), r.txns_reexecuted);
        assert_eq!(c("replay.pages_installed"), r.pages_installed);
        assert_eq!(c("restart.reexecuted_ops"), report.base.reexecuted_ops);
        assert_eq!(c("restart.redone_updates"), report.base.redone_updates);
        // per-worker histograms: one sample per worker
        assert_eq!(
            snap.histogram("replay.worker_busy_us").map(|h| h.count),
            Some(4)
        );
        assert_eq!(
            snap.histogram("replay.worker_nodes").map(|h| h.count),
            Some(4)
        );
        // the ReplayPhase event fired with the worker count and DAG size
        let ev = obs
            .recent_events()
            .into_iter()
            .find(|e| e.kind == EventKind::ReplayPhase)
            .expect("ReplayPhase event");
        assert_eq!(ev.stream, 4);
        assert_eq!(ev.page, r.dag_nodes);
    }

    #[test]
    fn empty_image_restarts_clean() {
        let db = WalDb::new(cfg(2));
        let (mut db2, report) = restart(db.crash_image(), cfg(2), &rcfg(4)).unwrap();
        assert_eq!(report.base.records_scanned, 0);
        assert_eq!(report.records_skipped, 0);
        assert_eq!(report.bounded_streams, 0);
        assert_eq!(read_committed(&mut db2, 0, 0, 4), vec![0u8; 4]);
    }

    #[test]
    fn report_displays() {
        let mut db = WalDb::new(cfg(2));
        let t = db.begin();
        db.write(t, 1, 0, b"x").unwrap();
        db.commit(t).unwrap();
        let (_, report) = restart(db.crash_image(), cfg(2), &rcfg(2)).unwrap();
        let text = format!("{report}");
        assert!(text.contains("restart report (2 workers)"));
        assert!(text.contains("worker  0:"));
    }
}
