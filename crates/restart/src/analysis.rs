//! Checkpoint-bounded analysis over the distributed log streams.
//!
//! Serial recovery replays every stream from its truncation point. This
//! module implements the restart engine's sharper bound: within one stream,
//! any update logged **before** the stream's last *complete*
//! `CheckpointBegin`/`CheckpointEnd` pair needs no redo — a durable
//! `CheckpointEnd` proves the fuzzy checkpoint's flush finished, so every
//! page dirtied before its `CheckpointBegin` reached the data disk through
//! a verified write.
//!
//! The bound is applied **per stream, independently**. After a crash in the
//! middle of a checkpoint, streams may disagree about which checkpoint is
//! their last complete one; that is fine, because the rule above is sound
//! for each stream on its own.
//!
//! Three kinds of information must still be gathered from the *entire*
//! scan, bound or no bound:
//!
//! * **commit/abort records** — a transaction's commit may sit behind one
//!   stream's bound while its fragments sit ahead of another's;
//! * **compensation provenance** (`undoes` LSNs) — so undo stays idempotent
//!   across repeated restarts;
//! * **LSN and transaction-id high-water marks** — the reopened engine must
//!   never reuse either.
//!
//! Undo candidates behind the bound are kept only for transactions named in
//! the bounding `CheckpointBegin`'s active list: a transaction absent from
//! that list had finished before the checkpoint instant, so it is either a
//! winner (commit record retained somewhere) or fully compensated (its
//! compensations precede the bound in the same stream and are therefore
//! durable and scanned).

use rmdb_replay::{LogicalMeta, RedoBody, RedoItem};
use rmdb_storage::{Disk, Lsn, Page, PageId};
use rmdb_wal::{IndexedRecord, LogRecord, ScanStats, TxnId, WalConfig};
use std::collections::{BTreeMap, HashMap, HashSet};

pub(crate) use rmdb_replay::read_data_retry;

/// One not-yet-ruled-out undo unit of a potential loser.
pub(crate) struct UndoCand {
    pub page: PageId,
    pub new_lsn: Lsn,
    pub offset: u32,
    pub before: Vec<u8>,
    pub stream: usize,
}

/// Everything the redo/undo phases need, plus the bound accounting.
#[derive(Default)]
pub(crate) struct Analysis {
    /// Per-page redo work, pages in deterministic order; items in stream
    /// append order (sorted by LSN before replay).
    pub redo: BTreeMap<PageId, Vec<RedoItem>>,
    /// Per-transaction undo candidates.
    pub updates_by_txn: HashMap<TxnId, Vec<UndoCand>>,
    /// Transactions with a durable commit record on any stream.
    pub committed: HashSet<TxnId>,
    /// Command-logged transactions whose record sits ahead of the bound:
    /// commit LSN (the DAG ordering key) and read set, for the
    /// dependency-aware scheduler.
    pub logical: HashMap<TxnId, LogicalMeta>,
    /// Command-logged (logical) commit records found anywhere in the scan.
    pub logical_commits: u64,
    /// `undoes` LSNs of every durable compensation record.
    pub compensated: HashSet<u64>,
    /// High-water marks for the reopened engine.
    pub max_lsn: u64,
    pub max_txn: TxnId,
    /// Per-stream record-aligned truncation frame: the nearest frame at or
    /// before the bounding `CheckpointBegin` whose first byte begins a
    /// record, computed here so truncation needs no second log pass.
    pub bounds: Vec<Option<u64>>,
    pub records_scanned: usize,
    pub records_skipped: u64,
    /// Rerouted duplicate update/compensation fragments (same globally
    /// unique `new_lsn` durable on two streams after a failover) analysed
    /// exactly once; the extra copies are counted here.
    pub duplicates: u64,
    pub checkpoints_found: u64,
    pub quarantined_log_pages: u64,
    pub salvaged_records: u64,
    pub retried_ios: u64,
}

impl Analysis {
    pub fn bounded_streams(&self) -> usize {
        self.bounds.iter().filter(|b| b.is_some()).count()
    }
}

/// Run checkpoint-bounded analysis over the indexed scans of every stream.
pub(crate) fn analyze(scans: &[(Vec<IndexedRecord>, ScanStats)]) -> Analysis {
    let mut a = Analysis::default();
    // Cross-stream dedup of failover-rerouted fragments by their globally
    // unique `new_lsn` (see the matching logic in serial recovery).
    let mut seen_lsns: HashSet<u64> = HashSet::new();
    for (stream_idx, (records, stats)) in scans.iter().enumerate() {
        a.quarantined_log_pages += stats.corrupt_pages;
        a.retried_ios += stats.retried_reads;
        if stats.corrupt_pages > 0 {
            a.salvaged_records += records.len() as u64;
        }

        // Locate this stream's last complete Begin/End pair. An End pairs
        // with the most recent Begin: the engine writes checkpoints
        // serially, and an End is only ever appended after that round's
        // Begin reached every stream, so within a stream the pairing is
        // unambiguous. An orphan End (its Begin truncated away or never
        // durable) bounds nothing.
        let mut open: Option<(usize, &Vec<TxnId>)> = None;
        let mut bound: Option<(usize, &Vec<TxnId>)> = None;
        for (i, ir) in records.iter().enumerate() {
            match &ir.rec {
                LogRecord::CheckpointBegin { active } => open = Some((i, active)),
                LogRecord::CheckpointEnd => {
                    if let Some(pair) = open.take() {
                        a.checkpoints_found += 1;
                        bound = Some(pair);
                    }
                }
                _ => {}
            }
        }
        let (bound_idx, active): (usize, HashSet<TxnId>) = match bound {
            Some((bi, act)) => {
                // Truncation cut: records span log pages, so the Begin's own
                // frame may start mid-record; walk back to the nearest
                // record-aligned frame. records[0] always begins the first
                // scanned frame, so a bound implies such a frame exists.
                let cut = records[..=bi]
                    .iter()
                    .rev()
                    .find(|r| r.frame_start)
                    .map(|r| r.frame);
                a.bounds.push(cut);
                (bi, act.iter().copied().collect())
            }
            None => {
                a.bounds.push(None);
                (0, HashSet::new())
            }
        };

        for (i, ir) in records.iter().enumerate() {
            a.records_scanned += 1;
            if let Some(t) = ir.rec.txn() {
                a.max_txn = a.max_txn.max(t);
            }
            let behind = i < bound_idx;
            match &ir.rec {
                LogRecord::Update {
                    txn,
                    page,
                    new_lsn,
                    offset,
                    before,
                    after,
                    ..
                } => {
                    a.max_lsn = a.max_lsn.max(new_lsn.0);
                    if !seen_lsns.insert(new_lsn.0) {
                        a.duplicates += 1;
                    } else if behind {
                        a.records_skipped += 1;
                        if active.contains(txn) {
                            // still in flight at the checkpoint instant —
                            // may be a loser, so keep its before-image
                            a.updates_by_txn.entry(*txn).or_default().push(UndoCand {
                                page: *page,
                                new_lsn: *new_lsn,
                                offset: *offset,
                                before: before.clone(),
                                stream: stream_idx,
                            });
                        }
                    } else {
                        a.redo.entry(*page).or_default().push(RedoItem {
                            new_lsn: *new_lsn,
                            txn: *txn,
                            body: RedoBody::Install {
                                offset: *offset,
                                data: after.clone(),
                            },
                        });
                        a.updates_by_txn.entry(*txn).or_default().push(UndoCand {
                            page: *page,
                            new_lsn: *new_lsn,
                            offset: *offset,
                            before: before.clone(),
                            stream: stream_idx,
                        });
                    }
                }
                LogRecord::Compensation {
                    txn,
                    page,
                    undoes,
                    new_lsn,
                    offset,
                    data,
                } => {
                    a.max_lsn = a.max_lsn.max(new_lsn.0);
                    a.compensated.insert(undoes.0);
                    if !seen_lsns.insert(new_lsn.0) {
                        a.duplicates += 1;
                    } else if behind {
                        a.records_skipped += 1;
                    } else {
                        a.redo.entry(*page).or_default().push(RedoItem {
                            new_lsn: *new_lsn,
                            txn: *txn,
                            body: RedoBody::Install {
                                offset: *offset,
                                data: data.clone(),
                            },
                        });
                    }
                }
                LogRecord::Commit { txn } => {
                    a.committed.insert(*txn);
                }
                LogRecord::Logical {
                    txn,
                    commit_lsn,
                    reads,
                    ops,
                    ..
                } => {
                    // The logical record IS the commit record; dedup whole
                    // records by their globally unique commit LSN.
                    a.max_lsn = a.max_lsn.max(commit_lsn.0);
                    for op in ops {
                        a.max_lsn = a.max_lsn.max(op.lsn().0);
                    }
                    if !seen_lsns.insert(commit_lsn.0) {
                        a.duplicates += 1;
                    } else {
                        a.committed.insert(*txn);
                        a.logical_commits += 1;
                        if behind {
                            // committed before the bounding CheckpointBegin,
                            // so its dirtied pages were in the fuzzy
                            // checkpoint's flush set: no redo needed
                            a.records_skipped += 1;
                        } else {
                            a.logical.insert(
                                *txn,
                                LogicalMeta {
                                    commit_lsn: commit_lsn.0,
                                    reads: reads.clone(),
                                },
                            );
                            for op in ops {
                                a.redo.entry(op.page()).or_default().push(RedoItem {
                                    new_lsn: op.lsn(),
                                    txn: *txn,
                                    body: RedoBody::Op(op.clone()),
                                });
                            }
                        }
                    }
                }
                LogRecord::Abort { .. }
                | LogRecord::CheckpointBegin { .. }
                | LogRecord::CheckpointEnd => {}
            }
        }
    }
    a
}

/// Harvest the doublewrite buffer: the latest valid full image per page,
/// used to rebuild home frames torn by the crash. A corrupt slot means the
/// crash hit the doublewrite write itself — the home frame is then still
/// intact, so the slot is simply ignored.
pub(crate) fn harvest_doublewrite(
    data: &Disk,
    cfg: &WalConfig,
    retried: &mut u64,
) -> HashMap<PageId, Page> {
    let mut doublewrite: HashMap<PageId, Page> = HashMap::new();
    for slot in cfg.data_pages..data.capacity() {
        if !data.is_allocated(slot) {
            continue;
        }
        if let Ok(p) = read_data_retry(data, slot, retried) {
            match doublewrite.get(&p.id) {
                Some(have) if have.lsn >= p.lsn => {}
                _ => {
                    doublewrite.insert(p.id, p);
                }
            }
        }
    }
    doublewrite
}
