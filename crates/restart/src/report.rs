//! Restart observability: phase timings, per-worker histograms, and the
//! checkpoint-bound accounting, layered over the WAL crate's
//! [`RecoveryReport`].

use rmdb_wal::RecoveryReport;
use std::time::Duration;

/// Wall-clock spent in each restart phase.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTimings {
    /// Scanning the streams, locating checkpoint bounds, building the redo
    /// and undo work lists, harvesting the doublewrite buffer.
    pub analysis: Duration,
    /// Sharded replay across the worker threads (longest worker bounds it).
    pub redo: Duration,
    /// Backward undo of losers, including compensation logging.
    pub undo: Duration,
    /// Forcing the logs, writing recovered pages home, truncating streams.
    pub flush: Duration,
    /// End-to-end restart time.
    pub total: Duration,
}

/// What one redo worker did — one histogram bucket per shard.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkerStats {
    /// Shard index (0..K).
    pub shard: usize,
    /// Pages assigned to and processed by this worker.
    pub pages: u64,
    /// Fragments replayed (page image was stale).
    pub redone: u64,
    /// Fragments skipped by the per-shard idempotence check
    /// (`page.lsn >= new_lsn`: the update already reached the platter).
    pub skipped_idempotent: u64,
    /// Wall-clock this worker spent replaying its shard.
    pub busy: Duration,
}

/// What a checkpoint-bounded parallel restart did.
///
/// Extends the serial [`RecoveryReport`] (available as
/// [`RestartReport::base`]) with the bound accounting, the phase clock, and
/// the per-worker histogram. Two restarts of the same crash image with
/// different worker counts agree on every field except the timings and the
/// per-worker split — that invariant is what the equivalence tests pin.
#[derive(Debug, Clone, Default)]
pub struct RestartReport {
    /// The serial-recovery accounting: records scanned, winners and losers,
    /// redo/undo counts, torn-page repairs, salvage and quarantine counters.
    pub base: RecoveryReport,
    /// Worker threads used for the redo phase.
    pub workers: usize,
    /// Update/compensation records behind a stream's checkpoint bound whose
    /// redo was skipped outright (the bounding checkpoint proved them home).
    pub records_skipped: u64,
    /// Complete `CheckpointBegin`/`CheckpointEnd` pairs seen across streams.
    pub checkpoints_found: u64,
    /// Streams whose redo scan was bounded by a complete checkpoint pair.
    pub bounded_streams: usize,
    /// Streams whose scan prefix was durably truncated behind the bound.
    pub truncated_streams: usize,
    /// Wall-clock per phase.
    pub timings: PhaseTimings,
    /// Per-worker redo histogram, indexed by shard.
    pub per_worker: Vec<WorkerStats>,
}

impl RestartReport {
    /// The logical (timing-free) portion of the report, for equivalence
    /// assertions across worker counts.
    pub fn logical_summary(&self) -> String {
        format!(
            "scanned={} skipped={} ckpts={} bounded={} truncated={} \
             committed={:?} losers={:?} redone={} undone={} written={} \
             torn_repaired={} quarantined={} salvaged={}",
            self.base.records_scanned,
            self.records_skipped,
            self.checkpoints_found,
            self.bounded_streams,
            self.truncated_streams,
            self.base.committed_txns,
            self.base.loser_txns,
            self.base.redone_updates,
            self.base.undone_updates,
            self.base.pages_written,
            self.base.torn_pages_repaired,
            self.base.quarantined_data_pages,
            self.base.salvaged_records,
        )
    }
}

impl std::fmt::Display for RestartReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "restart report ({} workers)", self.workers)?;
        writeln!(
            f,
            "  analysis: {} streams, {} records scanned, {} skipped behind \
             checkpoint bound ({} complete checkpoints, {} streams bounded)",
            self.base.streams_scanned,
            self.base.records_scanned,
            self.records_skipped,
            self.checkpoints_found,
            self.bounded_streams,
        )?;
        writeln!(
            f,
            "  outcome:  {} winners, {} losers, {} redone, {} undone, {} pages written",
            self.base.committed_txns.len(),
            self.base.loser_txns.len(),
            self.base.redone_updates,
            self.base.undone_updates,
            self.base.pages_written,
        )?;
        if self.base.torn_pages_repaired
            + self.base.quarantined_data_pages
            + self.base.quarantined_log_pages
            > 0
        {
            writeln!(
                f,
                "  repairs:  {} torn pages repaired, {} data pages quarantined, \
                 {} log pages quarantined, {} records salvaged",
                self.base.torn_pages_repaired,
                self.base.quarantined_data_pages,
                self.base.quarantined_log_pages,
                self.base.salvaged_records,
            )?;
        }
        writeln!(
            f,
            "  phases:   analysis {:?}, redo {:?}, undo {:?}, flush {:?}, total {:?}",
            self.timings.analysis,
            self.timings.redo,
            self.timings.undo,
            self.timings.flush,
            self.timings.total,
        )?;
        writeln!(
            f,
            "  truncated {} stream scan prefixes",
            self.truncated_streams
        )?;
        for w in &self.per_worker {
            writeln!(
                f,
                "  worker {:>2}: {:>5} pages, {:>6} redone, {:>6} idempotent-skips, busy {:?}",
                w.shard, w.pages, w.redone, w.skipped_idempotent, w.busy,
            )?;
        }
        Ok(())
    }
}
