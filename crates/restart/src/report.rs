//! Restart observability: phase timings, per-worker histograms, and the
//! checkpoint-bound accounting, layered over the WAL crate's
//! [`RecoveryReport`].

use rmdb_wal::RecoveryReport;
use std::time::Duration;

/// Wall-clock spent in each restart phase.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTimings {
    /// Scanning the streams, locating checkpoint bounds, building the redo
    /// and undo work lists, harvesting the doublewrite buffer.
    pub analysis: Duration,
    /// Sharded replay across the worker threads (longest worker bounds it).
    pub redo: Duration,
    /// Backward undo of losers, including compensation logging.
    pub undo: Duration,
    /// Forcing the logs, writing recovered pages home, truncating streams.
    pub flush: Duration,
    /// End-to-end restart time.
    pub total: Duration,
}

/// What one redo worker did — one histogram bucket per shard.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkerStats {
    /// Shard index (0..K).
    pub shard: usize,
    /// Pages assigned to and processed by this worker.
    pub pages: u64,
    /// Fragments replayed (page image was stale).
    pub redone: u64,
    /// Fragments skipped by the per-shard idempotence check
    /// (`page.lsn >= new_lsn`: the update already reached the platter).
    pub skipped_idempotent: u64,
    /// Wall-clock this worker spent replaying its shard.
    pub busy: Duration,
}

/// What the dependency-aware (transaction-DAG) replay scheduler did,
/// present when the restart ran with [`RedoScheduler::TxnDag`]
/// (`RedoScheduler` lives in the crate root). Every field is identical
/// across worker counts: the DAG shape depends only on the log, and every
/// apply/skip decision is fixed by per-page LSN order.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReplaySummary {
    /// Transactions in the precedence DAG.
    pub dag_nodes: u64,
    /// Distinct precedence edges from page-set intersections.
    pub dag_edges: u64,
    /// Command-logged transactions re-executed (vs fragment installs).
    pub txns_reexecuted: u64,
    /// Physical fragments installed.
    pub pages_installed: u64,
    /// Σ measured per-node replay time (the DAG's total work; timing, so
    /// excluded from [`super::RestartReport::logical_summary`]).
    pub work_us: u64,
    /// Critical path through the DAG under those per-node times; with
    /// `work_us` this models replay scaling (`T_k ≈ span + work/k`).
    pub span_us: u64,
}

/// What a checkpoint-bounded parallel restart did.
///
/// Extends the serial [`RecoveryReport`] (available as
/// [`RestartReport::base`]) with the bound accounting, the phase clock, and
/// the per-worker histogram. Two restarts of the same crash image with
/// different worker counts agree on every field except the timings and the
/// per-worker split — that invariant is what the equivalence tests pin.
#[derive(Debug, Clone, Default)]
pub struct RestartReport {
    /// The serial-recovery accounting: records scanned, winners and losers,
    /// redo/undo counts, torn-page repairs, salvage and quarantine counters.
    pub base: RecoveryReport,
    /// Worker threads used for the redo phase.
    pub workers: usize,
    /// Update/compensation records behind a stream's checkpoint bound whose
    /// redo was skipped outright (the bounding checkpoint proved them home).
    pub records_skipped: u64,
    /// Complete `CheckpointBegin`/`CheckpointEnd` pairs seen across streams.
    pub checkpoints_found: u64,
    /// Streams whose redo scan was bounded by a complete checkpoint pair.
    pub bounded_streams: usize,
    /// Streams whose scan prefix was durably truncated behind the bound.
    pub truncated_streams: usize,
    /// Wall-clock per phase.
    pub timings: PhaseTimings,
    /// Per-worker redo histogram, indexed by shard (page-sharded mode) or
    /// worker (transaction-DAG mode, where `pages` counts DAG nodes).
    pub per_worker: Vec<WorkerStats>,
    /// Dependency-aware replay accounting; `None` under page-sharded redo.
    pub replay: Option<ReplaySummary>,
}

impl RestartReport {
    /// The logical (timing-free) portion of the report, for equivalence
    /// assertions across worker counts.
    pub fn logical_summary(&self) -> String {
        let mut s = format!(
            "scanned={} skipped={} ckpts={} bounded={} truncated={} \
             committed={:?} losers={:?} redone={} undone={} written={} \
             torn_repaired={} quarantined={} salvaged={} logical={} reexec_ops={}",
            self.base.records_scanned,
            self.records_skipped,
            self.checkpoints_found,
            self.bounded_streams,
            self.truncated_streams,
            self.base.committed_txns,
            self.base.loser_txns,
            self.base.redone_updates,
            self.base.undone_updates,
            self.base.pages_written,
            self.base.torn_pages_repaired,
            self.base.quarantined_data_pages,
            self.base.salvaged_records,
            self.base.logical_commits,
            self.base.reexecuted_ops,
        );
        if let Some(r) = &self.replay {
            s.push_str(&format!(
                " dag_nodes={} dag_edges={} txns_reexecuted={} pages_installed={}",
                r.dag_nodes, r.dag_edges, r.txns_reexecuted, r.pages_installed,
            ));
        }
        s
    }
}

impl std::fmt::Display for RestartReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "restart report ({} workers)", self.workers)?;
        writeln!(
            f,
            "  analysis: {} streams, {} records scanned, {} skipped behind \
             checkpoint bound ({} complete checkpoints, {} streams bounded)",
            self.base.streams_scanned,
            self.base.records_scanned,
            self.records_skipped,
            self.checkpoints_found,
            self.bounded_streams,
        )?;
        writeln!(
            f,
            "  outcome:  {} winners, {} losers, {} redone, {} undone, {} pages written",
            self.base.committed_txns.len(),
            self.base.loser_txns.len(),
            self.base.redone_updates,
            self.base.undone_updates,
            self.base.pages_written,
        )?;
        if self.base.torn_pages_repaired
            + self.base.quarantined_data_pages
            + self.base.quarantined_log_pages
            > 0
        {
            writeln!(
                f,
                "  repairs:  {} torn pages repaired, {} data pages quarantined, \
                 {} log pages quarantined, {} records salvaged",
                self.base.torn_pages_repaired,
                self.base.quarantined_data_pages,
                self.base.quarantined_log_pages,
                self.base.salvaged_records,
            )?;
        }
        writeln!(
            f,
            "  phases:   analysis {:?}, redo {:?}, undo {:?}, flush {:?}, total {:?}",
            self.timings.analysis,
            self.timings.redo,
            self.timings.undo,
            self.timings.flush,
            self.timings.total,
        )?;
        if let Some(r) = &self.replay {
            writeln!(
                f,
                "  replay:   {} DAG nodes, {} edges, {} txns re-executed, \
                 {} fragments installed",
                r.dag_nodes, r.dag_edges, r.txns_reexecuted, r.pages_installed,
            )?;
        }
        writeln!(
            f,
            "  truncated {} stream scan prefixes",
            self.truncated_streams
        )?;
        for w in &self.per_worker {
            writeln!(
                f,
                "  worker {:>2}: {:>5} pages, {:>6} redone, {:>6} idempotent-skips, busy {:?}",
                w.shard, w.pages, w.redone, w.skipped_idempotent, w.busy,
            )?;
        }
        Ok(())
    }
}
