//! A B+tree index over any recovery architecture.
//!
//! Keys are `u64`, values are byte strings up to [`MAX_INDEX_VALUE`]
//! bytes. The tree lives in a contiguous range of logical pages of a
//! [`PageStore`]; because every node write goes through the store's
//! transaction, structural changes (splits, root growth) commit or roll
//! back atomically with the rest of the transaction — crash safety is
//! inherited from whichever recovery architecture the store runs.
//!
//! Design notes:
//!
//! * classic top-down-lookup / bottom-up-split B+tree; leaves are chained
//!   for range scans;
//! * deletion removes the leaf entry without rebalancing (underfull nodes
//!   persist) — the standard pragmatic trade in storage engines of this
//!   vintage, documented so nobody is surprised;
//! * page allocation is a bump allocator inside the tree's page budget;
//!   pages are never returned (again, 1985-faithful).
//!
//! # Page layout
//!
//! ```text
//! meta (page base):  [magic 8][root u64][next_free u64][height u16]
//! leaf:              [1u8][count u16][next_leaf u64]
//!                    ([key u64][vlen u16][value])*
//! internal:          [2u8][count u16][child0 u64] ([key u64][child u64])*
//! ```
//!
//! An internal node with `count` keys has `count + 1` children; keys
//! separate the children such that child `i` holds keys `< keys[i]` and
//! child `i+1` holds keys `>= keys[i]`.

use crate::heap::RelError;
use rmdb_core::PageStore;
use rmdb_storage::PAYLOAD_SIZE;

/// Maximum indexed value length.
pub const MAX_INDEX_VALUE: usize = 256;

const MAGIC: &[u8; 8] = b"RMDBTREE";
const LEAF: u8 = 1;
const INTERNAL: u8 = 2;
const LEAF_HDR: usize = 1 + 2 + 8;
const INT_HDR: usize = 1 + 2 + 8;
const NO_PAGE: u64 = u64::MAX;

/// Errors from the B+tree (a thin alias over the relation error).
pub type BTreeError<E> = RelError<E>;

/// A B+tree rooted in a page range of a [`PageStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BTree {
    base: u64,
    max_pages: u64,
}

struct LeafEntry {
    key: u64,
    value: Vec<u8>,
}

struct Leaf {
    next: u64,
    entries: Vec<LeafEntry>,
}

struct Internal {
    /// children.len() == keys.len() + 1
    keys: Vec<u64>,
    children: Vec<u64>,
}

enum Node {
    Leaf(Leaf),
    Internal(Internal),
}

/// Result of inserting into a subtree: possibly a split to propagate.
enum InsertResult {
    Done,
    Split { sep: u64, right: u64 },
}

impl BTree {
    // ---------------- node (de)serialization ----------------

    fn read_node<S: PageStore>(
        store: &mut S,
        txn: u64,
        page: u64,
    ) -> Result<Node, BTreeError<S::Error>> {
        let head = store
            .read(txn, page, 0, LEAF_HDR)
            .map_err(RelError::Store)?;
        let count = u16::from_le_bytes(head[1..3].try_into().unwrap()) as usize;
        match head[0] {
            LEAF => {
                let next = u64::from_le_bytes(head[3..11].try_into().unwrap());
                let mut entries = Vec::with_capacity(count);
                let mut offset = LEAF_HDR;
                for _ in 0..count {
                    let hdr = store.read(txn, page, offset, 10).map_err(RelError::Store)?;
                    let key = u64::from_le_bytes(hdr[0..8].try_into().unwrap());
                    let vlen = u16::from_le_bytes(hdr[8..10].try_into().unwrap()) as usize;
                    let value = store
                        .read(txn, page, offset + 10, vlen)
                        .map_err(RelError::Store)?;
                    entries.push(LeafEntry { key, value });
                    offset += 10 + vlen;
                }
                Ok(Node::Leaf(Leaf { next, entries }))
            }
            INTERNAL => {
                let child0 = u64::from_le_bytes(head[3..11].try_into().unwrap());
                let body = store
                    .read(txn, page, INT_HDR, count * 16)
                    .map_err(RelError::Store)?;
                let mut keys = Vec::with_capacity(count);
                let mut children = Vec::with_capacity(count + 1);
                children.push(child0);
                for i in 0..count {
                    keys.push(u64::from_le_bytes(
                        body[i * 16..i * 16 + 8].try_into().unwrap(),
                    ));
                    children.push(u64::from_le_bytes(
                        body[i * 16 + 8..i * 16 + 16].try_into().unwrap(),
                    ));
                }
                Ok(Node::Internal(Internal { keys, children }))
            }
            _ => Err(RelError::NotAHeapFile),
        }
    }

    fn write_leaf<S: PageStore>(
        store: &mut S,
        txn: u64,
        page: u64,
        leaf: &Leaf,
    ) -> Result<(), BTreeError<S::Error>> {
        let mut buf = Vec::with_capacity(PAYLOAD_SIZE);
        buf.push(LEAF);
        buf.extend_from_slice(&(leaf.entries.len() as u16).to_le_bytes());
        buf.extend_from_slice(&leaf.next.to_le_bytes());
        for e in &leaf.entries {
            buf.extend_from_slice(&e.key.to_le_bytes());
            buf.extend_from_slice(&(e.value.len() as u16).to_le_bytes());
            buf.extend_from_slice(&e.value);
        }
        debug_assert!(buf.len() <= PAYLOAD_SIZE, "leaf overflow");
        store.write(txn, page, 0, &buf).map_err(RelError::Store)
    }

    fn write_internal<S: PageStore>(
        store: &mut S,
        txn: u64,
        page: u64,
        node: &Internal,
    ) -> Result<(), BTreeError<S::Error>> {
        debug_assert_eq!(node.children.len(), node.keys.len() + 1);
        let mut buf = Vec::with_capacity(INT_HDR + node.keys.len() * 16);
        buf.push(INTERNAL);
        buf.extend_from_slice(&(node.keys.len() as u16).to_le_bytes());
        buf.extend_from_slice(&node.children[0].to_le_bytes());
        for (i, k) in node.keys.iter().enumerate() {
            buf.extend_from_slice(&k.to_le_bytes());
            buf.extend_from_slice(&node.children[i + 1].to_le_bytes());
        }
        debug_assert!(buf.len() <= PAYLOAD_SIZE, "internal overflow");
        store.write(txn, page, 0, &buf).map_err(RelError::Store)
    }

    fn leaf_bytes(leaf: &Leaf) -> usize {
        LEAF_HDR
            + leaf
                .entries
                .iter()
                .map(|e| 10 + e.value.len())
                .sum::<usize>()
    }

    fn internal_bytes(node: &Internal) -> usize {
        INT_HDR + node.keys.len() * 16
    }

    // ---------------- meta ----------------

    fn read_meta<S: PageStore>(
        &self,
        store: &mut S,
        txn: u64,
    ) -> Result<(u64, u64, u16), BTreeError<S::Error>> {
        let m = store.read(txn, self.base, 0, 26).map_err(RelError::Store)?;
        if &m[0..8] != MAGIC {
            return Err(RelError::NotAHeapFile);
        }
        Ok((
            u64::from_le_bytes(m[8..16].try_into().unwrap()),
            u64::from_le_bytes(m[16..24].try_into().unwrap()),
            u16::from_le_bytes(m[24..26].try_into().unwrap()),
        ))
    }

    fn write_meta<S: PageStore>(
        &self,
        store: &mut S,
        txn: u64,
        root: u64,
        next_free: u64,
        height: u16,
    ) -> Result<(), BTreeError<S::Error>> {
        let mut m = Vec::with_capacity(26);
        m.extend_from_slice(MAGIC);
        m.extend_from_slice(&root.to_le_bytes());
        m.extend_from_slice(&next_free.to_le_bytes());
        m.extend_from_slice(&height.to_le_bytes());
        store.write(txn, self.base, 0, &m).map_err(RelError::Store)
    }

    fn alloc_page<S: PageStore>(
        &self,
        store: &mut S,
        txn: u64,
    ) -> Result<u64, BTreeError<S::Error>> {
        let (root, next_free, height) = self.read_meta(store, txn)?;
        if next_free >= self.base + 1 + self.max_pages {
            return Err(RelError::Full);
        }
        self.write_meta(store, txn, root, next_free + 1, height)?;
        Ok(next_free)
    }

    // ---------------- public API ----------------

    /// Create an empty tree owning pages `base ..= base + max_pages`.
    pub fn create<S: PageStore>(
        store: &mut S,
        txn: u64,
        base: u64,
        max_pages: u64,
    ) -> Result<Self, BTreeError<S::Error>> {
        assert!(max_pages >= 2, "tree needs at least a root page");
        let tree = BTree { base, max_pages };
        let root = base + 1;
        Self::write_leaf(
            store,
            txn,
            root,
            &Leaf {
                next: NO_PAGE,
                entries: Vec::new(),
            },
        )?;
        tree.write_meta(store, txn, root, base + 2, 1)?;
        Ok(tree)
    }

    /// Open an existing tree at `base`.
    pub fn open<S: PageStore>(
        store: &mut S,
        txn: u64,
        base: u64,
        max_pages: u64,
    ) -> Result<Self, BTreeError<S::Error>> {
        let tree = BTree { base, max_pages };
        tree.read_meta(store, txn)?; // validates magic
        Ok(tree)
    }

    /// Height of the tree (1 = a single leaf).
    pub fn height<S: PageStore>(
        &self,
        store: &mut S,
        txn: u64,
    ) -> Result<u16, BTreeError<S::Error>> {
        Ok(self.read_meta(store, txn)?.2)
    }

    /// Insert or replace the value for `key`.
    pub fn insert<S: PageStore>(
        &self,
        store: &mut S,
        txn: u64,
        key: u64,
        value: &[u8],
    ) -> Result<(), BTreeError<S::Error>> {
        if value.len() > MAX_INDEX_VALUE {
            return Err(RelError::ValueTooLarge(value.len()));
        }
        let (root, _, height) = self.read_meta(store, txn)?;
        match self.insert_rec(store, txn, root, key, value)? {
            InsertResult::Done => Ok(()),
            InsertResult::Split { sep, right } => {
                // root split: the tree grows by one level
                let new_root = self.alloc_page(store, txn)?;
                Self::write_internal(
                    store,
                    txn,
                    new_root,
                    &Internal {
                        keys: vec![sep],
                        children: vec![root, right],
                    },
                )?;
                let (_, next_free, _) = self.read_meta(store, txn)?;
                self.write_meta(store, txn, new_root, next_free, height + 1)
            }
        }
    }

    fn insert_rec<S: PageStore>(
        &self,
        store: &mut S,
        txn: u64,
        page: u64,
        key: u64,
        value: &[u8],
    ) -> Result<InsertResult, BTreeError<S::Error>> {
        match Self::read_node(store, txn, page)? {
            Node::Leaf(mut leaf) => {
                match leaf.entries.binary_search_by_key(&key, |e| e.key) {
                    Ok(i) => leaf.entries[i].value = value.to_vec(),
                    Err(i) => leaf.entries.insert(
                        i,
                        LeafEntry {
                            key,
                            value: value.to_vec(),
                        },
                    ),
                }
                if Self::leaf_bytes(&leaf) <= PAYLOAD_SIZE {
                    Self::write_leaf(store, txn, page, &leaf)?;
                    return Ok(InsertResult::Done);
                }
                // split the leaf in half
                let mid = leaf.entries.len() / 2;
                let right_entries = leaf.entries.split_off(mid);
                let sep = right_entries[0].key;
                let right_page = self.alloc_page(store, txn)?;
                let right = Leaf {
                    next: leaf.next,
                    entries: right_entries,
                };
                leaf.next = right_page;
                Self::write_leaf(store, txn, right_page, &right)?;
                Self::write_leaf(store, txn, page, &leaf)?;
                Ok(InsertResult::Split {
                    sep,
                    right: right_page,
                })
            }
            Node::Internal(mut node) => {
                let idx = node.keys.partition_point(|&k| k <= key);
                let child = node.children[idx];
                match self.insert_rec(store, txn, child, key, value)? {
                    InsertResult::Done => Ok(InsertResult::Done),
                    InsertResult::Split { sep, right } => {
                        node.keys.insert(idx, sep);
                        node.children.insert(idx + 1, right);
                        if Self::internal_bytes(&node) <= PAYLOAD_SIZE {
                            Self::write_internal(store, txn, page, &node)?;
                            return Ok(InsertResult::Done);
                        }
                        // split the internal node; middle key moves up
                        let mid = node.keys.len() / 2;
                        let up = node.keys[mid];
                        let right_keys = node.keys.split_off(mid + 1);
                        node.keys.pop(); // `up` moves up, not right
                        let right_children = node.children.split_off(mid + 1);
                        let right_page = self.alloc_page(store, txn)?;
                        Self::write_internal(
                            store,
                            txn,
                            right_page,
                            &Internal {
                                keys: right_keys,
                                children: right_children,
                            },
                        )?;
                        Self::write_internal(store, txn, page, &node)?;
                        Ok(InsertResult::Split {
                            sep: up,
                            right: right_page,
                        })
                    }
                }
            }
        }
    }

    fn find_leaf<S: PageStore>(
        &self,
        store: &mut S,
        txn: u64,
        key: u64,
    ) -> Result<u64, BTreeError<S::Error>> {
        let (mut page, _, _) = self.read_meta(store, txn)?;
        loop {
            match Self::read_node(store, txn, page)? {
                Node::Leaf(_) => return Ok(page),
                Node::Internal(node) => {
                    let idx = node.keys.partition_point(|&k| k <= key);
                    page = node.children[idx];
                }
            }
        }
    }

    /// Look up the value for `key`.
    pub fn get<S: PageStore>(
        &self,
        store: &mut S,
        txn: u64,
        key: u64,
    ) -> Result<Option<Vec<u8>>, BTreeError<S::Error>> {
        let leaf_page = self.find_leaf(store, txn, key)?;
        let Node::Leaf(leaf) = Self::read_node(store, txn, leaf_page)? else {
            unreachable!("find_leaf returns a leaf")
        };
        Ok(leaf
            .entries
            .binary_search_by_key(&key, |e| e.key)
            .ok()
            .map(|i| leaf.entries[i].value.clone()))
    }

    /// Remove `key`; returns whether it existed. No rebalancing.
    pub fn delete<S: PageStore>(
        &self,
        store: &mut S,
        txn: u64,
        key: u64,
    ) -> Result<bool, BTreeError<S::Error>> {
        let leaf_page = self.find_leaf(store, txn, key)?;
        let Node::Leaf(mut leaf) = Self::read_node(store, txn, leaf_page)? else {
            unreachable!("find_leaf returns a leaf")
        };
        match leaf.entries.binary_search_by_key(&key, |e| e.key) {
            Ok(i) => {
                leaf.entries.remove(i);
                Self::write_leaf(store, txn, leaf_page, &leaf)?;
                Ok(true)
            }
            Err(_) => Ok(false),
        }
    }

    /// All `(key, value)` pairs with `lo <= key <= hi`, in key order
    /// (walks the leaf chain).
    pub fn range<S: PageStore>(
        &self,
        store: &mut S,
        txn: u64,
        lo: u64,
        hi: u64,
    ) -> Result<crate::heap::TupleVec, BTreeError<S::Error>> {
        let mut out = Vec::new();
        let mut page = self.find_leaf(store, txn, lo)?;
        loop {
            let Node::Leaf(leaf) = Self::read_node(store, txn, page)? else {
                unreachable!("leaf chain holds leaves")
            };
            for e in &leaf.entries {
                if e.key > hi {
                    return Ok(out);
                }
                if e.key >= lo {
                    out.push((e.key, e.value.clone()));
                }
            }
            if leaf.next == NO_PAGE {
                return Ok(out);
            }
            page = leaf.next;
        }
    }

    /// Number of keys (full leaf-chain walk).
    pub fn len<S: PageStore>(
        &self,
        store: &mut S,
        txn: u64,
    ) -> Result<usize, BTreeError<S::Error>> {
        Ok(self.range(store, txn, 0, u64::MAX)?.len())
    }

    /// Whether the tree holds no keys.
    pub fn is_empty<S: PageStore>(
        &self,
        store: &mut S,
        txn: u64,
    ) -> Result<bool, BTreeError<S::Error>> {
        Ok(self.len(store, txn)? == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rmdb_wal::{WalConfig, WalDb};
    use std::collections::BTreeMap;

    fn store(pages: u64) -> WalDb {
        WalDb::new(WalConfig {
            data_pages: pages,
            pool_frames: 32,
            log_frames: 1 << 15,
            ..WalConfig::default()
        })
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut db = store(64);
        let t = db.begin();
        let tree = BTree::create(&mut db, t, 0, 32).unwrap();
        for k in [5u64, 1, 9, 3, 7] {
            tree.insert(&mut db, t, k, format!("v{k}").as_bytes())
                .unwrap();
        }
        assert_eq!(tree.get(&mut db, t, 3).unwrap(), Some(b"v3".to_vec()));
        assert_eq!(tree.get(&mut db, t, 4).unwrap(), None);
        assert_eq!(tree.len(&mut db, t).unwrap(), 5);
        db.commit(t).unwrap();
    }

    #[test]
    fn replace_updates_value() {
        let mut db = store(64);
        let t = db.begin();
        let tree = BTree::create(&mut db, t, 0, 32).unwrap();
        tree.insert(&mut db, t, 1, b"old").unwrap();
        tree.insert(&mut db, t, 1, b"new").unwrap();
        assert_eq!(tree.get(&mut db, t, 1).unwrap(), Some(b"new".to_vec()));
        assert_eq!(tree.len(&mut db, t).unwrap(), 1);
        db.commit(t).unwrap();
    }

    #[test]
    fn splits_grow_the_tree_and_preserve_order() {
        let mut db = store(256);
        let t = db.begin();
        let tree = BTree::create(&mut db, t, 0, 200).unwrap();
        // 200-byte values force ~19 entries per leaf → real splits
        let n: u64 = 500;
        let mut keys: Vec<u64> = (0..n).collect();
        // insert in a scrambled order
        keys.reverse();
        keys.rotate_left(137);
        for &k in &keys {
            tree.insert(&mut db, t, k, &[k as u8; 200]).unwrap();
        }
        assert!(
            tree.height(&mut db, t).unwrap() >= 2,
            "tree must have split"
        );
        let all = tree.range(&mut db, t, 0, u64::MAX).unwrap();
        assert_eq!(all.len(), n as usize);
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0), "sorted order");
        for k in 0..n {
            assert_eq!(tree.get(&mut db, t, k).unwrap(), Some(vec![k as u8; 200]));
        }
        db.commit(t).unwrap();
    }

    #[test]
    fn internal_splits_build_a_three_level_tree() {
        // leaf fanout ≈ 16 (240-byte slots), internal fanout ≈ 253:
        // 4500 keys force the root internal node itself to split
        let mut db = store(2048);
        let t = db.begin();
        let tree = BTree::create(&mut db, t, 0, 1500).unwrap();
        let n: u64 = 4500;
        for k in 0..n {
            // bit-reversed order scatters inserts across the key space
            let key = (k as u16).reverse_bits() as u64;
            tree.insert(&mut db, t, key, &[key as u8; 230]).unwrap();
        }
        assert!(
            tree.height(&mut db, t).unwrap() >= 3,
            "root must have split"
        );
        let all = tree.range(&mut db, t, 0, u64::MAX).unwrap();
        assert_eq!(all.len(), n as usize);
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0));
        // spot-check lookups across the whole range
        for k in (0..n).step_by(97) {
            let key = (k as u16).reverse_bits() as u64;
            assert_eq!(
                tree.get(&mut db, t, key).unwrap(),
                Some(vec![key as u8; 230])
            );
        }
        db.commit(t).unwrap();
    }

    #[test]
    fn range_scans_cross_leaves() {
        let mut db = store(256);
        let t = db.begin();
        let tree = BTree::create(&mut db, t, 0, 200).unwrap();
        for k in 0..300u64 {
            tree.insert(&mut db, t, k * 2, &[1u8; 150]).unwrap();
        }
        let r = tree.range(&mut db, t, 100, 140).unwrap();
        let keys: Vec<u64> = r.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, (50..=70).map(|k| k * 2).collect::<Vec<_>>());
        db.commit(t).unwrap();
    }

    #[test]
    fn delete_removes_without_rebalance() {
        let mut db = store(256);
        let t = db.begin();
        let tree = BTree::create(&mut db, t, 0, 200).unwrap();
        for k in 0..100u64 {
            tree.insert(&mut db, t, k, &[2u8; 100]).unwrap();
        }
        for k in (0..100u64).step_by(2) {
            assert!(tree.delete(&mut db, t, k).unwrap());
        }
        assert!(!tree.delete(&mut db, t, 0).unwrap(), "already gone");
        assert_eq!(tree.len(&mut db, t).unwrap(), 50);
        assert_eq!(tree.get(&mut db, t, 4).unwrap(), None);
        assert!(tree.get(&mut db, t, 5).unwrap().is_some());
        db.commit(t).unwrap();
    }

    #[test]
    fn aborted_insert_rolls_back_structure() {
        let cfg = WalConfig {
            data_pages: 256,
            pool_frames: 32,
            log_frames: 1 << 15,
            ..WalConfig::default()
        };
        let mut db = WalDb::new(cfg);
        let t = db.begin();
        let tree = BTree::create(&mut db, t, 0, 200).unwrap();
        for k in 0..50u64 {
            tree.insert(&mut db, t, k, &[3u8; 100]).unwrap();
        }
        db.commit(t).unwrap();

        // a big aborted transaction that forces splits
        let t = db.begin();
        for k in 50..300u64 {
            tree.insert(&mut db, t, k, &[4u8; 100]).unwrap();
        }
        db.abort(t).unwrap();

        let t = db.begin();
        assert_eq!(tree.len(&mut db, t).unwrap(), 50, "splits rolled back");
        assert_eq!(tree.get(&mut db, t, 100).unwrap(), None);
        // and the tree still accepts inserts afterwards
        tree.insert(&mut db, t, 100, b"post-abort").unwrap();
        db.commit(t).unwrap();
    }

    #[test]
    fn committed_tree_survives_crash() {
        let cfg = WalConfig {
            data_pages: 256,
            pool_frames: 8,
            log_frames: 1 << 15,
            ..WalConfig::default()
        };
        let mut db = WalDb::new(cfg.clone());
        let t = db.begin();
        let tree = BTree::create(&mut db, t, 0, 200).unwrap();
        for k in 0..200u64 {
            tree.insert(&mut db, t, k, &[5u8; 120]).unwrap();
        }
        db.commit(t).unwrap();
        let (mut db2, _) = WalDb::recover(db.crash_image(), cfg).unwrap();
        let t = db2.begin();
        let tree = BTree::open(&mut db2, t, 0, 200).unwrap();
        assert_eq!(tree.len(&mut db2, t).unwrap(), 200);
        assert_eq!(tree.get(&mut db2, t, 123).unwrap(), Some(vec![5u8; 120]));
    }

    #[test]
    fn page_budget_enforced() {
        let mut db = store(64);
        let t = db.begin();
        let tree = BTree::create(&mut db, t, 0, 3).unwrap(); // tiny budget
        let mut hit_full = false;
        for k in 0..200u64 {
            match tree.insert(&mut db, t, k, &[6u8; 200]) {
                Ok(()) => {}
                Err(RelError::Full) => {
                    hit_full = true;
                    break;
                }
                Err(e) => panic!("unexpected: {e}"),
            }
        }
        assert!(hit_full);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn matches_btreemap_oracle(
            ops in proptest::collection::vec(
                (any::<u16>(), prop_oneof![
                    (1usize..180).prop_map(Some),   // insert with this value length
                    Just(None),                      // delete
                ]),
                1..150,
            )
        ) {
            let mut db = store(512);
            let t = db.begin();
            let tree = BTree::create(&mut db, t, 0, 400).unwrap();
            let mut oracle: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
            for (key16, action) in ops {
                let key = key16 as u64;
                match action {
                    Some(vlen) => {
                        let value = vec![(key % 251) as u8; vlen];
                        tree.insert(&mut db, t, key, &value).unwrap();
                        oracle.insert(key, value);
                    }
                    None => {
                        let existed = tree.delete(&mut db, t, key).unwrap();
                        prop_assert_eq!(existed, oracle.remove(&key).is_some());
                    }
                }
            }
            // full equivalence
            let all = tree.range(&mut db, t, 0, u64::MAX).unwrap();
            let expect: Vec<(u64, Vec<u8>)> =
                oracle.iter().map(|(&k, v)| (k, v.clone())).collect();
            prop_assert_eq!(all, expect);
            // point lookups agree on hits and misses
            for probe in 0..50u64 {
                prop_assert_eq!(
                    tree.get(&mut db, t, probe * 13).unwrap(),
                    oracle.get(&(probe * 13)).cloned()
                );
            }
            db.commit(t).unwrap();
        }
    }
}
