//! The heap file: keyed tuples in slotted pages.
//!
//! Layout: page `base` is the header (magic + page budget + pages in
//! use); pages `base+1 ..` hold tuples in append-order slots:
//!
//! ```text
//! tuple page payload: [count u16] ([flags u8][key u64][len u16][bytes])*
//! ```
//!
//! Deletes tombstone the slot in place; updates tombstone + re-append
//! (in place when the length matches). Space from dead tuples is
//! reclaimed by [`HeapFile::compact`].

use rmdb_core::PageStore;
use rmdb_storage::PAYLOAD_SIZE;

/// Per-slot header bytes: flags(1) + key(8) + len(2).
const SLOT_HDR: usize = 11;
/// Page header bytes: slot count (2).
const PAGE_HDR: usize = 2;
/// Maximum tuple value length.
pub const MAX_VALUE: usize = 1024;

const FLAG_LIVE: u8 = 1;
const FLAG_DEAD: u8 = 2;

/// `(key, value)` pairs returned by scans.
pub type TupleVec = Vec<(u64, Vec<u8>)>;

/// Errors from the relation layer, parameterized by the store's error.
#[derive(Debug)]
pub enum RelError<E> {
    /// The underlying store failed (lock conflict, I/O, …).
    Store(E),
    /// Value longer than [`MAX_VALUE`].
    ValueTooLarge(usize),
    /// The heap file's page budget is exhausted.
    Full,
    /// The header page does not contain a heap file.
    NotAHeapFile,
}

impl<E: std::fmt::Display> std::fmt::Display for RelError<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RelError::Store(e) => write!(f, "store: {e}"),
            RelError::ValueTooLarge(n) => write!(f, "value of {n} bytes exceeds {MAX_VALUE}"),
            RelError::Full => write!(f, "heap file full"),
            RelError::NotAHeapFile => write!(f, "header page is not a heap file"),
        }
    }
}

impl<E: std::error::Error> std::error::Error for RelError<E> {}

const MAGIC: &[u8; 8] = b"RMDBHEAP";

/// A heap file of keyed tuples on a [`PageStore`].
///
/// The handle is cheap to copy and holds no reference to the store; every
/// operation takes the store and a transaction id explicitly, so one
/// transaction can touch many relations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeapFile {
    base: u64,
    max_pages: u64,
}

struct Slot {
    page: u64,
    offset: usize,
    live: bool,
    key: u64,
    len: usize,
}

impl HeapFile {
    /// Create a heap file owning pages `base ..= base + max_pages` (header
    /// plus `max_pages` tuple pages), inside transaction `txn`.
    pub fn create<S: PageStore>(
        store: &mut S,
        txn: u64,
        base: u64,
        max_pages: u64,
    ) -> Result<Self, RelError<S::Error>> {
        assert!(max_pages > 0, "heap file needs at least one tuple page");
        let mut header = Vec::with_capacity(24);
        header.extend_from_slice(MAGIC);
        header.extend_from_slice(&max_pages.to_le_bytes());
        header.extend_from_slice(&0u64.to_le_bytes()); // tuple pages in use
        store
            .write(txn, base, 0, &header)
            .map_err(RelError::Store)?;
        Ok(HeapFile { base, max_pages })
    }

    /// Open an existing heap file at `base`.
    pub fn open<S: PageStore>(
        store: &mut S,
        txn: u64,
        base: u64,
    ) -> Result<Self, RelError<S::Error>> {
        let head = store.read(txn, base, 0, 24).map_err(RelError::Store)?;
        if &head[0..8] != MAGIC {
            return Err(RelError::NotAHeapFile);
        }
        let max_pages = u64::from_le_bytes(head[8..16].try_into().unwrap());
        Ok(HeapFile { base, max_pages })
    }

    /// First tuple page.
    fn first_page(&self) -> u64 {
        self.base + 1
    }

    fn pages_in_use<S: PageStore>(
        &self,
        store: &mut S,
        txn: u64,
    ) -> Result<u64, RelError<S::Error>> {
        let bytes = store.read(txn, self.base, 16, 8).map_err(RelError::Store)?;
        Ok(u64::from_le_bytes(bytes.try_into().unwrap()))
    }

    fn set_pages_in_use<S: PageStore>(
        &self,
        store: &mut S,
        txn: u64,
        n: u64,
    ) -> Result<(), RelError<S::Error>> {
        store
            .write(txn, self.base, 16, &n.to_le_bytes())
            .map_err(RelError::Store)
    }

    /// Decode every slot on a tuple page (values not materialized).
    fn slots<S: PageStore>(
        store: &mut S,
        txn: u64,
        page: u64,
    ) -> Result<(Vec<Slot>, usize), RelError<S::Error>> {
        let head = store
            .read(txn, page, 0, PAGE_HDR)
            .map_err(RelError::Store)?;
        let count = u16::from_le_bytes(head.try_into().unwrap()) as usize;
        let mut slots = Vec::with_capacity(count);
        let mut offset = PAGE_HDR;
        for _ in 0..count {
            let hdr = store
                .read(txn, page, offset, SLOT_HDR)
                .map_err(RelError::Store)?;
            let flags = hdr[0];
            let key = u64::from_le_bytes(hdr[1..9].try_into().unwrap());
            let len = u16::from_le_bytes(hdr[9..11].try_into().unwrap()) as usize;
            slots.push(Slot {
                page,
                offset,
                live: flags == FLAG_LIVE,
                key,
                len,
            });
            offset += SLOT_HDR + len;
        }
        Ok((slots, offset))
    }

    /// Insert a tuple. Duplicate keys are allowed at this layer (use
    /// [`HeapFile::update`] for replace semantics).
    pub fn insert<S: PageStore>(
        &self,
        store: &mut S,
        txn: u64,
        key: u64,
        value: &[u8],
    ) -> Result<(), RelError<S::Error>> {
        if value.len() > MAX_VALUE {
            return Err(RelError::ValueTooLarge(value.len()));
        }
        let need = SLOT_HDR + value.len();
        let in_use = self.pages_in_use(store, txn)?;
        // only the last page can have room; earlier ones filled up
        if in_use > 0 {
            let page = self.first_page() + in_use - 1;
            let (slots, tail) = Self::slots(store, txn, page)?;
            if tail + need <= PAYLOAD_SIZE {
                return self.write_slot(store, txn, page, tail, slots.len(), key, value);
            }
        }
        // grow the file
        if in_use >= self.max_pages {
            return Err(RelError::Full);
        }
        let page = self.first_page() + in_use;
        store
            .write(txn, page, 0, &0u16.to_le_bytes())
            .map_err(RelError::Store)?;
        self.set_pages_in_use(store, txn, in_use + 1)?;
        self.write_slot(store, txn, page, PAGE_HDR, 0, key, value)
    }

    #[allow(clippy::too_many_arguments)] // internal helper mirroring the slot layout
    fn write_slot<S: PageStore>(
        &self,
        store: &mut S,
        txn: u64,
        page: u64,
        offset: usize,
        slot_index: usize,
        key: u64,
        value: &[u8],
    ) -> Result<(), RelError<S::Error>> {
        let mut slot = Vec::with_capacity(SLOT_HDR + value.len());
        slot.push(FLAG_LIVE);
        slot.extend_from_slice(&key.to_le_bytes());
        slot.extend_from_slice(&(value.len() as u16).to_le_bytes());
        slot.extend_from_slice(value);
        store
            .write(txn, page, offset, &slot)
            .map_err(RelError::Store)?;
        store
            .write(txn, page, 0, &((slot_index + 1) as u16).to_le_bytes())
            .map_err(RelError::Store)
    }

    /// Scan the relation, returning `(key, value)` for every live tuple
    /// matching `pred`, in storage order.
    pub fn scan<S, F>(
        &self,
        store: &mut S,
        txn: u64,
        pred: F,
    ) -> Result<TupleVec, RelError<S::Error>>
    where
        S: PageStore,
        F: Fn(u64, &[u8]) -> bool,
    {
        let in_use = self.pages_in_use(store, txn)?;
        let mut out = Vec::new();
        for rel_page in 0..in_use {
            let page = self.first_page() + rel_page;
            let (slots, _) = Self::slots(store, txn, page)?;
            for s in slots.iter().filter(|s| s.live) {
                let value = store
                    .read(txn, page, s.offset + SLOT_HDR, s.len)
                    .map_err(RelError::Store)?;
                if pred(s.key, &value) {
                    out.push((s.key, value));
                }
            }
        }
        Ok(out)
    }

    /// The live value for `key` (the most recently inserted, if duplicates
    /// were created via raw [`HeapFile::insert`]).
    pub fn get<S: PageStore>(
        &self,
        store: &mut S,
        txn: u64,
        key: u64,
    ) -> Result<Option<Vec<u8>>, RelError<S::Error>> {
        Ok(self
            .scan(store, txn, |k, _| k == key)?
            .pop()
            .map(|(_, v)| v))
    }

    /// Number of live tuples.
    pub fn count<S: PageStore>(
        &self,
        store: &mut S,
        txn: u64,
    ) -> Result<usize, RelError<S::Error>> {
        Ok(self.scan(store, txn, |_, _| true)?.len())
    }

    /// Tombstone every live tuple with `key`; returns how many died.
    pub fn delete<S: PageStore>(
        &self,
        store: &mut S,
        txn: u64,
        key: u64,
    ) -> Result<usize, RelError<S::Error>> {
        let in_use = self.pages_in_use(store, txn)?;
        let mut killed = 0;
        for rel_page in 0..in_use {
            let page = self.first_page() + rel_page;
            let (slots, _) = Self::slots(store, txn, page)?;
            for s in slots.iter().filter(|s| s.live && s.key == key) {
                store
                    .write(txn, s.page, s.offset, &[FLAG_DEAD])
                    .map_err(RelError::Store)?;
                killed += 1;
            }
        }
        Ok(killed)
    }

    /// Replace the value for `key` (insert if absent). Equal-length values
    /// update in place; otherwise the old tuple is tombstoned and the new
    /// value re-appended.
    pub fn update<S: PageStore>(
        &self,
        store: &mut S,
        txn: u64,
        key: u64,
        value: &[u8],
    ) -> Result<(), RelError<S::Error>> {
        if value.len() > MAX_VALUE {
            return Err(RelError::ValueTooLarge(value.len()));
        }
        let in_use = self.pages_in_use(store, txn)?;
        for rel_page in 0..in_use {
            let page = self.first_page() + rel_page;
            let (slots, _) = Self::slots(store, txn, page)?;
            if let Some(s) = slots.iter().find(|s| s.live && s.key == key) {
                if s.len == value.len() {
                    // in-place update
                    return store
                        .write(txn, s.page, s.offset + SLOT_HDR, value)
                        .map_err(RelError::Store);
                }
                store
                    .write(txn, s.page, s.offset, &[FLAG_DEAD])
                    .map_err(RelError::Store)?;
                return self.insert(store, txn, key, value);
            }
        }
        self.insert(store, txn, key, value)
    }

    /// Rewrite the file without dead slots, reclaiming their space.
    /// Runs inside `txn` like any other operation (and therefore rolls
    /// back atomically if the transaction aborts).
    pub fn compact<S: PageStore>(&self, store: &mut S, txn: u64) -> Result<(), RelError<S::Error>> {
        let live = self.scan(store, txn, |_, _| true)?;
        // reset to zero pages, then re-insert every live tuple
        self.set_pages_in_use(store, txn, 0)?;
        for (key, value) in live {
            self.insert(store, txn, key, &value)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmdb_shadow::{ShadowConfig, ShadowPager};
    use rmdb_wal::{WalConfig, WalDb};

    fn wal() -> WalDb {
        WalDb::new(WalConfig {
            data_pages: 64,
            pool_frames: 8,
            ..WalConfig::default()
        })
    }

    /// The same relational workout for any architecture.
    fn workout<S: PageStore>(store: &mut S) {
        let t = store.begin();
        let rel = HeapFile::create(store, t, 0, 32).unwrap();
        for k in 0..100u64 {
            rel.insert(store, t, k, format!("value-{k}").as_bytes())
                .unwrap();
        }
        store.commit(t).unwrap();

        let t = store.begin();
        assert_eq!(rel.count(store, t).unwrap(), 100);
        assert_eq!(rel.get(store, t, 7).unwrap(), Some(b"value-7".to_vec()));
        // the paper's profile: update 20 % of what we read
        for k in (0..100u64).step_by(5) {
            rel.update(store, t, k, format!("updated!{k}").as_bytes())
                .unwrap();
        }
        rel.delete(store, t, 3).unwrap();
        store.commit(t).unwrap();

        let t = store.begin();
        assert_eq!(rel.count(store, t).unwrap(), 99);
        assert_eq!(rel.get(store, t, 5).unwrap(), Some(b"updated!5".to_vec()));
        assert_eq!(rel.get(store, t, 3).unwrap(), None);
        let evens = rel.scan(store, t, |k, _| k % 2 == 0).unwrap();
        assert_eq!(evens.len(), 50);
        store.abort(t).unwrap();
    }

    #[test]
    fn workout_on_wal() {
        workout(&mut wal());
    }

    #[test]
    fn workout_on_shadow_pager() {
        workout(
            &mut ShadowPager::new(ShadowConfig {
                logical_pages: 64,
                data_frames: 256,
                ..ShadowConfig::default()
            })
            .unwrap(),
        );
    }

    #[test]
    fn aborted_relation_ops_roll_back() {
        let mut db = wal();
        let t = db.begin();
        let rel = HeapFile::create(&mut db, t, 0, 8).unwrap();
        rel.insert(&mut db, t, 1, b"keep").unwrap();
        db.commit(t).unwrap();

        let t = db.begin();
        rel.update(&mut db, t, 1, b"discarded-value").unwrap();
        rel.insert(&mut db, t, 2, b"also-discarded").unwrap();
        rel.delete(&mut db, t, 1).unwrap();
        db.abort(t).unwrap();

        let t = db.begin();
        assert_eq!(rel.get(&mut db, t, 1).unwrap(), Some(b"keep".to_vec()));
        assert_eq!(rel.get(&mut db, t, 2).unwrap(), None);
        assert_eq!(rel.count(&mut db, t).unwrap(), 1);
    }

    #[test]
    fn committed_relation_survives_crash() {
        let cfg = WalConfig {
            data_pages: 64,
            pool_frames: 4,
            ..WalConfig::default()
        };
        let mut db = WalDb::new(cfg.clone());
        let t = db.begin();
        let rel = HeapFile::create(&mut db, t, 0, 16).unwrap();
        for k in 0..30u64 {
            rel.insert(&mut db, t, k, &[k as u8; 20]).unwrap();
        }
        db.commit(t).unwrap();
        let loser = db.begin();
        rel.insert(&mut db, loser, 99, b"never").unwrap();

        let (mut db2, _) = WalDb::recover(db.crash_image(), cfg).unwrap();
        let t = db2.begin();
        let rel = HeapFile::open(&mut db2, t, 0).unwrap();
        assert_eq!(rel.count(&mut db2, t).unwrap(), 30);
        assert_eq!(rel.get(&mut db2, t, 99).unwrap(), None);
    }

    #[test]
    fn fills_pages_and_reports_full() {
        let mut db = wal();
        let t = db.begin();
        let rel = HeapFile::create(&mut db, t, 0, 2).unwrap();
        // ~130-byte tuples, 4070 usable → ~31 per page, 2 pages ≈ 62
        let mut stored = 0u64;
        loop {
            match rel.insert(&mut db, t, stored, &[7u8; 120]) {
                Ok(()) => stored += 1,
                Err(RelError::Full) => break,
                Err(e) => panic!("unexpected: {e}"),
            }
        }
        assert!((50..80).contains(&stored), "stored {stored}");
        assert_eq!(rel.count(&mut db, t).unwrap(), stored as usize);
        db.commit(t).unwrap();
    }

    #[test]
    fn compact_reclaims_dead_space() {
        let mut db = wal();
        let t = db.begin();
        let rel = HeapFile::create(&mut db, t, 0, 4).unwrap();
        for k in 0..60u64 {
            rel.insert(&mut db, t, k, &[1u8; 100]).unwrap();
        }
        for k in 0..50u64 {
            rel.delete(&mut db, t, k).unwrap();
        }
        // without compaction there is no room left for fat tuples
        // (3 pages in use of 4); compaction shrinks to a fraction
        rel.compact(&mut db, t).unwrap();
        assert_eq!(rel.count(&mut db, t).unwrap(), 10);
        for k in 100..140u64 {
            rel.insert(&mut db, t, k, &[2u8; 100]).unwrap();
        }
        assert_eq!(rel.count(&mut db, t).unwrap(), 50);
        db.commit(t).unwrap();
    }

    #[test]
    fn update_grows_value() {
        let mut db = wal();
        let t = db.begin();
        let rel = HeapFile::create(&mut db, t, 0, 8).unwrap();
        rel.insert(&mut db, t, 1, b"short").unwrap();
        rel.update(&mut db, t, 1, b"a considerably longer value")
            .unwrap();
        assert_eq!(
            rel.get(&mut db, t, 1).unwrap(),
            Some(b"a considerably longer value".to_vec())
        );
        assert_eq!(rel.count(&mut db, t).unwrap(), 1);
        db.commit(t).unwrap();
    }

    #[test]
    fn open_rejects_garbage() {
        let mut db = wal();
        let t = db.begin();
        db.write(t, 0, 0, b"not a heap").unwrap();
        assert!(matches!(
            HeapFile::open(&mut db, t, 0),
            Err(RelError::NotAHeapFile)
        ));
        db.abort(t).unwrap();
    }

    #[test]
    fn oversized_value_rejected() {
        let mut db = wal();
        let t = db.begin();
        let rel = HeapFile::create(&mut db, t, 0, 8).unwrap();
        let big = vec![0u8; MAX_VALUE + 1];
        assert!(matches!(
            rel.insert(&mut db, t, 1, &big),
            Err(RelError::ValueTooLarge(_))
        ));
        db.abort(t).unwrap();
    }

    #[test]
    fn two_relations_one_store() {
        let mut db = wal();
        let t = db.begin();
        let users = HeapFile::create(&mut db, t, 0, 8).unwrap();
        let orders = HeapFile::create(&mut db, t, 10, 8).unwrap();
        users.insert(&mut db, t, 1, b"ada").unwrap();
        orders.insert(&mut db, t, 1, b"order-1").unwrap();
        orders.insert(&mut db, t, 2, b"order-2").unwrap();
        db.commit(t).unwrap();
        let t = db.begin();
        assert_eq!(users.count(&mut db, t).unwrap(), 1);
        assert_eq!(orders.count(&mut db, t).unwrap(), 2);
        db.abort(t).unwrap();
    }
}
