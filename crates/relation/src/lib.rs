//! A heap-file relation layer, a B+tree index, and relational operators
//! over any recovery architecture.
//!
//! The paper's transactions are relational: they scan pages of tuples and
//! update a fraction of them. This crate provides that workload shape as
//! a real API — a [`HeapFile`] of keyed tuples in slotted pages, a
//! [`BTree`] index, and [`query`] operators (select/project/join) —
//! written once against the [`rmdb_core::PageStore`] trait, so the same
//! application code runs (and the same tests pass) on parallel logging,
//! both shadow-paging families, and both overwriting stores.
//!
//! # Example
//!
//! ```
//! use rmdb_relation::HeapFile;
//! use rmdb_wal::{WalConfig, WalDb};
//!
//! let mut db = WalDb::new(WalConfig::default());
//! let t = db.begin();
//! let rel = HeapFile::create(&mut db, t, 0, 16).unwrap();
//! rel.insert(&mut db, t, 42, b"answer").unwrap();
//! db.commit(t).unwrap();
//!
//! let t = db.begin();
//! assert_eq!(rel.get(&mut db, t, 42).unwrap(), Some(b"answer".to_vec()));
//! ```

pub mod btree;
pub mod heap;
pub mod query;

pub use btree::{BTree, BTreeError, MAX_INDEX_VALUE};
pub use heap::{HeapFile, RelError, TupleVec, MAX_VALUE};
pub use query::{hash_join, nested_loop_join, project, select, JoinVec};
