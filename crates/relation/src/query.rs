//! Relational operators over heap files — the query-processor side of the
//! database machine (selection, projection, and the two classic joins),
//! written once against [`PageStore`].

use crate::heap::{HeapFile, RelError, TupleVec};

/// `(key, left value, right value)` rows produced by the joins.
pub type JoinVec = Vec<(u64, Vec<u8>, Vec<u8>)>;
use rmdb_core::PageStore;
use std::collections::HashMap;

/// Selection: live tuples of `rel` matching `pred`.
pub fn select<S, F>(
    store: &mut S,
    txn: u64,
    rel: &HeapFile,
    pred: F,
) -> Result<TupleVec, RelError<S::Error>>
where
    S: PageStore,
    F: Fn(u64, &[u8]) -> bool,
{
    rel.scan(store, txn, pred)
}

/// Projection: apply `f` to every live tuple of `rel`.
pub fn project<S, F, T>(
    store: &mut S,
    txn: u64,
    rel: &HeapFile,
    f: F,
) -> Result<Vec<T>, RelError<S::Error>>
where
    S: PageStore,
    F: Fn(u64, &[u8]) -> T,
{
    Ok(rel
        .scan(store, txn, |_, _| true)?
        .into_iter()
        .map(|(k, v)| f(k, &v))
        .collect())
}

/// Equi-join on tuple key via nested loops: `(key, left value, right
/// value)` for every key in both relations. Quadratic; the baseline the
/// hash join is measured against.
pub fn nested_loop_join<S: PageStore>(
    store: &mut S,
    txn: u64,
    left: &HeapFile,
    right: &HeapFile,
) -> Result<JoinVec, RelError<S::Error>> {
    let l = left.scan(store, txn, |_, _| true)?;
    let r = right.scan(store, txn, |_, _| true)?;
    let mut out = Vec::new();
    for (lk, lv) in &l {
        for (rk, rv) in &r {
            if lk == rk {
                out.push((*lk, lv.clone(), rv.clone()));
            }
        }
    }
    Ok(out)
}

/// Equi-join on tuple key via a hash table built on the smaller input.
/// Produces exactly the same rows as [`nested_loop_join`] (up to order;
/// both are emitted in left-relation storage order).
pub fn hash_join<S: PageStore>(
    store: &mut S,
    txn: u64,
    left: &HeapFile,
    right: &HeapFile,
) -> Result<JoinVec, RelError<S::Error>> {
    let l = left.scan(store, txn, |_, _| true)?;
    let r = right.scan(store, txn, |_, _| true)?;
    // build on the smaller side
    let (build, probe, build_is_left) = if l.len() <= r.len() {
        (&l, &r, true)
    } else {
        (&r, &l, false)
    };
    let mut table: HashMap<u64, Vec<&Vec<u8>>> = HashMap::with_capacity(build.len());
    for (k, v) in build {
        table.entry(*k).or_default().push(v);
    }
    let mut out = Vec::new();
    for (k, pv) in probe {
        if let Some(matches) = table.get(k) {
            for bv in matches {
                if build_is_left {
                    out.push((*k, (*bv).clone(), pv.clone()));
                } else {
                    out.push((*k, pv.clone(), (*bv).clone()));
                }
            }
        }
    }
    // normalize to left storage order for parity with nested loops
    if !build_is_left {
        // probe was the left relation: already left-ordered
    } else {
        // probe was the right relation: re-sort by left order
        let mut order: HashMap<u64, usize> = HashMap::new();
        for (i, (k, _)) in l.iter().enumerate() {
            order.entry(*k).or_insert(i);
        }
        out.sort_by_key(|(k, _, _)| order.get(k).copied().unwrap_or(usize::MAX));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmdb_wal::{WalConfig, WalDb};

    fn setup() -> (WalDb, HeapFile, HeapFile) {
        let mut db = WalDb::new(WalConfig {
            data_pages: 64,
            pool_frames: 16,
            ..WalConfig::default()
        });
        let t = db.begin();
        let users = HeapFile::create(&mut db, t, 0, 8).unwrap();
        let orders = HeapFile::create(&mut db, t, 10, 8).unwrap();
        for k in 0..20u64 {
            users
                .insert(&mut db, t, k, format!("user-{k}").as_bytes())
                .unwrap();
        }
        for k in (0..30u64).step_by(3) {
            orders
                .insert(&mut db, t, k % 20, format!("order-{k}").as_bytes())
                .unwrap();
        }
        db.commit(t).unwrap();
        (db, users, orders)
    }

    #[test]
    fn select_filters() {
        let (mut db, users, _) = setup();
        let t = db.begin();
        let r = select(&mut db, t, &users, |k, _| k >= 15).unwrap();
        assert_eq!(r.len(), 5);
        assert!(r.iter().all(|(k, _)| *k >= 15));
        db.abort(t).unwrap();
    }

    #[test]
    fn project_transforms() {
        let (mut db, users, _) = setup();
        let t = db.begin();
        let lens: Vec<usize> = project(&mut db, t, &users, |_, v| v.len()).unwrap();
        assert_eq!(lens.len(), 20);
        assert!(lens.iter().all(|&l| l >= 6));
        db.abort(t).unwrap();
    }

    #[test]
    fn joins_agree() {
        let (mut db, users, orders) = setup();
        let t = db.begin();
        let nl = nested_loop_join(&mut db, t, &users, &orders).unwrap();
        let hj = hash_join(&mut db, t, &users, &orders).unwrap();
        assert!(!nl.is_empty());
        assert_eq!(nl, hj, "hash join must reproduce nested loops exactly");
        db.abort(t).unwrap();
    }

    #[test]
    fn join_handles_duplicates_on_probe_side() {
        let mut db = WalDb::new(WalConfig {
            data_pages: 64,
            ..WalConfig::default()
        });
        let t = db.begin();
        let a = HeapFile::create(&mut db, t, 0, 4).unwrap();
        let b = HeapFile::create(&mut db, t, 10, 4).unwrap();
        a.insert(&mut db, t, 1, b"a1").unwrap();
        b.insert(&mut db, t, 1, b"b1").unwrap();
        b.insert(&mut db, t, 1, b"b2").unwrap(); // duplicate key
        b.insert(&mut db, t, 2, b"no-match").unwrap();
        let nl = nested_loop_join(&mut db, t, &a, &b).unwrap();
        let hj = hash_join(&mut db, t, &a, &b).unwrap();
        assert_eq!(nl.len(), 2);
        assert_eq!(nl, hj);
        db.commit(t).unwrap();
    }

    #[test]
    fn empty_join_sides() {
        let mut db = WalDb::new(WalConfig {
            data_pages: 64,
            ..WalConfig::default()
        });
        let t = db.begin();
        let a = HeapFile::create(&mut db, t, 0, 4).unwrap();
        let b = HeapFile::create(&mut db, t, 10, 4).unwrap();
        a.insert(&mut db, t, 1, b"lonely").unwrap();
        assert!(nested_loop_join(&mut db, t, &a, &b).unwrap().is_empty());
        assert!(hash_join(&mut db, t, &a, &b).unwrap().is_empty());
        db.abort(t).unwrap();
    }
}
