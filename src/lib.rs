//! Umbrella crate for the workspace: re-exports the public API of every
//! sub-crate so the examples and integration tests can use a single
//! dependency.
//!
//! See [`rmdb_core`] for the top-level experiment API, and the individual
//! crates for the functional recovery mechanisms:
//!
//! * [`rmdb_wal`] — parallel write-ahead logging
//! * [`rmdb_exec`] — the concurrent transaction pipeline (real threads)
//! * [`rmdb_shadow`] — shadow paging (thru page-table, version selection,
//!   overwriting)
//! * [`rmdb_difffile`] — differential files
//! * [`rmdb_machine`] — the database-machine simulator behind the paper's
//!   tables

pub use rmdb_core as core;
pub use rmdb_difffile as difffile;
pub use rmdb_disk as disk;
pub use rmdb_exec as exec;
pub use rmdb_machine as machine;
pub use rmdb_mvcc as mvcc;
pub use rmdb_obs as obs;
pub use rmdb_relation as relation;
pub use rmdb_replay as replay;
pub use rmdb_restart as restart;
pub use rmdb_shadow as shadow;
pub use rmdb_sim as sim;
pub use rmdb_storage as storage;
pub use rmdb_wal as wal;
